"""JournalStateStore advisory ownership: markers, steal, stale reclaim.

Two live engine instances appending to one delta journal interleave
writes from different documents -- silent corruption. The `.owner`
marker turns that into a loud :class:`StoreOwnedError` at open time,
while staying advisory: dead owners are reclaimed, fenced successors
may steal, and `owner=None` callers are untouched.
"""

import json
import os
import subprocess

import pytest

from repro.core.engine import CloudlessEngine
from repro.state import JournalStateStore, StoreOwnedError
from repro.workloads import web_tier


def store_at(tmp_path, **kwargs) -> JournalStateStore:
    return JournalStateStore(str(tmp_path / "state.json"), **kwargs)


class TestOwnerMarker:
    def test_claim_writes_marker(self, tmp_path):
        store = store_at(tmp_path, owner="svc-a")
        marker = json.loads((tmp_path / "state.json.owner").read_text())
        assert marker["owner"] == "svc-a"
        assert marker["pid"] == os.getpid()
        assert store.owns()

    def test_second_live_claimant_is_rejected(self, tmp_path):
        store_at(tmp_path, owner="svc-a")
        with pytest.raises(StoreOwnedError) as excinfo:
            store_at(tmp_path, owner="svc-b")
        # the error names the blocking owner so operators can act on it
        assert "svc-a" in str(excinfo.value)

    def test_release_allows_reopen(self, tmp_path):
        first = store_at(tmp_path, owner="svc-a")
        first.release_owner()
        assert not first.owns()
        assert not (tmp_path / "state.json.owner").exists()
        second = store_at(tmp_path, owner="svc-b")
        assert second.owns()

    def test_steal_takes_over_live_marker(self, tmp_path):
        zombie = store_at(tmp_path, owner="svc-a")
        usurper = store_at(tmp_path, owner="svc-b", steal=True)
        assert usurper.owns()
        assert not zombie.owns()  # the zombie's token no longer matches

    def test_zombies_release_cannot_evict_usurper(self, tmp_path):
        zombie = store_at(tmp_path, owner="svc-a")
        usurper = store_at(tmp_path, owner="svc-b", steal=True)
        zombie.release_owner()  # token mismatch: must leave marker alone
        assert (tmp_path / "state.json.owner").exists()
        assert usurper.owns()

    def test_dead_pid_marker_is_reclaimed(self, tmp_path):
        """A marker left by a SIGKILLed process (its pid no longer
        exists) is stale debris, not a conflict."""
        proc = subprocess.Popen(["true"])
        proc.wait()
        (tmp_path / "state.json.owner").write_text(
            json.dumps({"owner": "dead", "pid": proc.pid, "token": "x"})
        )
        store = store_at(tmp_path, owner="svc-b")  # no steal needed
        assert store.owns()

    def test_corrupt_marker_is_reclaimed(self, tmp_path):
        (tmp_path / "state.json.owner").write_text("not json{")
        store = store_at(tmp_path, owner="svc-b")
        assert store.owns()

    def test_owner_none_skips_the_guard(self, tmp_path):
        store_at(tmp_path, owner="svc-a")
        unguarded = store_at(tmp_path)  # legacy single-owner callers
        assert not unguarded.owns()
        unguarded.write(CloudlessEngine(seed=0).state)

    def test_ownership_survives_writes_and_reads(self, tmp_path):
        store = store_at(tmp_path, owner="svc-a", compact_threshold=2)
        engine = CloudlessEngine(seed=0)
        assert engine.apply(
            web_tier(web_vms=1, app_vms=0, with_lb=False, with_db=False)
        ).ok
        for _ in range(4):  # crosses a compaction boundary
            store.write(engine.state)
        assert store.owns()
        assert store.read() is not None
