"""Newer engine capabilities: outputs, regeneration, provider regions,
lock scheduling policies."""

import pytest

from repro.core import CloudlessEngine
from repro.porting import verify_fidelity
from repro.state import ResourceLockManager
from repro.update import UpdateCoordinator, UpdateRequest
from repro.workloads import web_tier


class TestOutputsInState:
    def test_outputs_stored_after_apply(self):
        engine = CloudlessEngine(seed=30)
        result = engine.apply(
            'resource "aws_s3_bucket" "b" { name = "data" }\n'
            'output "bucket_id" { value = aws_s3_bucket.b.id }\n'
            'output "static" { value = upper("hi") }\n'
        )
        assert result.ok
        assert engine.state.outputs["static"] == "HI"
        assert engine.state.outputs["bucket_id"].startswith("bkt-")

    def test_outputs_update_on_reapply(self):
        engine = CloudlessEngine(seed=31)
        src = (
            'variable "n" { default = 1 }\n'
            'resource "aws_s3_bucket" "b" {\n'
            "  count = var.n\n"
            '  name  = "b-${count.index}"\n'
            "}\n"
            'output "names" { value = aws_s3_bucket.b[*].name }\n'
        )
        engine.apply(src)
        assert engine.state.outputs["names"] == ["b-0"]
        engine.apply(src, variables={"n": 3})
        assert engine.state.outputs["names"] == ["b-0", "b-1", "b-2"]

    def test_failed_apply_keeps_old_outputs(self):
        engine = CloudlessEngine(seed=32)
        engine.apply('output "x" { value = 1 }\n')
        assert engine.state.outputs == {"x": 1}
        engine.gateway.planes["aws"].set_quota("aws_s3_bucket", "us-east-1", 0)
        result = engine.apply(
            'resource "aws_s3_bucket" "b" { name = "nope" }\n'
            'output "x" { value = 2 }\n',
            validate_first=False,
        )
        assert not result.ok
        assert engine.state.outputs == {"x": 1}


class TestRegenerateConfig:
    def test_regeneration_reflects_adopted_drift(self):
        engine = CloudlessEngine(seed=33)
        assert engine.apply(web_tier(web_vms=2, app_vms=1)).ok
        vm = next(
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        )
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "xlarge"}, actor="script"
        )
        # adopt the drift, then regenerate the program
        run = engine.watch()
        engine.reconcile(run.findings, policy={"modified": "adopt"})
        project = engine.regenerate_config(adopt=True)
        assert '"xlarge"' in project.main_source
        assert verify_fidelity(project).ok
        # a follow-up plan against the regenerated pair is a no-op
        assert engine.plan(project.sources).is_empty

    def test_regeneration_excludes_unmanaged(self):
        engine = CloudlessEngine(seed=34)
        assert engine.apply('resource "aws_s3_bucket" "b" { name = "ours" }\n').ok
        engine.gateway.planes["aws"].external_create(
            "aws_s3_bucket", {"name": "not-ours"}, "us-east-1"
        )
        project = engine.regenerate_config(adopt=False)
        assert "ours" in project.main_source
        assert "not-ours" not in project.main_source

    def test_regeneration_checkpoints(self):
        engine = CloudlessEngine(seed=35)
        engine.apply('resource "aws_s3_bucket" "b" { name = "x" }\n')
        before = len(engine.history)
        engine.regenerate_config(adopt=True)
        assert len(engine.history) == before + 1
        assert "regenerated" in engine.history.latest().description


class TestProviderRegionDefaults:
    def test_provider_block_sets_default_region(self):
        engine = CloudlessEngine(seed=36)
        result = engine.apply(
            'provider "aws" {\n  region = "eu-west-1"\n}\n'
            'resource "aws_s3_bucket" "b" { name = "eu-bucket" }\n'
        )
        assert result.ok
        record = engine.gateway.planes["aws"].find_by_name(
            "aws_s3_bucket", "eu-bucket"
        )
        assert record.region == "eu-west-1"

    def test_location_attr_beats_provider_block(self):
        engine = CloudlessEngine(seed=37)
        result = engine.apply(
            'provider "azure" {\n  location = "westeurope"\n}\n'
            'resource "azure_resource_group" "rg" {\n'
            '  name     = "rg"\n'
            '  location = "eastus"\n'
            "}\n"
        )
        assert result.ok
        record = engine.gateway.planes["azure"].find_by_name(
            "azure_resource_group", "rg"
        )
        assert record.region == "eastus"

    def test_no_provider_block_uses_gateway_default(self):
        engine = CloudlessEngine(seed=38)
        assert engine.apply('resource "aws_s3_bucket" "b" { name = "d" }\n').ok
        record = engine.gateway.planes["aws"].find_by_name("aws_s3_bucket", "d")
        assert record.region == "us-east-1"

    def test_provider_region_change_forces_replacement(self):
        engine = CloudlessEngine(seed=39)
        src = 'provider "aws" {{\n  region = "{r}"\n}}\nresource "aws_s3_bucket" "b" {{ name = "m" }}\n'
        assert engine.apply(src.format(r="us-east-1")).ok
        plan = engine.plan(src.format(r="eu-west-1"))
        from repro.graph import Action

        assert plan.changes["aws_s3_bucket.b"].action is Action.REPLACE


class TestLockScheduling:
    def contended_requests(self):
        # all compete for one key; short job arrives last
        return [
            UpdateRequest("slow-1", 0.0, {"r.k"}, 300.0),
            UpdateRequest("slow-2", 1.0, {"r.k"}, 300.0),
            UpdateRequest("quick", 2.0, {"r.k"}, 10.0),
        ]

    def run(self, scheduling):
        from repro.state import StateDocument

        coordinator = UpdateCoordinator(
            StateDocument(), ResourceLockManager(), scheduling=scheduling
        )
        # requests touch a key not present in state: lock keys are
        # logical, so that is fine
        return coordinator.run(self.contended_requests())

    def test_fifo_preserves_arrival_order(self):
        result = self.run("fifo")
        finish = {o.team: o.completed_at for o in result.outcomes}
        assert finish["slow-2"] < finish["quick"]

    def test_shortest_job_prioritizes_quick_update(self):
        result = self.run("shortest-job")
        finish = {o.team: o.completed_at for o in result.outcomes}
        assert finish["quick"] < finish["slow-2"]

    def test_shortest_job_cuts_mean_wait(self):
        fifo = self.run("fifo")
        sjf = self.run("shortest-job")
        assert sjf.mean_wait_s < fifo.mean_wait_s

    def test_fewest_locks_prefers_narrow_updates(self):
        from repro.state import StateDocument

        requests = [
            UpdateRequest("wide", 0.0, {"r.a", "r.b", "r.c"}, 100.0),
            UpdateRequest("broad", 1.0, {"r.a", "r.b"}, 100.0),
            UpdateRequest("narrow", 2.0, {"r.a"}, 100.0),
        ]
        coordinator = UpdateCoordinator(
            StateDocument(), ResourceLockManager(), scheduling="fewest-locks"
        )
        result = coordinator.run(requests)
        finish = {o.team: o.completed_at for o in result.outcomes}
        assert finish["narrow"] < finish["broad"]

    def test_unknown_policy_rejected(self):
        from repro.state import StateDocument

        with pytest.raises(ValueError):
            UpdateCoordinator(
                StateDocument(), ResourceLockManager(), scheduling="vibes"
            )

    def test_all_policies_serializable(self):
        for policy in ("fifo", "shortest-job", "fewest-locks"):
            assert self.run(policy).serializable


class TestLearnedValidationRules:
    def test_engine_learns_from_its_own_history(self):
        from repro.workloads import hub_spoke

        engine = CloudlessEngine(seed=45)
        # several healthy deployments accumulate in the time machine
        for i in range(4):
            result = engine.apply(hub_spoke(spokes=1, name=f"gen{i}"))
            assert result.ok
            assert engine.destroy().apply.ok
        added = engine.learn_validation_rules(min_support=3)
        assert added > 0
        rule_ids = {r.info.rule_id for r in engine.validation.engine.rules}
        assert any(r.startswith("MINED-EQ") for r in rule_ids)

    def test_learned_rules_catch_future_mistakes(self):
        from repro.workloads import hub_spoke

        engine = CloudlessEngine(seed=46)
        for i in range(4):
            assert engine.apply(hub_spoke(spokes=1, name=f"gen{i}")).ok
            assert engine.destroy().apply.ok
        engine.learn_validation_rules(min_support=3)
        bad = hub_spoke(spokes=1, name="oops").replace(
            'location = "eastus"\n  nic_ids', 'location = "westus2"\n  nic_ids'
        )
        report = engine.validate(bad)
        assert not report.ok
        assert any("MINED" in d.code for d in report.errors)

    def test_learning_is_idempotent(self):
        from repro.workloads import hub_spoke

        engine = CloudlessEngine(seed=47)
        for i in range(3):
            assert engine.apply(hub_spoke(spokes=1, name=f"g{i}")).ok
            assert engine.destroy().apply.ok
        first = engine.learn_validation_rules(min_support=3)
        second = engine.learn_validation_rules(min_support=3)
        assert first > 0 and second == 0

    def test_empty_history_learns_nothing(self):
        engine = CloudlessEngine(seed=48)
        assert engine.learn_validation_rules() == 0
