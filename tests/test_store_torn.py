"""Torn-write tolerance of the journaled state store.

Satellite of the crash-safe apply PR: corrupt the last bytes of the
keyframe and the delta journal *independently* and show the store still
loads. A torn journal tail is dropped and truncated away; a torn
keyframe falls back to the ``.bak`` copy compaction writes alongside
it. Scheme: compaction writes the identical keyframe to both paths
*before* truncating the journal, so every single-file tear is
survivable and every crash window replays idempotently.
"""

import os

import pytest

from repro.addressing import ResourceAddress
from repro.perf import PERF
from repro.state import JournalStateStore, ResourceState, StateDocument


def entry(addr_text, rid="r-1", attrs=None):
    return ResourceState(
        address=ResourceAddress.parse(addr_text),
        resource_id=rid,
        provider="aws",
        attrs=attrs or {"name": "x"},
        region="us-east-1",
    )


def populated_store(path, writes=5, compact_threshold=100):
    store = JournalStateStore(path, compact_threshold=compact_threshold)
    doc = StateDocument()
    for i in range(writes):
        doc = doc.copy()
        doc.set(entry(f"aws_vm.v{i}", f"r-{i}"))
        doc.bump()
        store.write(doc)
    return store, doc


def tear_tail(path, nbytes=7):
    """Chop the last bytes off a file, as an interrupted write would."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - nbytes))


class TestTornJournal:
    def test_torn_journal_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "state.json")
        _, doc = populated_store(path, writes=5)
        tear_tail(path + ".journal")
        loaded = JournalStateStore(path).read()
        # the last delta is lost, everything before it survives
        addresses = {str(e.address) for e in loaded.resources()}
        assert addresses == {f"aws_vm.v{i}" for i in range(4)}

    def test_torn_tail_is_physically_truncated(self, tmp_path):
        path = str(tmp_path / "state.json")
        populated_store(path, writes=3)
        tear_tail(path + ".journal")
        JournalStateStore(path).read()
        # recovery rewrote the journal to end on a record boundary, so a
        # later append produces a well-formed file
        raw = open(path + ".journal", "rb").read()
        assert raw.endswith(b"\n")
        store = JournalStateStore(path)
        doc = store.read()
        doc = doc.copy()
        doc.set(entry("aws_vm.extra", "r-x"))
        doc.bump()
        store.write(doc)
        reloaded = JournalStateStore(path).read()
        assert reloaded.get(ResourceAddress.parse("aws_vm.extra")) is not None

    def test_mid_journal_corruption_raises(self, tmp_path):
        path = str(tmp_path / "state.json")
        populated_store(path, writes=4)
        journal = path + ".journal"
        lines = open(journal, "r", encoding="utf-8").read().splitlines()
        lines[1] = lines[1][:10]  # damage a middle record
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            JournalStateStore(path).read()


class TestTornKeyframe:
    def test_torn_keyframe_falls_back_to_backup(self, tmp_path):
        path = str(tmp_path / "state.json")
        store, doc = populated_store(path, writes=5)
        store.compact()
        assert os.path.exists(path + ".bak")
        tear_tail(path, nbytes=20)
        loaded = JournalStateStore(path).read()
        assert loaded.to_json() == doc.to_json()

    def test_torn_backup_alone_is_harmless(self, tmp_path):
        path = str(tmp_path / "state.json")
        store, doc = populated_store(path, writes=5)
        store.compact()
        tear_tail(path + ".bak", nbytes=20)
        loaded = JournalStateStore(path).read()
        assert loaded.to_json() == doc.to_json()

    def test_keyframe_and_journal_torn_independently(self, tmp_path):
        """The satellite's exact scenario: damage the last bytes of each
        file in turn; the store loads either way."""
        path = str(tmp_path / "state.json")
        store, doc = populated_store(path, writes=4, compact_threshold=3)
        # threshold 3 => one compaction happened, journal holds delta #4
        assert os.path.getsize(path + ".journal") > 0
        tear_tail(path, nbytes=11)
        tear_tail(path + ".journal", nbytes=11)
        loaded = JournalStateStore(path).read()
        # keyframe came from .bak (first 3 writes) and the torn fourth
        # delta was dropped
        addresses = {str(e.address) for e in loaded.resources()}
        assert addresses == {f"aws_vm.v{i}" for i in range(3)}

    def test_fallbacks_are_counted(self, tmp_path):
        PERF.enable()
        PERF.reset()
        try:
            path = str(tmp_path / "state.json")
            store, _ = populated_store(path, writes=4)
            store.compact()
            tear_tail(path, nbytes=15)
            JournalStateStore(path).read()
            counters = PERF.snapshot()["counters"]
            assert counters.get("persist.keyframe_fallbacks", 0) >= 1
        finally:
            PERF.reset()
            PERF.disable()

    def test_compaction_writes_identical_twins(self, tmp_path):
        path = str(tmp_path / "state.json")
        store, _ = populated_store(path, writes=5)
        store.compact()
        assert open(path).read() == open(path + ".bak").read()

    def test_both_keyframes_torn_resets_to_journal_only(self, tmp_path):
        """Total keyframe loss degrades to an empty base document; the
        (post-compaction) journal is empty, so the store reads empty
        rather than crashing -- the worst case is explicit, not silent
        corruption of a partial parse."""
        path = str(tmp_path / "state.json")
        store, _ = populated_store(path, writes=5)
        store.compact()
        tear_tail(path, nbytes=25)
        tear_tail(path + ".bak", nbytes=25)
        loaded = JournalStateStore(path).read()
        assert len(loaded) == 0
