"""Porting: naive export vs structured import, metrics, fidelity (E7)."""

import pytest

from repro.cloud import CloudGateway
from repro.porting import (
    NaiveExporter,
    RawExpr,
    StructuredImporter,
    emit_config,
    measure_quality,
    render_value,
    resource_block,
    verify_fidelity,
)


def build_repetitive_estate(gateway, vms=4):
    vpc = gateway.execute(
        "create",
        "aws_vpc",
        attrs={"name": "prod", "cidr_block": "10.0.0.0/16"},
        region="us-east-1",
    )
    subnets = [
        gateway.execute(
            "create",
            "aws_subnet",
            attrs={
                "name": f"app-{i}",
                "vpc_id": vpc["id"],
                "cidr_block": f"10.0.{i}.0/24",
            },
            region="us-east-1",
        )
        for i in range(vms)
    ]
    nics = [
        gateway.execute(
            "create",
            "aws_network_interface",
            attrs={"name": f"nic-{i}", "subnet_id": subnets[i]["id"]},
            region="us-east-1",
        )
        for i in range(vms)
    ]
    for i in range(vms):
        gateway.execute(
            "create",
            "aws_virtual_machine",
            attrs={"name": f"web-{i}", "nic_ids": [nics[i]["id"]]},
            region="us-east-1",
        )
    return 1 + 3 * vms


def build_repeated_stacks(gateway, stacks=3):
    """N isomorphic vpc+subnet+db stacks (module extraction bait)."""
    for i in range(stacks):
        vpc = gateway.execute(
            "create",
            "aws_vpc",
            attrs={"name": f"env{i}", "cidr_block": f"10.{i}.0.0/16"},
            region="us-east-1",
        )
        subnet = gateway.execute(
            "create",
            "aws_subnet",
            attrs={
                "name": f"env{i}-main",
                "vpc_id": vpc["id"],
                "cidr_block": f"10.{i}.1.0/24",
            },
            region="us-east-1",
        )
        gateway.execute(
            "create",
            "aws_database_instance",
            attrs={
                "name": f"env{i}-db",
                "engine": "postgres",
                "subnet_ids": [subnet["id"]],
            },
            region="us-east-1",
        )
    return 3 * stacks


class TestEmitter:
    def test_render_scalars(self):
        assert render_value("x") == '"x"'
        assert render_value(5) == "5"
        assert render_value(True) == "true"
        assert render_value(None) == "null"
        assert render_value(RawExpr("var.x")) == "var.x"

    def test_render_collections(self):
        assert render_value([1, 2]) == "[1, 2]"
        assert render_value({}) == "{}"
        assert "a = 1" in render_value({"a": 1})

    def test_emitted_block_reparses(self):
        from repro.lang import Configuration

        block = resource_block(
            "aws_vpc",
            "main",
            [("name", "x"), ("cidr_block", "10.0.0.0/16"), ("tags", {"env": "p"})],
        )
        config = Configuration.parse(emit_config([block]))
        assert not config.diagnostics.has_errors()
        assert config.resource("aws_vpc", "main") is not None

    def test_count_meta_comes_first(self):
        text = emit_config([resource_block("t", "n", [("name", "x")], count=3)])
        lines = [l.strip() for l in text.splitlines() if "=" in l]
        assert lines[0].startswith("count")


class TestNaiveExporter:
    def test_one_block_per_resource(self, gateway):
        n = build_repetitive_estate(gateway)
        project = NaiveExporter().export(gateway)
        metrics = measure_quality(project)
        assert metrics.blocks == n
        assert metrics.resources_represented == n

    def test_hardcoded_ids_remain(self, gateway):
        build_repetitive_estate(gateway)
        project = NaiveExporter().export(gateway)
        metrics = measure_quality(project)
        assert metrics.hardcoded_ids > 0
        assert metrics.reference_count == 0

    def test_naive_is_still_faithful(self, gateway):
        build_repetitive_estate(gateway)
        project = NaiveExporter().export(gateway)
        assert verify_fidelity(project).ok


class TestStructuredImporter:
    def test_count_compaction(self, gateway):
        n = build_repetitive_estate(gateway, vms=4)
        project = StructuredImporter().import_estate(gateway)
        metrics = measure_quality(project)
        assert metrics.blocks < n / 2
        assert metrics.resources_represented == n
        assert "count" in project.main_source

    def test_cidr_ladder_detected(self, gateway):
        build_repetitive_estate(gateway)
        project = StructuredImporter().import_estate(gateway)
        assert 'cidrsubnet("10.0.0.0/16", 8, count.index)' in project.main_source

    def test_index_aligned_references(self, gateway):
        build_repetitive_estate(gateway)
        project = StructuredImporter().import_estate(gateway)
        assert "[count.index].id" in project.main_source

    def test_no_hardcoded_ids(self, gateway):
        build_repetitive_estate(gateway)
        project = StructuredImporter().import_estate(gateway)
        metrics = measure_quality(project)
        assert metrics.hardcoded_ids == 0
        assert metrics.reference_count > 0

    def test_defaults_pruned(self, gateway):
        gateway.execute(
            "create",
            "aws_virtual_machine_like" if False else "aws_s3_bucket",
            attrs={"name": "b"},
            region="us-east-1",
        )
        project = StructuredImporter().import_estate(gateway)
        # versioning=False is the schema default; must not be emitted
        assert "versioning" not in project.main_source

    def test_fidelity_round_trip(self, gateway):
        build_repetitive_estate(gateway)
        project = StructuredImporter().import_estate(gateway)
        result = verify_fidelity(project)
        assert result.ok, result

    def test_quality_beats_naive(self, gateway):
        build_repetitive_estate(gateway, vms=6)
        naive = NaiveExporter().export(gateway)
        smart = StructuredImporter().import_estate(gateway)
        naive_metrics = measure_quality(naive)
        smart_metrics = measure_quality(smart)
        assert smart_metrics.loc < naive_metrics.loc / 2
        assert smart_metrics.maintainability > naive_metrics.maintainability + 20

    def test_grouping_can_be_disabled(self, gateway):
        build_repetitive_estate(gateway)
        project = StructuredImporter(enable_grouping=False).import_estate(gateway)
        assert "count" not in project.main_source
        assert verify_fidelity(project).ok

    def test_mixed_attrs_not_overgrouped(self, gateway):
        # two buckets with different attribute sets must stay separate
        gateway.execute(
            "create",
            "aws_s3_bucket",
            attrs={"name": "plain-0"},
            region="us-east-1",
        )
        gateway.execute(
            "create",
            "aws_s3_bucket",
            attrs={"name": "plain-1", "versioning": True},
            region="us-east-1",
        )
        project = StructuredImporter().import_estate(gateway)
        assert verify_fidelity(project).ok


class TestModuleExtraction:
    def test_repeated_stacks_become_modules(self, gateway):
        build_repeated_stacks(gateway, stacks=3)
        project = StructuredImporter().import_estate(gateway)
        metrics = measure_quality(project)
        assert metrics.module_count == 3
        assert project.module_sources
        # one module definition instead of three stack copies
        assert len(project.module_sources) == 1

    def test_module_import_fidelity(self, gateway):
        build_repeated_stacks(gateway, stacks=3)
        project = StructuredImporter().import_estate(gateway)
        result = verify_fidelity(project)
        assert result.ok, result

    def test_modules_can_be_disabled(self, gateway):
        build_repeated_stacks(gateway, stacks=3)
        project = StructuredImporter(enable_modules=False).import_estate(gateway)
        assert measure_quality(project).module_count == 0
        assert verify_fidelity(project).ok

    def test_varying_values_become_variables(self, gateway):
        build_repeated_stacks(gateway, stacks=2)
        project = StructuredImporter(min_module_size=3).import_estate(gateway)
        module_text = next(iter(project.module_sources.values()))["main.clc"]
        assert "variable" in module_text
        assert "var." in module_text


class TestForEachCompaction:
    def build_named_estate(self, gateway):
        vpc = gateway.execute(
            "create",
            "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        sub = gateway.execute(
            "create",
            "aws_subnet",
            attrs={
                "name": "main",
                "vpc_id": vpc["id"],
                "cidr_block": "10.0.1.0/24",
            },
            region="us-east-1",
        )
        for env in ("alpha", "bravo", "charlie"):
            gateway.execute(
                "create",
                "aws_network_interface",
                attrs={"name": f"nic-{env}", "subnet_id": sub["id"]},
                region="us-east-1",
            )

    def test_named_repeats_become_for_each(self, gateway):
        self.build_named_estate(gateway)
        project = StructuredImporter().import_estate(gateway)
        assert "for_each" in project.main_source
        assert "each.key" in project.main_source
        assert verify_fidelity(project).ok

    def test_for_each_state_uses_string_keys(self, gateway):
        self.build_named_estate(gateway)
        project = StructuredImporter().import_estate(gateway)
        keyed = [
            e
            for e in project.state.resources()
            if isinstance(e.address.instance_key, str)
        ]
        assert len(keyed) == 3

    def test_varying_attrs_use_each_value(self, gateway):
        vpc = gateway.execute(
            "create",
            "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        for env, gb in (("api", 100), ("worker", 500), ("cron", 250)):
            gateway.execute(
                "create",
                "aws_disk",
                attrs={"name": f"disk-{env}", "size_gb": gb},
                region="us-east-1",
            )
        project = StructuredImporter().import_estate(gateway)
        assert "each.value.size_gb" in project.main_source
        assert verify_fidelity(project).ok

    def test_varying_refs_stay_single(self, gateway):
        # members pointing at *different* targets with non-indexed names
        # cannot for_each-group
        vpc = gateway.execute(
            "create",
            "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        subs = []
        for env in ("east", "west"):
            subs.append(
                gateway.execute(
                    "create",
                    "aws_subnet",
                    attrs={
                        "name": f"sub-{env}",
                        "vpc_id": vpc["id"],
                        "cidr_block": f"10.0.{len(subs)}.0/24",
                    },
                    region="us-east-1",
                )
            )
        for env, sub in zip(("east", "west"), subs):
            gateway.execute(
                "create",
                "aws_network_interface",
                attrs={"name": f"nic-{env}", "subnet_id": sub["id"]},
                region="us-east-1",
            )
        project = StructuredImporter().import_estate(gateway)
        # NICs reference different subnets -> must not merge into one block
        assert project.main_source.count('resource "aws_network_interface"') == 2
        assert verify_fidelity(project).ok
