"""Compiled-artifact cache tests.

The persistent cache (``repro.compilecache``) journals parsed config,
expanded graph, and plan to disk. The contract under test:

* exact hit -> the cached graph (and plan, when the state/data
  fingerprints agree) is served without re-parsing;
* any edit -> partial hit (chunk-AST reuse only), never a stale graph;
* any corruption -- truncated file, flipped payload byte, version
  mismatch, garbage header, tampered meta half -- degrades to a cold
  build, mirroring ``tests/test_store_torn.py``;
* an exact hit is *lazy*: the big object-web pickle is digest-verified
  at load but not unpickled until a consumer touches config/graph/plan;
* the engine's warm plan is byte-identical to its cold plan;
* an ``IncrementalSession`` rebuild fallback clears the cache so a
  pre-rebuild graph is never served again.
"""

import os
import pickle

import pytest

from repro.cloud import CloudGateway
from repro.compilecache import (
    CompileCache,
    schema_fingerprint,
    variables_fingerprint,
)
from repro.compilecache.store import FORMAT_VERSION, _sha
from repro.core.engine import CloudlessEngine
from repro.deploy.incremental import IncrementalSession
from repro.graph import build_graph
from repro.lang import Configuration
from repro.state import StateDocument

SOURCE = '''
resource "aws_vpc" "main" {
  name       = "main-vpc"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "a" {
  name       = "subnet-a"
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, 1)
}

resource "aws_s3_bucket" "logs" {
  name = "logs-bucket"
}
'''

EDITED = SOURCE.replace('"logs-bucket"', '"logs-bucket-v2"')


@pytest.fixture
def gateway():
    return CloudGateway.simulated(seed=3)


@pytest.fixture
def cache(tmp_path):
    return CompileCache(str(tmp_path / "cache"))


def store_artifact(cache, gateway, texts, variables=None):
    vfp = variables_fingerprint(variables)
    sfp = schema_fingerprint(gateway)
    config = Configuration.parse_streaming(texts)
    graph = build_graph(config)
    assert cache.store(texts, vfp, sfp, config, graph)
    return vfp, sfp


class TestLookup:
    def test_exact_hit_serves_cached_graph(self, cache, gateway):
        texts = {"main.clc": SOURCE}
        vfp, sfp = store_artifact(cache, gateway, texts)
        lookup = cache.load(texts, vfp, sfp)
        assert lookup is not None and lookup.exact
        assert cache.exact_hits == 1
        assert ("managed", "aws_vpc", "main") in lookup.config.resources

    def test_exact_hit_is_lazy(self, cache, gateway):
        texts = {"main.clc": SOURCE}
        vfp, sfp = store_artifact(cache, gateway, texts)
        lookup = cache.load(texts, vfp, sfp)
        assert lookup is not None and lookup.exact
        # the object web stays pickled until somebody needs it
        assert not lookup.materialized
        assert lookup.graph is not None
        assert lookup.materialized

    def test_edit_demotes_to_partial(self, cache, gateway):
        vfp, sfp = store_artifact(cache, gateway, {"main.clc": SOURCE})
        lookup = cache.load({"main.clc": EDITED}, vfp, sfp)
        assert lookup is not None and not lookup.exact
        assert cache.partial_hits == 1
        # partial artifacts still seed the streaming reparse
        cfg = Configuration.parse_streaming(
            {"main.clc": EDITED}, reuse=lookup.config
        )
        decl = cfg.resource("aws_s3_bucket", "logs")
        assert decl is not None

    def test_variables_change_is_a_miss(self, cache, gateway):
        texts = {"main.clc": SOURCE}
        vfp, sfp = store_artifact(cache, gateway, texts)
        other = variables_fingerprint({"env": "prod"})
        assert other != vfp
        assert cache.load(texts, other, sfp) is None
        assert cache.misses == 1

    def test_schema_change_is_a_miss(self, cache, gateway):
        texts = {"main.clc": SOURCE}
        vfp, sfp = store_artifact(cache, gateway, texts)
        wider = schema_fingerprint(CloudGateway.simulated(seed=3, synthetic=2))
        assert wider != sfp
        assert cache.load(texts, vfp, wider) is None

    def test_cold_cache_is_a_miss(self, cache, gateway):
        texts = {"main.clc": SOURCE}
        vfp = variables_fingerprint(None)
        sfp = schema_fingerprint(gateway)
        assert cache.load(texts, vfp, sfp) is None
        assert cache.misses == 1


class TestCorruption:
    """Every way a cache file can rot must read as a cold build."""

    def setup_artifact(self, cache, gateway):
        texts = {"main.clc": SOURCE}
        vfp, sfp = store_artifact(cache, gateway, texts)
        return texts, vfp, sfp, cache.path_for(texts, vfp, sfp)

    def test_truncated_payload(self, cache, gateway):
        texts, vfp, sfp, path = self.setup_artifact(cache, gateway)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert cache.load(texts, vfp, sfp) is None
        assert cache.corrupt_rejects == 1

    def test_flipped_payload_byte(self, cache, gateway):
        texts, vfp, sfp, path = self.setup_artifact(cache, gateway)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert cache.load(texts, vfp, sfp) is None
        assert cache.corrupt_rejects == 1

    def test_version_mismatch(self, cache, gateway):
        texts, vfp, sfp, path = self.setup_artifact(cache, gateway)
        header, payload = open(path, "rb").read().split(b"\n", 1)
        import json

        meta = json.loads(header)
        meta["version"] = FORMAT_VERSION + 1
        with open(path, "wb") as fh:
            fh.write(json.dumps(meta).encode() + b"\n" + payload)
        assert cache.load(texts, vfp, sfp) is None
        assert cache.corrupt_rejects == 1

    def test_garbage_header(self, cache, gateway):
        texts, vfp, sfp, path = self.setup_artifact(cache, gateway)
        open(path, "wb").write(b"not json at all\njunk")
        assert cache.load(texts, vfp, sfp) is None
        assert cache.corrupt_rejects == 1

    def test_payload_not_an_artifact(self, cache, gateway):
        """A digest-consistent payload that is not our envelope is
        rejected *eagerly* at load, despite the lazy unpickle."""
        import json

        texts, vfp, sfp, path = self.setup_artifact(cache, gateway)
        with open(path, "rb") as fh:
            header = json.loads(fh.readline())
            meta_blob = fh.read(header["meta_len"])
        payload = pickle.dumps({"not": "an artifact"})
        header["payload_sha"] = _sha(payload)
        header["payload_len"] = len(payload)
        with open(path, "wb") as fh:
            fh.write(json.dumps(header).encode() + b"\n")
            fh.write(meta_blob)
            fh.write(payload)
        assert cache.load(texts, vfp, sfp) is None
        assert cache.corrupt_rejects == 1

    def test_tampered_meta_rejected(self, cache, gateway):
        """The meta half carries the exactness table and the journaled
        plan text; a flipped meta byte must fail its own digest and
        read as a cold build, never redirect classification."""
        texts, vfp, sfp, path = self.setup_artifact(cache, gateway)
        blob = bytearray(open(path, "rb").read())
        nl = blob.index(b"\n")
        blob[nl + 10] ^= 0xFF  # inside the meta pickle
        open(path, "wb").write(bytes(blob))
        assert cache.load(texts, vfp, sfp) is None
        assert cache.corrupt_rejects == 1


class TestEngineWarmPath:
    def test_warm_plan_is_byte_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = CloudlessEngine(
            gateway=CloudGateway.simulated(seed=3), cache_dir=cache_dir
        )
        cold_plan = cold.plan(SOURCE)
        assert cold.compile_cache.stores == 1

        warm = CloudlessEngine(
            gateway=CloudGateway.simulated(seed=3), cache_dir=cache_dir
        )
        warm_plan = warm.plan(SOURCE)
        assert warm.compile_cache.exact_hits == 1
        assert warm_plan.render() == cold_plan.render()
        # the render came from the journaled plan text: the warm run
        # never paid the O(estate) unpickle of the artifact payload
        assert not warm._cache_ctx.lookup.materialized
        # ...but touching the object graph still works
        assert len(warm_plan.changes) == len(cold_plan.changes)
        assert warm._cache_ctx.lookup.materialized

        bare = CloudlessEngine(gateway=CloudGateway.simulated(seed=3))
        assert bare.plan(SOURCE).render() == cold_plan.render()

    def test_cached_plan_not_served_for_different_state(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = CloudlessEngine(
            gateway=CloudGateway.simulated(seed=3), cache_dir=cache_dir
        )
        engine.plan(SOURCE)
        applied = engine.apply(SOURCE)
        assert applied.ok
        # estate now converged: the journaled create-everything plan
        # must not replay; the warm plan sees the new state
        noop = engine.plan(SOURCE)
        assert all(
            c.action.value == "noop" for c in noop.changes.values()
        )

    def test_warm_apply_matches_cold_apply(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = CloudlessEngine(
            gateway=CloudGateway.simulated(seed=3), cache_dir=cache_dir
        )
        cold_res = cold.apply(SOURCE)
        assert cold_res.ok

        warm = CloudlessEngine(
            gateway=CloudGateway.simulated(seed=3), cache_dir=cache_dir
        )
        warm_res = warm.apply(SOURCE)
        assert warm_res.ok
        assert warm.compile_cache.exact_hits >= 1
        assert (
            warm_res.apply.state.content_hash()
            == cold_res.apply.state.content_hash()
        )


class TestRebuildInvalidation:
    def test_rebuild_fallback_clears_cache(self, tmp_path):
        cache = CompileCache(str(tmp_path / "cache"))
        gateway = CloudGateway.simulated(seed=3)
        texts = {"main.clc": SOURCE}
        vfp, sfp = store_artifact(cache, gateway, texts)
        assert cache.load(texts, vfp, sfp) is not None

        session = IncrementalSession(
            gateway, source=SOURCE, compile_cache=cache
        )
        state = StateDocument()
        session.plan(state)
        # a patch touching locals cannot be grafted onto the resident
        # graph: the session falls back to a full rebuild, which must
        # fire the cache-clear hook
        result = session.replan('locals {\n  extra = "x"\n}\n', state)
        assert result.mode == "rebuild"
        assert session.rebuilds == 1
        assert cache.load(texts, vfp, sfp) is None
        assert not [
            f
            for f in os.listdir(cache.cache_dir)
            if f.endswith(".clcc")
        ]
