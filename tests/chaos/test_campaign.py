"""The chaos DSL, seed derivation, and campaign runner themselves.

Covers the declarative layer (specs round-trip through JSON dicts,
validation errors name the offending field), the unified seed scheme,
the new cloud-layer fault primitives the injections build on (windowed
faults, op-class-scoped outages, token-bucket preemption, skewed
clocks), and the runner's twin-engine invariant checking on small
scenarios -- including that it *detects* a rigged divergence.
"""

import json

import pytest

from repro.chaos import (
    DEFECT_CLASSES,
    CampaignRunner,
    CampaignSpec,
    ClockSkew,
    CorrelatedOutage,
    QuotaStorm,
    ScenarioSpec,
    SpecValidationError,
    TransientRate,
    derive_seed,
    injection_from_dict,
    library,
    trial_count,
    validate_classes,
)
from repro.cloud import CloudGateway
from repro.cloud.clock import SimClock, SkewedClock
from repro.cloud.faults import FaultSpec, OutageSpec
from repro.cloud.faults import SpecValidationError as CloudSpecError


# -- seeds ---------------------------------------------------------------------


def test_seed_derivation_is_stable_and_distinct():
    a = derive_seed("camp", "scenario", 0)
    assert a == derive_seed("camp", "scenario", 0)
    assert a != derive_seed("camp", "scenario", 1)
    assert a != derive_seed("camp", "other", 0)
    assert a != derive_seed("other", "scenario", 0)
    assert 0 <= a < 2**63


def test_trial_count_reads_legacy_seed_lists(monkeypatch):
    monkeypatch.delenv("X_SEEDS", raising=False)
    assert trial_count("X_SEEDS", 4) == 4
    monkeypatch.setenv("X_SEEDS", "0")
    assert trial_count("X_SEEDS", 4) == 1
    monkeypatch.setenv("X_SEEDS", "7,9,13")
    assert trial_count("X_SEEDS", 4) == 3


# -- cloud-layer primitives ----------------------------------------------------


def test_fault_spec_round_trips_and_validates():
    spec = FaultSpec(
        error_code="Throttling",
        message="m",
        probability=0.5,
        transient=True,
        start_s=10.0,
        end_s=20.0,
    )
    clone = FaultSpec.from_dict(spec.to_dict())
    assert clone.to_dict() == spec.to_dict()
    with pytest.raises(CloudSpecError) as err:
        FaultSpec.from_dict({"error_code": "E", "probabiliti": 1.0})
    assert "probabiliti" in str(err.value)  # names the offending field
    with pytest.raises(CloudSpecError) as err:
        FaultSpec.from_dict({})
    assert "error_code" in str(err.value)


def test_fault_spec_window_gates_activity():
    spec = FaultSpec(
        error_code="E", message="m", start_s=10.0, end_s=20.0
    )
    assert not spec.active_at(5.0)
    assert spec.active_at(15.0)
    assert not spec.active_at(25.0)


def test_outage_spec_round_trips_and_validates():
    spec = OutageSpec(
        start_s=0.0, end_s=100.0, op_class="write", region="r1"
    )
    clone = OutageSpec.from_dict(spec.to_dict())
    assert clone.to_dict() == spec.to_dict()
    with pytest.raises(CloudSpecError) as err:
        OutageSpec.from_dict({"start_s": 0.0})
    assert "end_s" in str(err.value)
    with pytest.raises(CloudSpecError) as err:
        OutageSpec.from_dict({"start_s": 0.0, "end_s": 1.0, "mod": "x"})
    assert "mod" in str(err.value)


def test_write_scoped_outage_spares_reads():
    gateway = CloudGateway.simulated(seed=7)
    plane = gateway.planes["aws"]
    gateway.inject_outage(
        "aws", OutageSpec(start_s=0.0, end_s=10000.0, op_class="write")
    )
    from repro.cloud.base import CloudAPIError

    with pytest.raises(CloudAPIError) as err:
        plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
        )
    assert err.value.code == "ServiceUnavailable"
    # reads keep answering through the same window
    page = plane.execute("list", "aws_vpc")
    assert page is not None
    # a write-scoped outage is not a status-page outage: it must not
    # darken the partition for horizon planning
    assert gateway.dark_partitions() == {}


def test_token_bucket_preemption_starves_writes():
    clock = SimClock()
    gateway = CloudGateway.simulated(seed=7)
    plane = gateway.planes["aws"]
    horizon = plane.limiter.preempt("write", clock.now, 600.0)
    assert horizon > clock.now
    # the next write must wait out the noisy neighbor
    assert plane.limiter.available_at("write", clock.now) >= horizon


def test_skewed_clock_offsets_reads():
    base = SimClock()
    base.advance_to(100.0)
    skewed = SkewedClock(base, offset_s=60.0)
    assert skewed.now == pytest.approx(160.0)
    base.advance_to(200.0)
    assert skewed.now == pytest.approx(260.0)


# -- the DSL -------------------------------------------------------------------


def test_scenario_round_trips_through_json():
    for name, spec in library().items():
        data = json.loads(json.dumps(spec.to_dict()))
        clone = ScenarioSpec.from_dict(data)
        assert clone.to_dict() == spec.to_dict(), name
        assert clone.injections == spec.injections, name


def test_injection_round_trips_preserve_kind():
    injection = CorrelatedOutage(
        zones=[["aws", "us-east-1"], ["azure", "eastus"]],
        start_s=5.0,
        duration_s=100.0,
        stagger_s=10.0,
    )
    clone = injection_from_dict(injection.to_dict())
    assert isinstance(clone, CorrelatedOutage)
    assert clone.to_dict() == injection.to_dict()


def test_validation_errors_name_the_field():
    with pytest.raises(SpecValidationError) as err:
        ScenarioSpec(name="x", workload="no_such_workload")
    assert "workload" in str(err.value)

    with pytest.raises(SpecValidationError) as err:
        ScenarioSpec(name="x", phases=[{"op": "apply"}, {"op": "warp"}])
    assert "phases[1]" in str(err.value)

    with pytest.raises(SpecValidationError) as err:
        ScenarioSpec(
            name="x", phases=[{"op": "churn", "updatez": 1}]
        )
    assert "updatez" in str(err.value)

    with pytest.raises(SpecValidationError) as err:
        TransientRate(rate=1.5)
    assert "rate" in str(err.value)

    with pytest.raises(SpecValidationError) as err:
        CorrelatedOutage(zones=[["aws"]])
    assert "zones" in str(err.value)

    with pytest.raises(SpecValidationError) as err:
        ClockSkew(provider="aws", offset_s=-5.0)
    assert "offset_s" in str(err.value)


def test_campaign_from_dict_resolves_library_names():
    campaign = CampaignSpec.from_dict(
        {
            "name": "c",
            "scenarios": ["crash-midway", "quota-storm"],
            "trials": 2,
        },
        library=library(),
    )
    assert [s.name for s in campaign.scenarios] == [
        "crash-midway",
        "quota-storm",
    ]
    assert all(s.trials == 2 for s in campaign.scenarios)
    with pytest.raises(SpecValidationError) as err:
        CampaignSpec.from_dict(
            {"name": "c", "scenarios": ["no-such-scenario"]},
            library=library(),
        )
    assert "scenarios[0]" in str(err.value)


def test_duplicate_scenario_names_rejected():
    spec = ScenarioSpec(name="dup")
    with pytest.raises(SpecValidationError):
        CampaignSpec(name="c", scenarios=[spec, ScenarioSpec(name="dup")])


# -- taxonomy + library coverage ----------------------------------------------


def test_library_meets_coverage_floor():
    specs = library()
    assert len(specs) >= 12
    covered = set()
    for spec in specs.values():
        classes = spec.defect_classes()
        assert classes, f"{spec.name} exercises no defect class"
        assert validate_classes(classes) == [], spec.name
        covered.update(classes)
    assert len(covered) >= 6
    # and the classes themselves are real taxonomy entries
    assert covered <= set(DEFECT_CLASSES)


def test_unknown_defect_classes_are_rejected():
    assert validate_classes(["availability/service-outage"]) == []
    assert validate_classes(["no/such-class"]) == ["no/such-class"]
    with pytest.raises(SpecValidationError) as err:
        ScenarioSpec(name="x", extra_classes=["no/such-class"])
    assert "no/such-class" in str(err.value)


# -- the runner ----------------------------------------------------------------


def test_runner_reports_structured_trials(tmp_path):
    campaign = CampaignSpec(
        name="unit",
        scenarios=[
            ScenarioSpec(
                name="tiny-storm",
                workload="web_tier",
                workload_args={"web_vms": 1, "app_vms": 1},
                injections=[TransientRate(rate=0.05)],
                patient_retry=True,
            )
        ],
        trials=2,
    )
    report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
    assert report.passed
    assert report.pass_rate == 1.0
    trials = report.results[0].trials
    assert [t.seed for t in trials] == [
        derive_seed("unit", "tiny-storm", 0),
        derive_seed("unit", "tiny-storm", 1),
    ]
    # report round-trips through JSON
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["passed"] is True
    assert doc["scenarios"][0]["trials"][0]["violations"] == []
    assert "reliability/transient-error" in doc["coverage"]


def test_runner_detects_rigged_divergence(tmp_path):
    """The invariants must have teeth: a rogue resource planted only in
    the chaos arm (and never released) must fail the trial."""

    class Saboteur(TransientRate):
        def arm(self, engine):
            engine.gateway.planes["aws"].external_create(
                "aws_s3_bucket",
                {"name": "planted-evidence"},
                engine.gateway.planes["aws"].regions[0],
                actor="saboteur",
            )

        def release(self, engine):
            pass

    campaign = CampaignSpec(
        name="rigged",
        scenarios=[
            ScenarioSpec(
                name="sabotage",
                workload="web_tier",
                workload_args={"web_vms": 1, "app_vms": 1},
                injections=[Saboteur(rate=0.0)],
            )
        ],
    )
    report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
    assert not report.passed
    joined = " ".join(report.violations())
    assert "estate shape" in joined or "tracked by no state entry" in joined


def test_quota_storm_releases_cleanly(tmp_path):
    """Squatters and the tightened quota are both gone after drain, so
    the chaos arm converges to baseline despite terminal 429s."""
    campaign = CampaignSpec(
        name="quota-unit",
        scenarios=[
            ScenarioSpec(
                name="squeeze",
                workload="web_tier",
                workload_args={"web_vms": 2, "app_vms": 1},
                injections=[
                    QuotaStorm(
                        provider="aws",
                        rtype="aws_virtual_machine",
                        squatters=2,
                    )
                ],
            )
        ],
    )
    report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
    assert report.passed, report.violations()
    trial = report.results[0].trials[0]
    # the storm was real: the chaos arm worked harder than baseline
    assert trial.api_calls_chaos > trial.api_calls_baseline


def test_tenant_storm_reports_service_perf_probes(tmp_path):
    """The tenant-storm phase drives the multi-tenant service tier and
    must surface its service.* perf probes in the campaign report, so a
    campaign JSON is enough to audit admission behavior post-hoc."""
    scenario = library()["tenant-storm"]
    campaign = CampaignSpec(
        name="storm-unit", scenarios=[scenario], trials=1
    )
    report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
    assert report.passed, report.violations()

    doc = json.loads(json.dumps(report.to_dict()))
    phases = doc["scenarios"][0]["trials"][0]["phases"]
    storm = next(p for p in phases if p["op"] == "tenant_storm")
    details = storm["details"]
    # the kill is real: tenants crashed mid-apply and the successor
    # instance adopted their orphaned resources on resume
    assert details["killed"] >= 1
    assert details["adopted"] > 0
    # counters: admissions flowed through the service tier
    counters = details["perf_counters"]
    assert counters.get("service.admitted", 0) > 0
    # gauges: fairness + tenancy published by stats()
    gauges = details["perf_gauges"]
    assert gauges.get("service.active_tenants", 0) >= details["tenants"]
    assert "service.fairness_ratio" in gauges
    # timers: queue-wait observations were recorded
    assert details["perf_timers"].get("service.queued_ms", 0) > 0
