"""Process-crash chaos: kill apply at every event boundary, resume.

The executor's event loop calls a ``crash_hook`` before processing each
popped completion; the hook raises :class:`SimulatedCrash` (a
``BaseException``, like a real ``SIGKILL``-adjacent death) at a chosen
boundary. At that instant the engine's in-memory working state is lost,
in-flight operations are stranded at the control planes, and only two
artifacts survive: the write-ahead intent journal and the cloud itself.

``engine.resume()`` must then converge to the *same estate* an
uninterrupted apply produces -- the convergence invariants live in
:mod:`repro.chaos.invariants`, shared with the campaign runner. The
exhaustive boundary sweeps run *through* the runner: one generated
scenario per kill point, each a full twin-engine trial.

Sweep size is env-tunable for CI smoke tiers:

    CRASH_SEEDS=0,1 CRASH_KILL_POINTS=3 python -m pytest tests/chaos/test_crash_recovery.py -q

``CRASH_KILL_POINTS=N`` picks N evenly spaced boundaries; unset runs
every boundary of the workload. The historical ``CRASH_SEEDS`` list now
sizes the trial matrix (seeds derive from the campaign).
"""

import os

import pytest

from repro.chaos import (
    CampaignRunner,
    CampaignSpec,
    ScenarioSpec,
    canonical_state,
    trial_count,
)
from repro.core import CloudlessEngine
from repro.deploy import SimulatedCrash
from repro.workloads import web_tier

TRIALS = trial_count("CRASH_SEEDS", 2)

SRC = web_tier(web_vms=3, app_vms=2)


def count_boundaries(tmp_path):
    """An uninterrupted run, counting event boundaries the hook sees."""
    boundaries = []
    engine = CloudlessEngine(seed=0, wal_path=str(tmp_path / "count.wal"))
    result = engine.apply(SRC, crash_hook=boundaries.append)
    assert result.ok
    return len(boundaries)


def kill_points(total):
    requested = os.environ.get("CRASH_KILL_POINTS", "")
    if not requested.strip():
        return list(range(total))
    n = max(1, int(requested))
    if n >= total:
        return list(range(total))
    step = total / n
    return sorted({int(i * step) for i in range(n)})


def test_crash_at_every_boundary_resumes_to_same_estate(tmp_path):
    """One generated scenario per boundary, swept through the runner:
    every trial kills the apply at that boundary, resumes, and must
    satisfy every convergence invariant (canonical equality, estate
    shape, id bijection, content-hash agreement, retired WAL)."""
    total = count_boundaries(tmp_path)
    assert total > 0
    campaign = CampaignSpec(
        name="crash-boundaries",
        scenarios=[
            ScenarioSpec(
                name=f"crash-at-{k}",
                workload="web_tier",
                workload_args={"web_vms": 3, "app_vms": 2},
                phases=[{"op": "crash_apply", "kill_point": k}],
            )
            for k in kill_points(total)
        ],
        trials=TRIALS,
    )
    report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
    assert report.passed, report.violations()
    # every chaos arm really crashed and really recovered
    for result in report.results:
        for trial in result.trials:
            assert trial.phases[0].crashed
            assert trial.phases[0].details["recovered"]


def test_crash_during_downscale_recovers_deletes(tmp_path):
    """Crashing a destructive second apply must not strand deletes."""
    before = {"web_vms": 3, "app_vms": 2}
    after = {"web_vms": 2, "app_vms": 1}

    # boundary count of the *second* apply, measured uninterrupted
    baseline = CloudlessEngine(
        seed=0, wal_path=str(tmp_path / "base.wal")
    )
    assert baseline.apply(web_tier(**before)).ok
    boundaries = []
    assert baseline.apply(
        web_tier(**after), crash_hook=boundaries.append
    ).ok
    total = len(boundaries)
    assert total > 0

    step = max(1, total // 4)
    campaign = CampaignSpec(
        name="crash-downscale-sweep",
        scenarios=[
            ScenarioSpec(
                name=f"downscale-at-{k}",
                workload="web_tier",
                workload_args=before,
                phases=[
                    {"op": "apply"},
                    {
                        "op": "crash_apply",
                        "kill_point": k,
                        "workload_args": after,
                    },
                ],
            )
            for k in range(0, total, step)
        ],
    )
    report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
    assert report.passed, report.violations()
    for result in report.results:
        assert result.trials[0].phases[1].crashed


def test_resume_without_crash_is_a_plain_apply(tmp_path):
    """A clean journal resumes straight into a no-op apply."""
    wal = str(tmp_path / "clean.wal")
    engine = CloudlessEngine(seed=0, wal_path=wal)
    assert engine.apply(SRC).ok
    before = canonical_state(engine)
    outcome = engine.resume()
    assert outcome.ok
    assert outcome.recovery is None or not outcome.recovery.actions
    assert canonical_state(engine) == before


def test_recovery_report_classifies_orphans(tmp_path):
    """A mid-apply crash leaves a mix of committed and orphaned
    intents, and the report says which repairs actually ran."""
    wal = str(tmp_path / "report.wal")
    engine = CloudlessEngine(seed=0, wal_path=wal)

    def hook(index):
        if index == 6:
            raise SimulatedCrash()

    with pytest.raises(SimulatedCrash):
        engine.apply(SRC, crash_hook=hook)
    engine.gateway.settle_inflight()

    outcome = engine.resume(SRC)
    assert outcome.ok
    report = outcome.recovery
    assert report is not None and report.actions
    summary = report.summary()
    assert sum(summary.values()) == len(report.actions)
    # every adopted orphan corresponds to a live record in state
    from repro.addressing import ResourceAddress

    for address in report.adopted:
        entry = engine.state.get(ResourceAddress.parse(address))
        assert entry is not None
        assert engine.gateway.find_record(entry.resource_id) is not None
