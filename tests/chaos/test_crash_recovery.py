"""Process-crash chaos: kill apply at every event boundary, resume.

The executor's event loop calls a ``crash_hook`` before processing each
popped completion; the hook raises :class:`SimulatedCrash` (a
``BaseException``, like a real ``SIGKILL``-adjacent death) at a chosen
boundary. At that instant the engine's in-memory working state is lost,
in-flight operations are stranded at the control planes, and only two
artifacts survive: the write-ahead intent journal and the cloud itself.

``engine.resume()`` must then converge to the *same estate* an
uninterrupted apply produces. "Same" is canonical, not byte-identical:
a resumed run re-discovers orphans in a different order, so resource
*id numbering* permutes and simulated timestamps shift, but everything
addressable must match once ids are rewritten to the owning address.

Sweep size is env-tunable for CI smoke tiers:

    CRASH_SEEDS=0,1 CRASH_KILL_POINTS=3 python -m pytest tests/chaos/test_crash_recovery.py -q

``CRASH_KILL_POINTS=N`` picks N evenly spaced boundaries; unset runs
every boundary of the workload.
"""

import json
import os
import re

import pytest

from repro.core import CloudlessEngine
from repro.deploy import SimulatedCrash
from repro.workloads import web_tier

SEEDS = [
    int(s)
    for s in os.environ.get("CRASH_SEEDS", "0,1").split(",")
    if s.strip()
]

SRC = web_tier(web_vms=3, app_vms=2)


# -- canonical comparison ------------------------------------------------------


def canonical_state(engine):
    """State JSON with run-dependent noise removed.

    Rewrites every occurrence of a live resource id (including inside
    computed attrs such as endpoints and DNS names) to the owning
    address, masks cloud-assigned random IPs (real clouds hand out
    whatever address DHCP has free), and drops serials, lineage, and
    timestamps.
    """
    id_map = {
        entry.resource_id: f"<{entry.address}>"
        for entry in engine.state.resources()
        if entry.resource_id
    }
    # longest-first so e.g. "db-00000010" never partially matches
    ordered = sorted(id_map, key=len, reverse=True)

    ip = re.compile(r"\b10\.\d+\.\d+\.\d+\b")

    def rewrite(value):
        if isinstance(value, str):
            for rid in ordered:
                if rid in value:
                    value = value.replace(rid, id_map[rid])
            return ip.sub("<ip>", value)
        if isinstance(value, list):
            return [rewrite(v) for v in value]
        if isinstance(value, dict):
            return {k: rewrite(v) for k, v in value.items()}
        return value

    doc = json.loads(engine.state.to_json())
    doc.pop("serial", None)
    doc.pop("lineage", None)
    live_addresses = {entry["address"] for entry in doc.get("resources", [])}
    for entry in doc.get("resources", []):
        entry.pop("created_at", None)
        entry.pop("updated_at", None)
        # a plain apply leaves dependency edges pointing at addresses a
        # downscale deleted; resume's dependency refresh prunes them.
        # Dangling edges carry no information either way -- drop both.
        entry["dependencies"] = [
            d for d in entry.get("dependencies", []) if d in live_addresses
        ]
    return rewrite(doc)


def live_prefix_counts(engine):
    """How many live records exist per id prefix (type family)."""
    counts = {}
    for record in engine.gateway.all_records():
        prefix = record.id.rsplit("-", 1)[0]
        counts[prefix] = counts.get(prefix, 0) + 1
    return counts


def assert_converged_like(resumed, baseline):
    # 1. canonical state equality: everything addressable matches once
    #    ids are rewritten to addresses
    assert canonical_state(resumed) == canonical_state(baseline)
    # 2. the clouds hold the same estate shape: no leaked duplicates,
    #    no missing resources
    assert live_prefix_counts(resumed) == live_prefix_counts(baseline)
    # 3. state ids <-> live record ids is a bijection (zero orphans,
    #    zero dangling state entries)
    state_ids = {
        e.resource_id for e in resumed.state.resources() if e.resource_id
    }
    live_ids = {r.id for r in resumed.gateway.all_records()}
    assert state_ids == live_ids


# -- sweep ---------------------------------------------------------------------


def count_boundaries(seed, tmp_path):
    """An uninterrupted run, counting event boundaries the hook sees."""
    boundaries = []
    engine = CloudlessEngine(
        seed=seed, wal_path=str(tmp_path / f"base-{seed}.wal")
    )
    result = engine.apply(SRC, crash_hook=boundaries.append)
    assert result.ok
    return engine, len(boundaries)


def kill_points(total):
    requested = os.environ.get("CRASH_KILL_POINTS", "")
    if not requested.strip():
        return list(range(total))
    n = max(1, int(requested))
    if n >= total:
        return list(range(total))
    step = total / n
    return sorted({int(i * step) for i in range(n)})


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_at_every_boundary_resumes_to_same_estate(seed, tmp_path):
    baseline, total = count_boundaries(seed, tmp_path)
    assert total > 0

    for k in kill_points(total):
        wal = str(tmp_path / f"crash-{seed}-{k}.wal")
        engine = CloudlessEngine(seed=seed, wal_path=wal)

        def hook(index, _k=k):
            if index == _k:
                raise SimulatedCrash(f"killed at boundary {_k}")

        with pytest.raises(SimulatedCrash):
            engine.apply(SRC, crash_hook=hook)

        # the cloud outlives the dead client: accepted in-flight
        # operations still land
        engine.gateway.settle_inflight()

        outcome = engine.resume(SRC)
        assert outcome.ok, (
            f"seed {seed} kill point {k}: resume failed: "
            f"{outcome.result.diagnoses}"
        )
        assert_converged_like(engine, baseline)
        # the journal is retired once the resumed apply converges
        assert os.path.getsize(wal) == 0, (
            f"seed {seed} kill point {k}: WAL not marked clean"
        )


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_crash_during_downscale_recovers_deletes(seed, tmp_path):
    """Crashing a destructive second apply must not strand deletes."""
    before = web_tier(web_vms=3, app_vms=2)
    after = web_tier(web_vms=2, app_vms=1)

    baseline = CloudlessEngine(
        seed=seed, wal_path=str(tmp_path / "base.wal")
    )
    assert baseline.apply(before).ok
    boundaries = []
    assert baseline.apply(after, crash_hook=boundaries.append).ok
    total = len(boundaries)
    assert total > 0

    step = max(1, total // 4)
    for k in range(0, total, step):
        wal = str(tmp_path / f"down-{k}.wal")
        engine = CloudlessEngine(seed=seed, wal_path=wal)
        assert engine.apply(before).ok

        def hook(index, _k=k):
            if index == _k:
                raise SimulatedCrash(f"killed at boundary {_k}")

        with pytest.raises(SimulatedCrash):
            engine.apply(after, crash_hook=hook)
        engine.gateway.settle_inflight()

        outcome = engine.resume(after)
        assert outcome.ok, f"kill point {k}: resume failed"
        assert_converged_like(engine, baseline)


def test_resume_without_crash_is_a_plain_apply(tmp_path):
    """A clean journal resumes straight into a no-op apply."""
    wal = str(tmp_path / "clean.wal")
    engine = CloudlessEngine(seed=0, wal_path=wal)
    assert engine.apply(SRC).ok
    before = canonical_state(engine)
    outcome = engine.resume()
    assert outcome.ok
    assert outcome.recovery is None or not outcome.recovery.actions
    assert canonical_state(engine) == before


def test_recovery_report_classifies_orphans(tmp_path):
    """A mid-apply crash leaves a mix of committed and orphaned
    intents, and the report says which repairs actually ran."""
    wal = str(tmp_path / "report.wal")
    engine = CloudlessEngine(seed=0, wal_path=wal)

    def hook(index):
        if index == 6:
            raise SimulatedCrash()

    with pytest.raises(SimulatedCrash):
        engine.apply(SRC, crash_hook=hook)
    engine.gateway.settle_inflight()

    outcome = engine.resume(SRC)
    assert outcome.ok
    report = outcome.recovery
    assert report is not None and report.actions
    summary = report.summary()
    assert sum(summary.values()) == len(report.actions)
    # every adopted orphan corresponds to a live record in state
    from repro.addressing import ResourceAddress

    for address in report.adopted:
        entry = engine.state.get(ResourceAddress.parse(address))
        assert entry is not None
        assert engine.gateway.find_record(entry.resource_id) is not None
