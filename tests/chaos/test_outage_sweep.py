"""Outage chaos: overlapping region/provider windows, then recovery.

The degraded-mode contract, swept across seeds: an apply that runs into
overlapping outage windows (a hard regional outage plus a provider-wide
brownout, or a staggered provider-wide blackout) must

* converge every reachable resource,
* park every unreachable one as ``Quarantined`` -- zero terminal
  failures, and
* after the windows close, ``engine.resume()`` must drain the parked
  work to the *same canonical estate* an uninterrupted run produces.

Sweep size is env-tunable for CI smoke tiers::

    OUTAGE_SEEDS=0,1 python -m pytest tests/chaos/test_outage_sweep.py -q
"""

import os

import pytest

from repro.cloud import OutageSpec
from repro.core import CloudlessEngine
from repro.workloads import two_region_estate

from .test_crash_recovery import assert_converged_like

SEEDS = [
    int(s)
    for s in os.environ.get("OUTAGE_SEEDS", "0,1,2").split(",")
    if s.strip()
]

SRC = two_region_estate(42)  # 6 azure stacks, striped eastus/westus2


def drained_equals_uninterrupted(engine, seed):
    """Resume and compare against a fault-free run of the same seed."""
    outcome = engine.resume(SRC)
    assert outcome.ok
    baseline = CloudlessEngine(seed=seed)
    assert baseline.apply(SRC).ok
    assert_converged_like(engine, baseline)


@pytest.mark.parametrize("seed", SEEDS)
def test_region_outage_with_overlapping_brownout(seed, tmp_path):
    engine = CloudlessEngine(
        seed=seed, wal_path=str(tmp_path / "apply.wal")
    )
    engine.gateway.inject_outage(
        "azure", OutageSpec(start_s=0.0, end_s=30000.0, region="westus2")
    )
    engine.gateway.inject_outage(
        "azure",
        OutageSpec(
            start_s=500.0,
            end_s=20000.0,
            mode="brownout",
            latency_multiplier=2.0,
        ),
    )
    result = engine.apply(SRC)
    assert result.partial
    assert result.apply.failed == {}  # parked, never terminally failed
    assert result.apply.quarantined_partitions() == ["azure/westus2"]
    # the brownout slowed eastus but never darkened it
    assert len(result.apply.succeeded) == 21

    engine.clock.advance_to(30000.0 + 4000.0)
    drained_equals_uninterrupted(engine, seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_provider_blackout_overlapping_region_outage(seed, tmp_path):
    """Everything goes dark at t=0; the region stays dark longer. The
    apply parks the entire azure estate, and recovery still converges."""
    engine = CloudlessEngine(
        seed=seed, wal_path=str(tmp_path / "apply.wal")
    )
    engine.gateway.inject_outage(
        "azure", OutageSpec(start_s=0.0, end_s=8000.0)
    )
    engine.gateway.inject_outage(
        "azure", OutageSpec(start_s=0.0, end_s=30000.0, region="westus2")
    )
    result = engine.apply(SRC)
    assert result.partial
    assert result.apply.failed == {}
    assert len(result.apply.succeeded) == 0  # nothing was reachable

    engine.clock.advance_to(30000.0 + 4000.0)
    drained_equals_uninterrupted(engine, seed)
