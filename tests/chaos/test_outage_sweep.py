"""Outage chaos: overlapping region/provider windows, then recovery.

The degraded-mode contract, run as library scenarios through the
campaign runner: an apply that runs into overlapping outage windows (a
hard regional outage plus a provider-wide brownout, or a staggered
provider-wide blackout) must

* converge every reachable resource,
* park every unreachable one as ``Quarantined`` -- zero terminal
  failures, and
* after the windows close, drain the parked work to the *same
  canonical estate* an uninterrupted run produces (the runner's
  convergence invariants).

Sweep size is env-tunable for CI smoke tiers; the historical
``OUTAGE_SEEDS`` list now sizes the trial matrix while the seeds
themselves derive from the campaign::

    OUTAGE_SEEDS=0,1 python -m pytest tests/chaos/test_outage_sweep.py -q
"""

import pytest

from repro.chaos import CampaignRunner, CampaignSpec, scenario, trial_count

TRIALS = trial_count("OUTAGE_SEEDS", 3)


@pytest.fixture(scope="module")
def outage_report():
    campaign = CampaignSpec(
        name="outage-sweep",
        scenarios=[
            scenario("region-outage-brownout"),
            scenario("provider-blackout"),
        ],
        trials=TRIALS,
    )
    return CampaignRunner(campaign).run()


def result_of(report, name):
    return next(r for r in report.results if r.name == name)


def test_outage_campaign_converges(outage_report):
    assert outage_report.passed, outage_report.violations()


def test_region_outage_with_overlapping_brownout(outage_report):
    """Reachable resources converge; the dark region parks, never
    fails terminally."""
    for trial in result_of(outage_report, "region-outage-brownout").trials:
        apply = trial.phases[0]
        assert apply.partial
        assert apply.failed == 0  # parked, never terminally failed
        assert apply.quarantined == ["azure/westus2"]
        # the brownout slowed eastus but never darkened it
        assert apply.succeeded == 21


def test_provider_blackout_overlapping_region_outage(outage_report):
    """Everything is dark at t=0: the apply parks the entire estate,
    and recovery still converges."""
    for trial in result_of(outage_report, "provider-blackout").trials:
        apply = trial.phases[0]
        assert apply.partial
        assert apply.failed == 0
        assert apply.succeeded == 0  # nothing was reachable
        assert apply.quarantined  # the whole estate parked


def test_outage_recovery_costs_extra_calls(outage_report):
    """Draining parked work is never free: the chaos arm re-plans and
    re-applies, so it spends at least as many API calls as baseline."""
    for result in outage_report.results:
        for trial in result.trials:
            assert trial.api_calls_chaos >= trial.api_calls_baseline
