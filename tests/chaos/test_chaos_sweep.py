"""Chaos sweep: every lifecycle verb under injected faults.

The blanket-transient-rate lifecycle sweep (apply -> churn -> drift
reconcile -> update -> rollback) runs as the ``transient-storm`` /
``transient-monsoon`` library scenarios through the campaign runner:
each trial is a twin-engine run whose chaos arm must converge to the
baseline's canonical estate with zero silent corruption.

Two facets the campaign runner does not model stay as direct tests:
the :class:`UpdateCoordinator` (concurrent team updates under faults,
with retry-counter evidence) and the resilient importer under flaky
paginated list calls.

The historical ``CHAOS_SEEDS`` list now sizes the trial matrix (seeds
derive from the campaign), so CI can run a single-trial smoke tier:

    CHAOS_SEEDS=0 python -m pytest tests/chaos -q

The whole sweep is deterministic: fault dice are per-plane seeded RNGs
and retry jitter is hash-keyed, so failures replay bit-for-bit.
"""

import pytest

from repro import perf
from repro.chaos import CampaignRunner, CampaignSpec, scenario, trial_count
from repro.cloud import FaultSpec, RetryPolicy
from repro.core import CloudlessEngine
from repro.state import ResourceLockManager
from repro.update import UpdateCoordinator, UpdateRequest
from repro.workloads import web_tier

TRIALS = trial_count("CHAOS_SEEDS", 5)

#: deploy executors get a patient schedule so a 0.15 fault rate cannot
#: realistically exhaust an apply (p_fail ~ 0.15^6 per resource)
PATIENT = RetryPolicy(max_attempts=6, base_backoff_s=2.0)


def chaotic_engine(seed, rate):
    engine = CloudlessEngine(seed=seed, retry=PATIENT)
    for plane in engine.gateway.planes.values():
        plane.faults.set_transient_rate(rate)
    return engine


def apply_until_ok(engine, source, attempts=4):
    """Apply, resuming on a partially-failed pass (plan is incremental)."""
    for _ in range(attempts):
        result = engine.apply(source)
        if result.ok:
            return result
    raise AssertionError(f"apply did not converge in {attempts} passes")


@pytest.mark.parametrize(
    "name", ["transient-storm", "transient-monsoon"]
)
def test_lifecycle_converges_under_chaos(name, tmp_path):
    """The full lifecycle under a blanket transient rate: every trial's
    chaos arm converges to the baseline estate (canonical equality,
    estate shape, id bijection, content hash, retired journal)."""
    campaign = CampaignSpec(
        name="lifecycle-sweep",
        scenarios=[scenario(name)],
        trials=TRIALS,
    )
    report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
    assert report.passed, report.violations()
    for result in report.results:
        for trial in result.trials:
            # the rollback phase really converged back to the snapshot
            rollback = trial.phases[-1]
            assert rollback.op == "rollback"
            assert rollback.ok


def test_monsoon_actually_retries(tmp_path):
    """At a 0.15 fault rate the resilience layer must be doing real
    work -- the perf counters prove faults were hit and retried."""
    perf.PERF.enable()
    perf.PERF.reset()
    try:
        campaign = CampaignSpec(
            name="lifecycle-sweep-evidence",
            scenarios=[scenario("transient-monsoon")],
            trials=1,
        )
        report = CampaignRunner(campaign, workdir=str(tmp_path)).run()
        assert report.passed, report.violations()
        counters = perf.snapshot()["counters"]
        assert counters.get("resilience.retries", 0) > 0
    finally:
        perf.PERF.reset()
        perf.PERF.disable()


def test_concurrent_updates_under_chaos():
    """Two teams resize disjoint VMs through the resilient gateway
    while every control plane throws transient faults."""
    engine = chaotic_engine(seed=1, rate=0.15)
    apply_until_ok(engine, web_tier(web_vms=4, app_vms=3))

    targets = [
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    ][:2]

    def resize(entry):
        def ops(gw):
            gw.execute(
                "update",
                entry.address.type,
                resource_id=entry.resource_id,
                attrs={"size": "xlarge"},
            )

        return ops

    coordinator = UpdateCoordinator(
        engine.state,
        ResourceLockManager(),
        gateway=engine.resilient,
    )
    outcome = coordinator.run(
        [
            UpdateRequest(
                team=f"team-{i}",
                submitted_at=engine.clock.now,
                keys={str(t.address)},
                duration_s=120.0,
                cloud_ops=resize(t),
            )
            for i, t in enumerate(targets)
        ]
    )
    assert outcome.serializable
    assert outcome.errors == []
    for entry in engine.state.resources():
        if entry.resource_id == "":
            continue
        assert engine.gateway.find_record(entry.resource_id) is not None


@pytest.mark.parametrize("seed", range(min(TRIALS, 3)))
def test_import_via_api_under_list_faults(seed):
    """The resilient importer sees the whole estate despite flaky
    paginated list calls."""
    engine = chaotic_engine(seed, 0.15)
    apply_until_ok(engine, web_tier(web_vms=8, app_vms=8))
    for plane in engine.gateway.planes.values():
        plane.faults.add_rule(
            FaultSpec(
                error_code="Throttling",
                message="rate exceeded",
                match_operation="list",
                probability=0.2,
                transient=True,
                max_strikes=-1,
            )
        )
    calls_before = engine.gateway.total_api_calls()
    project = engine.import_estate(adopt=False, via_api=True)
    live_ids = {r.id for r in engine.gateway.all_records()}
    imported_ids = {e.resource_id for e in project.state.resources()}
    assert imported_ids == live_ids
    # enumeration really went through the API (the in-memory shortcut
    # costs zero calls)
    assert engine.gateway.total_api_calls() > calls_before
