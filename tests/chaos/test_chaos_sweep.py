"""Chaos sweep: every lifecycle verb under injected faults.

Drives apply -> drift detect/reconcile -> concurrent update ->
rollback with a blanket transient fault rate on every control plane,
across seeded RNGs. The invariant is *zero silent corruption*: at
every stage each state entry either points at a live cloud record or
carries an explicit checkpoint marker (empty resource id) that a
re-run resumes; by the end the estate has converged.

Seeds come from ``CHAOS_SEEDS`` (comma-separated, default ``0,1,2,3,4``)
so CI can run a single-seed smoke tier:

    CHAOS_SEEDS=0 python -m pytest tests/chaos -q

The whole sweep is deterministic: fault dice are per-plane seeded RNGs
and retry jitter is hash-keyed, so failures replay bit-for-bit.
"""

import os

import pytest

from repro import perf
from repro.cloud import FaultSpec, RetryPolicy
from repro.core import CloudlessEngine
from repro.drift import FullScanDetector
from repro.state import ResourceLockManager
from repro.update import (
    ReversibilityAwareRollback,
    UpdateCoordinator,
    UpdateRequest,
    measure_divergence,
)
from repro.workloads import web_tier

RATES = [0.05, 0.15]
SEEDS = [
    int(s)
    for s in os.environ.get("CHAOS_SEEDS", "0,1,2,3,4").split(",")
    if s.strip()
]

#: deploy executors get a patient schedule so a 0.15 fault rate cannot
#: realistically exhaust an apply (p_fail ~ 0.15^6 per resource)
PATIENT = RetryPolicy(max_attempts=6, base_backoff_s=2.0)


def chaotic_engine(seed, rate):
    engine = CloudlessEngine(seed=seed, retry=PATIENT)
    for plane in engine.gateway.planes.values():
        plane.faults.set_transient_rate(rate)
    return engine


def assert_no_silent_corruption(engine):
    """Every state entry points at a live record or is an explicit
    checkpoint (empty id == rebuild in progress, resumable)."""
    for entry in engine.state.resources():
        if entry.resource_id == "":
            continue
        assert engine.gateway.find_record(entry.resource_id) is not None, (
            f"state entry {entry.address} silently points at dead id "
            f"{entry.resource_id}"
        )


def apply_until_ok(engine, source, attempts=4):
    """Apply, resuming on a partially-failed pass (plan is incremental)."""
    for _ in range(attempts):
        result = engine.apply(source)
        if result.ok:
            return result
    raise AssertionError(f"apply did not converge in {attempts} passes")


def reconcile_until_clean(engine, rounds=6):
    """Detect + reconcile until a scan comes back clean; interrupted
    repairs surface as fresh findings and resume next round."""
    for _ in range(rounds):
        run = FullScanDetector(engine.resilient).scan(engine.state)
        findings = [f for f in run.findings if f.kind != "unmanaged"]
        if not findings:
            return
        engine.reconcile(findings)
        assert_no_silent_corruption(engine)
    raise AssertionError(f"drift did not reconcile in {rounds} rounds")


@pytest.mark.parametrize("rate", RATES)
@pytest.mark.parametrize("seed", SEEDS)
def test_lifecycle_converges_under_chaos(rate, seed):
    perf.PERF.enable()
    perf.PERF.reset()
    try:
        engine = chaotic_engine(seed, rate)

        # -- apply ---------------------------------------------------------
        apply_until_ok(engine, web_tier(web_vms=4, app_vms=3))
        assert_no_silent_corruption(engine)

        # -- drift + reconcile --------------------------------------------
        vms = [
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        ]
        engine.gateway.planes["aws"].external_update(
            vms[0].resource_id, {"image": "win-2022"}  # forces replacement
        )
        engine.gateway.planes["aws"].external_delete(vms[1].resource_id)
        reconcile_until_clean(engine)

        snap = engine.history.checkpoint(
            engine.state,
            engine.last_sources,
            timestamp=engine.clock.now,
            description="post-reconcile",
        )

        # -- concurrent update (cloud ops behind the resilient gateway) ---
        targets = [
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        ][:2]

        def resize(entry):
            def ops(gw):
                gw.execute(
                    "update",
                    entry.address.type,
                    resource_id=entry.resource_id,
                    attrs={"size": "xlarge"},
                )

            return ops

        coordinator = UpdateCoordinator(
            engine.state,
            ResourceLockManager(),
            gateway=engine.resilient,
        )
        outcome = coordinator.run(
            [
                UpdateRequest(
                    team=f"team-{i}",
                    submitted_at=engine.clock.now,
                    keys={str(t.address)},
                    duration_s=120.0,
                    cloud_ops=resize(t),
                )
                for i, t in enumerate(targets)
            ]
        )
        assert outcome.serializable
        assert outcome.errors == []
        assert_no_silent_corruption(engine)

        # -- rollback (resume on remainder until converged) ----------------
        planner = ReversibilityAwareRollback(engine.resilient)
        for _ in range(5):
            plan = planner.plan(snap, engine.state)
            planner.execute(plan, engine.state)
            assert_no_silent_corruption(engine)
            if measure_divergence(engine.gateway, snap, engine.state) == 0:
                break
        assert measure_divergence(engine.gateway, snap, engine.state) == 0

        if rate >= 0.15:
            counters = perf.snapshot()["counters"]
            assert counters.get("resilience.retries", 0) > 0
    finally:
        perf.PERF.reset()
        perf.PERF.disable()


@pytest.mark.parametrize("seed", SEEDS)
def test_import_via_api_under_list_faults(seed):
    """The resilient importer sees the whole estate despite flaky
    paginated list calls."""
    engine = chaotic_engine(seed, 0.15)
    apply_until_ok(engine, web_tier(web_vms=8, app_vms=8))
    for plane in engine.gateway.planes.values():
        plane.faults.add_rule(
            FaultSpec(
                error_code="Throttling",
                message="rate exceeded",
                match_operation="list",
                probability=0.2,
                transient=True,
                max_strikes=-1,
            )
        )
    calls_before = engine.gateway.total_api_calls()
    project = engine.import_estate(adopt=False, via_api=True)
    live_ids = {r.id for r in engine.gateway.all_records()}
    imported_ids = {e.resource_id for e in project.state.resources()}
    assert imported_ids == live_ids
    # enumeration really went through the API (the in-memory shortcut
    # costs zero calls)
    assert engine.gateway.total_api_calls() > calls_before
