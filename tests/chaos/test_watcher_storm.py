"""The drift watcher under adversarial mutation storms (satellite).

Two library scenarios drive the event-driven watcher through burst
churn -- overlapping create/delete/update/security mutations between
watch cycles -- and through the same storm while the provider is dark.
The watcher must classify findings into the defect taxonomy, repair
what it can reach, defer what it cannot, and the estate must still
converge to the uninterrupted baseline.
"""

import pytest

from repro.chaos import CampaignRunner, CampaignSpec, scenario, trial_count

TRIALS = trial_count("CHAOS_SEEDS", 3)


@pytest.fixture(scope="module")
def storm_report(tmp_path_factory):
    campaign = CampaignSpec(
        name="watcher-storm",
        scenarios=[
            scenario("drift-storm-watch"),
            scenario("drift-storm-under-outage"),
        ],
        trials=TRIALS,
    )
    workdir = str(tmp_path_factory.mktemp("watcher-storm"))
    return CampaignRunner(campaign, workdir=workdir).run()


def result_of(report, name):
    return next(r for r in report.results if r.name == name)


def test_storm_campaign_converges(storm_report):
    assert storm_report.passed, storm_report.violations()


def test_watcher_classifies_the_storm(storm_report):
    """Burst churn must surface as taxonomy-classed findings: capacity
    (resize), availability (delete), provisioning (rogue create), and
    security (opened ingress)."""
    for trial in result_of(storm_report, "drift-storm-watch").trials:
        defects = {}
        for phase in trial.phases:
            if phase.op == "watch":
                for klass, count in phase.details["defects"].items():
                    defects[klass] = defects.get(klass, 0) + count
        assert defects.get("capacity/misconfiguration", 0) > 0
        assert defects.get("availability/missing-resource", 0) > 0
        assert defects.get("provisioning/unmanaged-resource", 0) > 0
        assert defects.get("security/misconfiguration", 0) > 0


def test_watcher_repairs_storm_within_watch_phases(storm_report):
    """With the plane reachable, every watch phase ends clean: no
    hard-failed repairs, nothing deferred at the last cycle."""
    for trial in result_of(storm_report, "drift-storm-watch").trials:
        for phase in trial.phases:
            if phase.op == "watch":
                assert phase.ok  # no terminally-failed repair
                assert phase.details["deferred"] == 0


def test_watcher_defers_while_dark_then_drains(storm_report):
    """Under an outage the watcher must not fail terminally -- repairs
    park against the recovery horizon and the drain converges them
    (the campaign-level invariants prove the convergence)."""
    for trial in result_of(
        storm_report, "drift-storm-under-outage"
    ).trials:
        for phase in trial.phases:
            if phase.op == "watch":
                assert phase.ok, phase.details
