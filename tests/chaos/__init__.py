"""Chaos sweep: lifecycle convergence under injected faults."""
