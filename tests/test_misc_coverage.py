"""Coverage for smaller units: critical path, cost, policy actions,
emitter details, data-source chaining, addressing helpers."""

import pytest

from repro.addressing import data, managed
from repro.cloud import CloudGateway
from repro.core import CloudlessEngine
from repro.graph import analyze, build_graph, Planner
from repro.lang import Configuration
from repro.policy import (
    CostEstimator,
    Deny,
    Notify,
    PHASE_PLAN,
    Policy,
    UnsupportedPolicyError,
    Warn,
)
from repro.state import StateDocument
from repro.workloads import web_tier


class TestCriticalPathAnalysis:
    def make_plan(self, gateway):
        graph = build_graph(Configuration.parse(web_tier(web_vms=3, app_vms=2)))
        planner = Planner(
            spec_lookup=gateway.try_spec,
            region_lookup=gateway.region_for,
            provider_lookup=gateway.provider_of,
        )
        return planner.plan(graph, StateDocument())

    def test_analysis_fields(self, gateway):
        plan = self.make_plan(gateway)
        analysis = analyze(plan, gateway.mean_latency)
        assert analysis.critical_length_s > 0
        assert analysis.total_work_s > analysis.critical_length_s
        assert analysis.parallelism_bound > 1.0
        assert analysis.max_width >= 3
        assert analysis.critical_path  # non-empty chain of change ids

    def test_critical_path_ends_at_a_sink(self, gateway):
        plan = self.make_plan(gateway)
        dag = plan.execution_dag()
        analysis = analyze(plan, gateway.mean_latency, execution_dag=dag)
        last = analysis.critical_path[-1]
        assert dag.successors(last) == set()

    def test_priorities_monotone_along_path(self, gateway):
        plan = self.make_plan(gateway)
        analysis = analyze(plan, gateway.mean_latency)
        priorities = [analysis.priorities[n] for n in analysis.critical_path]
        assert priorities == sorted(priorities, reverse=True)

    def test_empty_plan(self, gateway):
        graph = build_graph(Configuration.parse(""))
        plan = Planner().plan(graph, StateDocument())
        analysis = analyze(plan, gateway.mean_latency)
        assert analysis.critical_length_s == 0.0
        assert analysis.parallelism_bound == 1.0


class TestCostEstimator:
    def test_estimate_state(self):
        engine = CloudlessEngine(seed=50)
        assert engine.apply(web_tier(web_vms=2, app_vms=1)).ok
        estimator = CostEstimator()
        total = estimator.estimate_state(engine.state)
        assert total > 0
        # scaling up raises the estimate
        engine.apply(web_tier(web_vms=5, app_vms=1))
        assert estimator.estimate_state(engine.state) > total

    def test_custom_price_book(self):
        estimator = CostEstimator(hourly={"aws_virtual_machine": 1.0})
        monthly = estimator.resource_monthly(
            "aws_virtual_machine", {"size": "small"}
        )
        assert monthly == pytest.approx(730.0)

    def test_plan_estimate_excludes_deletes(self):
        engine = CloudlessEngine(seed=51)
        assert engine.apply(web_tier(web_vms=4, app_vms=0, with_db=False)).ok
        shrink_plan = engine.plan(web_tier(web_vms=1, app_vms=0, with_db=False))
        estimator = CostEstimator()
        assert estimator.estimate_plan(shrink_plan) < estimator.estimate_state(
            engine.state
        )


class TestPolicyLanguage:
    def test_unknown_phase_rejected(self):
        with pytest.raises(UnsupportedPolicyError):
            Policy(
                name="x",
                phase="full-moon",
                observe=lambda ctx: 1,
                condition=lambda v: True,
                actions=[],
            )

    def test_action_rendering(self):
        policy = Policy(
            name="p",
            phase=PHASE_PLAN,
            observe=lambda ctx: 7,
            condition=lambda v: True,
            actions=[Deny("bad: {observation}"), Warn("careful"), Notify("hi")],
        )

        class Ctx:
            observation = None

        requests = policy.evaluate(Ctx())
        kinds = [r.kind for r in requests]
        assert kinds == ["deny", "warn", "notify"]
        assert "7" in requests[0].message
        assert "[ops]" in requests[2].message

    def test_condition_false_produces_nothing(self):
        policy = Policy(
            name="p",
            phase=PHASE_PLAN,
            observe=lambda ctx: 1,
            condition=lambda v: v > 10,
            actions=[Deny("no")],
        )

        class Ctx:
            observation = None

        assert policy.evaluate(Ctx()) == []


class TestDataSourceChaining:
    def test_data_to_data_dependency(self, gateway):
        """A data source whose query uses another data source's result."""
        from repro.deploy.incremental import read_data_sources

        gateway.planes["aws"].external_create(
            "aws_s3_bucket", {"name": "seed-us-east-1"}, "us-east-1"
        )
        source = (
            'data "aws_region" "r" {}\n'
            'data "aws_s3_bucket" "b" {\n'
            '  name = "seed-${data.aws_region.r.name}"\n'
            "}\n"
            'resource "aws_dns_record" "d" {\n'
            '  name  = "rec"\n'
            '  zone  = "z"\n'
            "  value = data.aws_s3_bucket.b.id\n"
            "}\n"
        )
        graph = build_graph(Configuration.parse(source))
        values = read_data_sources(gateway, graph, StateDocument())
        assert values["data.aws_s3_bucket.b"]["name"] == "seed-us-east-1"

    def test_missing_data_lookup_raises(self, gateway):
        from repro.cloud import CloudAPIError
        from repro.deploy.incremental import read_data_sources

        source = 'data "aws_s3_bucket" "ghost" {\n  name = "nope"\n}\n'
        graph = build_graph(Configuration.parse(source))
        with pytest.raises(CloudAPIError):
            read_data_sources(gateway, graph, StateDocument())


class TestAddressingHelpers:
    def test_shorthands(self):
        assert str(managed("aws_vpc", "x")) == "aws_vpc.x"
        assert str(data("aws_region", "r")) == "data.aws_region.r"

    def test_in_module_and_with_key(self):
        addr = managed("aws_vm", "web").in_module("net").with_key(2)
        assert str(addr) == "module.net.aws_vm.web[2]"
        assert str(addr.config_address) == "module.net.aws_vm.web"

    def test_invalid_mode(self):
        from repro.addressing import ResourceAddress

        with pytest.raises(ValueError):
            ResourceAddress(type="t", name="n", mode="imaginary")


class TestSpecHelpers:
    def test_attribute_spec_views(self, registry):
        spec = registry.spec_for("aws_virtual_machine")
        nic = spec.attr("nic_ids")
        assert nic.ref_target == "aws_network_interface"
        assert nic.is_ref_list
        size = spec.attr("size")
        assert size.enum_values == ["small", "medium", "large", "xlarge"]
        assert spec.attr("id").computed
        assert {a.name for a in spec.required_attrs()} >= {"name", "nic_ids"}

    def test_catalogs_are_well_formed(self, registry):
        for rtype in registry.known_types():
            spec = registry.spec_for(rtype)
            assert spec.attr("id") is not None and spec.attr("id").computed
            assert spec.latency.create_s > 0
            for aspec in spec.reference_attrs():
                target = aspec.ref_target
                assert registry.spec_for(target) is not None, (
                    f"{rtype}.{aspec.name} references unknown type {target}"
                )
