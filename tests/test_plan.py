"""Planner tests: action classification, replacement, execution DAG."""

import pytest

from repro.addressing import ResourceAddress
from repro.graph.builder import build_graph
from repro.graph.plan import Action, PlanError, Planner
from repro.lang import Configuration
from repro.state import ResourceState, StateDocument
from repro.types import SchemaRegistry

REGISTRY = SchemaRegistry.default()


def make_planner():
    return Planner(spec_lookup=REGISTRY.spec_for)


def plan_for(source, state=None):
    graph = build_graph(Configuration.parse(source))
    return make_planner().plan(graph, state or StateDocument())


def vpc_state(attrs=None, region="us-east-1"):
    doc = StateDocument()
    doc.set(
        ResourceState(
            address=ResourceAddress.parse("aws_vpc.main"),
            resource_id="vpc-1",
            provider="aws",
            attrs=attrs
            or {"id": "vpc-1", "name": "main", "cidr_block": "10.0.0.0/16"},
            region=region,
        )
    )
    return doc


VPC_SOURCE = (
    'resource "aws_vpc" "main" {\n'
    '  name       = "main"\n'
    '  cidr_block = "10.0.0.0/16"\n'
    "}\n"
)


class TestActions:
    def test_create_when_absent(self):
        plan = plan_for(VPC_SOURCE)
        assert plan.changes["aws_vpc.main"].action is Action.CREATE

    def test_noop_when_unchanged(self):
        plan = plan_for(VPC_SOURCE, vpc_state())
        assert plan.changes["aws_vpc.main"].action is Action.NOOP
        assert plan.is_empty

    def test_update_on_mutable_change(self):
        plan = plan_for(
            VPC_SOURCE.replace('name       = "main"', 'name       = "renamed"'),
            vpc_state(),
        )
        change = plan.changes["aws_vpc.main"]
        assert change.action is Action.UPDATE
        assert [d.name for d in change.diffs] == ["name"]

    def test_replace_on_immutable_change(self):
        plan = plan_for(
            VPC_SOURCE.replace("10.0.0.0/16", "10.9.0.0/16"), vpc_state()
        )
        change = plan.changes["aws_vpc.main"]
        assert change.action is Action.REPLACE
        assert change.replacement_reasons() == ["cidr_block"]

    def test_delete_when_removed_from_config(self):
        plan = plan_for("", vpc_state())
        assert plan.changes["aws_vpc.main"].action is Action.DELETE

    def test_count_shrink_deletes_extras(self):
        doc = StateDocument()
        for i in range(3):
            doc.set(
                ResourceState(
                    address=ResourceAddress.parse(f"aws_s3_bucket.b[{i}]"),
                    resource_id=f"bkt-{i}",
                    provider="aws",
                    attrs={"id": f"bkt-{i}", "name": f"b-{i}", "versioning": False},
                    region="us-east-1",
                )
            )
        plan = plan_for(
            'resource "aws_s3_bucket" "b" {\n'
            "  count = 2\n"
            '  name  = "b-${count.index}"\n'
            "}\n",
            doc,
        )
        assert plan.changes["aws_s3_bucket.b[2]"].action is Action.DELETE
        assert plan.changes["aws_s3_bucket.b[0]"].action is Action.NOOP

    def test_region_move_is_replacement(self):
        doc = StateDocument()
        doc.set(
            ResourceState(
                address=ResourceAddress.parse("azure_resource_group.rg"),
                resource_id="rg-1",
                provider="azure",
                attrs={"id": "rg-1", "name": "rg", "location": "eastus"},
                region="eastus",
            )
        )
        planner = Planner(
            spec_lookup=REGISTRY.spec_for,
            region_lookup=lambda rtype, attrs: attrs.get("location", ""),
        )
        graph = build_graph(
            Configuration.parse(
                'resource "azure_resource_group" "rg" {\n'
                '  name     = "rg"\n'
                '  location = "westeurope"\n'
                "}\n"
            )
        )
        plan = planner.plan(graph, doc)
        assert plan.changes["azure_resource_group.rg"].action is Action.REPLACE

    def test_ignore_changes_suppresses_diff(self):
        plan = plan_for(
            'resource "aws_vpc" "main" {\n'
            '  name       = "renamed"\n'
            '  cidr_block = "10.0.0.0/16"\n'
            "  lifecycle { ignore_changes = [name] }\n"
            "}\n",
            vpc_state(),
        )
        assert plan.changes["aws_vpc.main"].action is Action.NOOP

    def test_prevent_destroy_blocks_delete(self):
        state = vpc_state()
        with pytest.raises(PlanError):
            plan_for(
                VPC_SOURCE.replace("10.0.0.0/16", "10.1.0.0/16").replace(
                    "}\n", "  lifecycle { prevent_destroy = true }\n}\n"
                ),
                state,
            )

    def test_unknown_values_from_new_deps(self):
        plan = plan_for(
            'resource "aws_vpc" "v" {\n'
            '  name       = "v"\n'
            '  cidr_block = "10.0.0.0/16"\n'
            "}\n"
            'resource "aws_subnet" "s" {\n'
            '  name       = "s"\n'
            "  vpc_id     = aws_vpc.v.id\n"
            '  cidr_block = "10.0.1.0/24"\n'
            "}\n"
        )
        subnet = plan.changes["aws_subnet.s"]
        assert subnet.action is Action.CREATE
        diff_names = {d.name for d in subnet.diffs}
        assert "vpc_id" in diff_names

    def test_dependent_updates_when_dep_replaced(self):
        # vpc replaced -> subnet's vpc_id becomes unknown -> update
        doc = vpc_state()
        doc.set(
            ResourceState(
                address=ResourceAddress.parse("aws_subnet.s"),
                resource_id="subnet-1",
                provider="aws",
                attrs={
                    "id": "subnet-1",
                    "name": "s",
                    "vpc_id": "vpc-1",
                    "cidr_block": "10.9.1.0/24",
                },
                region="us-east-1",
            )
        )
        plan = plan_for(
            'resource "aws_vpc" "main" {\n'
            '  name       = "main"\n'
            '  cidr_block = "10.9.0.0/16"\n'  # forces replacement
            "}\n"
            'resource "aws_subnet" "s" {\n'
            '  name       = "s"\n'
            "  vpc_id     = aws_vpc.main.id\n"
            '  cidr_block = "10.9.1.0/24"\n'
            "}\n",
            doc,
        )
        assert plan.changes["aws_vpc.main"].action is Action.REPLACE
        assert plan.changes["aws_subnet.s"].action in (
            Action.UPDATE,
            Action.REPLACE,
        )


class TestScopedPlanning:
    def test_limit_to_marks_rest_noop(self):
        source = (
            'resource "aws_s3_bucket" "a" { name = "a" }\n'
            'resource "aws_s3_bucket" "b" { name = "b" }\n'
        )
        graph = build_graph(Configuration.parse(source))
        plan = make_planner().plan(
            graph, StateDocument(), limit_to={"aws_s3_bucket.a"}
        )
        assert plan.changes["aws_s3_bucket.a"].action is Action.CREATE
        assert plan.changes["aws_s3_bucket.b"].action is Action.NOOP


class TestExecutionDag:
    def test_creates_follow_dependencies(self):
        plan = plan_for(
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_subnet" "s" {\n'
            '  name = "s"\n  vpc_id = aws_vpc.v.id\n  cidr_block = "10.0.1.0/24"\n'
            "}\n"
        )
        dag = plan.execution_dag()
        assert "aws_subnet.s" in dag.successors("aws_vpc.v")

    def test_noop_nodes_are_skipped_transitively(self):
        # v exists (noop); s is new; s must not wait on anything
        doc = vpc_state()
        plan = plan_for(
            VPC_SOURCE
            + 'resource "aws_subnet" "s" {\n'
            '  name = "s"\n  vpc_id = aws_vpc.main.id\n  cidr_block = "10.0.1.0/24"\n'
            "}\n",
            doc,
        )
        dag = plan.execution_dag()
        assert "aws_vpc.main" not in dag.nodes
        assert dag.in_degree("aws_subnet.s") == 0

    def test_deletes_ordered_dependents_first(self):
        doc = vpc_state()
        doc.set(
            ResourceState(
                address=ResourceAddress.parse("aws_subnet.s"),
                resource_id="subnet-1",
                provider="aws",
                attrs={"id": "subnet-1", "name": "s"},
                region="us-east-1",
                dependencies=["aws_vpc.main"],
            )
        )
        plan = plan_for("", doc)
        dag = plan.execution_dag()
        # subnet delete must precede vpc delete
        assert "aws_vpc.main" in dag.successors("aws_subnet.s")

    def test_summary_and_render(self):
        plan = plan_for(VPC_SOURCE)
        assert plan.summary()["create"] == 1
        text = plan.render()
        assert "+ aws_vpc.main" in text
        assert "1 to add" in text
