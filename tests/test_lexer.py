"""Lexer unit tests."""

import pytest

from repro.lang.diagnostics import CLCSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source) if t.type is not TokenType.EOF]


def values(source):
    return [t.value for t in tokenize(source) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_identifier(self):
        toks = tokenize("hello")
        assert toks[0].type is TokenType.IDENT
        assert toks[0].value == "hello"

    def test_integer(self):
        assert values("42") == [42]
        assert isinstance(values("42")[0], int)

    def test_float(self):
        assert values("3.25") == [3.25]

    def test_scientific_notation(self):
        assert values("1e3") == [1000.0]
        assert values("2.5e-2") == [0.025]

    def test_operators(self):
        assert kinds("== != <= >= && || =>") == [
            TokenType.EQ,
            TokenType.NEQ,
            TokenType.LTE,
            TokenType.GTE,
            TokenType.AND,
            TokenType.OR,
            TokenType.ARROW,
        ]

    def test_single_char_operators(self):
        assert kinds("+ - * / % ! ? :") == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.PERCENT,
            TokenType.BANG,
            TokenType.QUESTION,
            TokenType.COLON,
        ]

    def test_ellipsis(self):
        assert kinds("...") == [TokenType.ELLIPSIS]

    def test_unexpected_character(self):
        with pytest.raises(CLCSyntaxError):
            tokenize("@")


class TestStrings:
    def test_plain_string(self):
        assert values('"hello"') == ["hello"]

    def test_empty_string(self):
        assert values('""') == [""]

    def test_escapes(self):
        assert values(r'"a\nb\tc\"d\\e"') == ['a\nb\tc"d\\e']

    def test_invalid_escape(self):
        with pytest.raises(CLCSyntaxError):
            tokenize(r'"\q"')

    def test_unterminated_string(self):
        with pytest.raises(CLCSyntaxError):
            tokenize('"oops')

    def test_newline_in_string_rejected(self):
        with pytest.raises(CLCSyntaxError):
            tokenize('"line\nbreak"')

    def test_template_string(self):
        toks = tokenize('"vm-${var.env}-x"')
        assert toks[0].type is TokenType.TEMPLATE
        parts = toks[0].value
        assert parts[0] == ("lit", "vm-")
        assert parts[1][0] == "expr"
        assert parts[1][1] == "var.env"
        assert parts[2] == ("lit", "-x")

    def test_escaped_interpolation(self):
        assert values('"cost: $${amount}"') == ["cost: ${amount}"]

    def test_nested_braces_in_interpolation(self):
        toks = tokenize('"${ { a = 1 } }"')
        assert toks[0].type is TokenType.TEMPLATE
        assert toks[0].value[0][1].strip() == "{ a = 1 }"

    def test_string_inside_interpolation(self):
        toks = tokenize('"${lookup(m, "key")}"')
        assert toks[0].type is TokenType.TEMPLATE
        assert 'lookup(m, "key")' == toks[0].value[0][1]


class TestHeredocs:
    def test_basic_heredoc(self):
        source = "x = <<EOF\nline one\nline two\nEOF\n"
        toks = tokenize(source)
        heredoc = [t for t in toks if t.type is TokenType.STRING][0]
        assert heredoc.value == "line one\nline two\n"

    def test_indented_heredoc(self):
        source = "x = <<-EOF\n    a\n      b\n    EOF\n"
        toks = tokenize(source)
        heredoc = [t for t in toks if t.type is TokenType.STRING][0]
        assert heredoc.value == "a\n  b\n"

    def test_unterminated_heredoc(self):
        with pytest.raises(CLCSyntaxError):
            tokenize("x = <<EOF\nnever closed")


class TestCommentsAndWhitespace:
    def test_hash_comment(self):
        assert values("a # comment\nb") == ["a", "\n", "b"]

    def test_slash_comment(self):
        assert values("a // comment\nb") == ["a", "\n", "b"]

    def test_block_comment(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CLCSyntaxError):
            tokenize("/* forever")

    def test_newlines_collapse(self):
        assert kinds("a\n\n\nb") == [
            TokenType.IDENT,
            TokenType.NEWLINE,
            TokenType.IDENT,
        ]

    def test_newlines_suppressed_in_brackets(self):
        assert TokenType.NEWLINE not in kinds("[1,\n2,\n3]")
        assert TokenType.NEWLINE not in kinds("f(\n1,\n2\n)")

    def test_newlines_kept_in_braces(self):
        assert TokenType.NEWLINE in kinds("{\na = 1\n}")


class TestSpans:
    def test_line_and_column_tracking(self):
        toks = tokenize('a = "x"\nbb = 2')
        assert toks[0].span.start_line == 1
        bb = [t for t in toks if t.value == "bb"][0]
        assert bb.span.start_line == 2
        assert bb.span.start_col == 1

    def test_filename_propagates(self):
        toks = tokenize("a", filename="net.clc")
        assert toks[0].span.filename == "net.clc"
