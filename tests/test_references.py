"""Static reference extraction tests."""

from repro.lang.parser import parse_expression_source
from repro.lang.references import Reference, extract_references


def refs(source):
    return {str(r) for r in extract_references(parse_expression_source(source))}


class TestExtraction:
    def test_variable(self):
        assert refs("var.name") == {"var.name"}

    def test_local(self):
        assert refs("local.x") == {"local.x"}

    def test_resource(self):
        assert refs("aws_vpc.main.id") == {"aws_vpc.main"}

    def test_data(self):
        assert refs("data.aws_region.current.name") == {"data.aws_region.current"}

    def test_module(self):
        assert refs("module.net.vpc_id") == {"module.net"}

    def test_indexing_is_transparent(self):
        assert refs("aws_vm.web[0].id") == {"aws_vm.web"}

    def test_splat_is_transparent(self):
        assert refs("aws_vm.web[*].id") == {"aws_vm.web"}

    def test_index_expression_contributes(self):
        assert refs("aws_vm.web[var.i].id") == {"aws_vm.web", "var.i"}

    def test_nested_in_function_and_template(self):
        assert refs('join("-", [var.a, local.b])') == {"var.a", "local.b"}
        assert refs('"${var.x}-${aws_vpc.v.id}"') == {"var.x", "aws_vpc.v"}

    def test_builtin_roots_ignored(self):
        assert refs("count.index") == set()
        assert refs("each.key") == set()
        assert refs("path.module") == set()

    def test_for_loop_variables_not_references(self):
        assert refs("[for x in var.items : x.id]") == {"var.items"}

    def test_for_key_var_shadowing(self):
        assert refs("{ for k, v in var.m : k => v.name }") == {"var.m"}

    def test_conditional_collects_all_branches(self):
        assert refs("var.a ? aws_vpc.x.id : aws_vpc.y.id") == {
            "var.a",
            "aws_vpc.x",
            "aws_vpc.y",
        }

    def test_attr_recorded(self):
        found = extract_references(parse_expression_source("aws_vpc.main.id"))
        ref = next(iter(found))
        assert ref.attr == "id"

    def test_bare_type_name_not_a_reference(self):
        # a lone identifier with no attribute is not a resource ref
        assert refs("[for x in things : x]") == set()


class TestReferenceIdentity:
    def test_equality_and_ordering(self):
        a = Reference("var", "", "a")
        b = Reference("var", "", "b")
        assert a < b
        assert a == Reference("var", "", "a")

    def test_key_ignores_attr(self):
        a = Reference("resource", "aws_vpc", "x", "id")
        b = Reference("resource", "aws_vpc", "x", "arn")
        assert a.key == b.key
