"""Policy subsystem: language, controller, cost, autoscale, outliers."""

import pytest

from repro.core import CloudlessEngine
from repro.lang import Configuration
from repro.policy import (
    CostEstimator,
    CustomMetricScalePolicy,
    InfrastructureController,
    MetricStore,
    NativeAutoscalePolicy,
    Notify,
    PHASE_DRIFT,
    PHASE_METRICS,
    Policy,
    TemplateExtractor,
    UnsupportedPolicyError,
    allowed_regions_policy,
    budget_policy,
    drift_notification_policy,
    required_engine_policy,
    required_tag_policy,
)
from repro.workloads import vpn_site, web_tier


class TestCostEstimator:
    def test_resource_monthly(self):
        estimator = CostEstimator()
        small = estimator.resource_monthly("aws_virtual_machine", {"size": "small"})
        xlarge = estimator.resource_monthly("aws_virtual_machine", {"size": "xlarge"})
        assert xlarge == pytest.approx(small * 8)

    def test_storage_contributes(self):
        estimator = CostEstimator()
        base = estimator.resource_monthly("aws_database_instance", {})
        big = estimator.resource_monthly(
            "aws_database_instance", {"storage_gb": 100}
        )
        assert big > base

    def test_unknown_type_is_free(self):
        assert CostEstimator().resource_monthly("aws_iam_role", {}) == 0.0

    def test_estimate_plan_counts_new_estate(self, engine):
        plan = engine.plan(web_tier(web_vms=2, app_vms=1))
        cost = CostEstimator().estimate_plan(plan)
        assert cost > 0


class TestAdmission:
    def test_budget_denies_expensive_plan(self, engine):
        engine.controller.register(budget_policy(max_monthly_usd=1.0))
        result = engine.apply(web_tier())
        assert result.admission is not None
        assert not result.admission.allowed
        assert "budget" in result.admission.denials[0].policy
        # nothing deployed
        assert len(engine.state) == 0

    def test_budget_allows_cheap_plan(self, engine):
        engine.controller.register(budget_policy(max_monthly_usd=1e6))
        result = engine.apply(web_tier())
        assert result.ok

    def test_allowed_regions(self, engine):
        engine.controller.register(allowed_regions_policy(["us-east-1"]))
        source = (
            'resource "azure_resource_group" "rg" {\n'
            '  name = "rg"\n  location = "westeurope"\n}\n'
        )
        result = engine.apply(source)
        assert not result.admission.allowed
        assert "westeurope" in result.admission.denials[0].message

    def test_required_engine(self, engine):
        engine.controller.register(required_engine_policy("postgres"))
        bad = web_tier().replace('engine     = "postgres"', 'engine     = "mysql"')
        result = engine.apply(bad)
        assert not result.admission.allowed

    def test_tag_policy_warns_but_allows(self, engine):
        engine.controller.register(required_tag_policy("owner"))
        result = engine.apply(web_tier())
        assert result.ok
        assert result.admission.warnings

    def test_denial_messages_interpolate_observation(self, engine):
        engine.controller.register(budget_policy(max_monthly_usd=1.0))
        result = engine.apply(web_tier())
        message = result.admission.denials[0].message
        assert "USD" in message and "1.00" in message


class TestMetricStore:
    def test_latest_and_window(self):
        store = MetricStore()
        store.record("vm.a", "cpu", 0.0, 10.0)
        store.record("vm.a", "cpu", 10.0, 20.0)
        store.record("vm.a", "cpu", 20.0, 30.0)
        assert store.latest("vm.a", "cpu") == 30.0
        assert store.window_mean("vm.a", "cpu", window_s=15.0, now=20.0) == 25.0

    def test_missing_series(self):
        assert MetricStore().latest("x", "cpu") is None


class TestAutoscalePolicies:
    def test_native_rejects_custom_metric(self):
        """The paper's point: today's autoscaling can't see VPN load."""
        with pytest.raises(UnsupportedPolicyError):
            NativeAutoscalePolicy(
                name="vpn",
                target_type="aws_vpn_tunnel",
                metric="throughput_mbps",
                capacity_per_instance=500,
                count_variable="tunnel_count",
            )

    def test_native_accepts_cpu_on_asg(self):
        policy = NativeAutoscalePolicy(
            name="cpu",
            target_type="aws_autoscaling_group",
            metric="cpu",
            capacity_per_instance=100,
            count_variable="asg_count",
        )
        assert policy.phase == PHASE_METRICS

    def test_custom_policy_scales_out(self):
        engine = CloudlessEngine(seed=70)
        assert engine.apply(vpn_site(tunnels=2), variables={"tunnel_count": 2}).ok
        metrics = MetricStore()
        now = engine.clock.now
        for entry in engine.state.resources():
            if entry.address.type == "aws_vpn_tunnel":
                metrics.record(str(entry.address), "throughput_mbps", now, 480.0)
        policy = CustomMetricScalePolicy(
            name="vpn-scale",
            target_type="aws_vpn_tunnel",
            metric="throughput_mbps",
            capacity_per_instance=500,
            count_variable="tunnel_count",
            high=0.8,
            cooldown_s=0.0,
        )
        controller = InfrastructureController()
        controller.register(policy)
        actions = controller.evaluate_metrics(
            metrics, engine.state, {"tunnel_count": 2}, now
        )
        assert len(actions) == 1
        assert actions[0].kind == "set_variable"
        assert actions[0].value == 3

    def test_custom_policy_scales_in(self):
        engine = CloudlessEngine(seed=71)
        assert engine.apply(vpn_site(tunnels=3), variables={"tunnel_count": 3}).ok
        metrics = MetricStore()
        now = engine.clock.now
        for entry in engine.state.resources():
            if entry.address.type == "aws_vpn_tunnel":
                metrics.record(str(entry.address), "throughput_mbps", now, 50.0)
        policy = CustomMetricScalePolicy(
            name="vpn-scale",
            target_type="aws_vpn_tunnel",
            metric="throughput_mbps",
            capacity_per_instance=500,
            count_variable="tunnel_count",
            low=0.25,
            cooldown_s=0.0,
        )
        controller = InfrastructureController()
        controller.register(policy)
        actions = controller.evaluate_metrics(
            metrics, engine.state, {"tunnel_count": 3}, now
        )
        assert actions[0].value == 2

    def test_cooldown_suppresses_flapping(self):
        engine = CloudlessEngine(seed=72)
        assert engine.apply(vpn_site(tunnels=2), variables={"tunnel_count": 2}).ok
        metrics = MetricStore()
        now = engine.clock.now
        for entry in engine.state.resources():
            if entry.address.type == "aws_vpn_tunnel":
                metrics.record(str(entry.address), "throughput_mbps", now, 480.0)
        policy = CustomMetricScalePolicy(
            name="vpn-scale",
            target_type="aws_vpn_tunnel",
            metric="throughput_mbps",
            capacity_per_instance=500,
            count_variable="tunnel_count",
            cooldown_s=600.0,
        )
        controller = InfrastructureController()
        controller.register(policy)
        first = controller.evaluate_metrics(
            metrics, engine.state, {"tunnel_count": 2}, now
        )
        second = controller.evaluate_metrics(
            metrics, engine.state, {"tunnel_count": first[0].value}, now + 1.0
        )
        # the condition still fires but the value holds (cooldown)
        assert all(a.value == first[0].value for a in second)

    def test_scale_decision_recorded(self):
        policy = CustomMetricScalePolicy(
            name="p",
            target_type="aws_vpn_tunnel",
            metric="throughput_mbps",
            capacity_per_instance=500,
            count_variable="n",
            cooldown_s=0.0,
        )
        engine = CloudlessEngine(seed=73)
        assert engine.apply(vpn_site(tunnels=1), variables={"tunnel_count": 1}).ok
        metrics = MetricStore()
        for entry in engine.state.resources():
            if entry.address.type == "aws_vpn_tunnel":
                metrics.record(str(entry.address), "throughput_mbps", engine.clock.now, 490.0)
        controller = InfrastructureController()
        controller.register(policy)
        controller.evaluate_metrics(metrics, engine.state, {"n": 1}, engine.clock.now)
        assert policy.decisions
        assert policy.decisions[0].utilization > 0.9


class TestDriftPolicies:
    def test_drift_notification(self):
        controller = InfrastructureController()
        controller.register(drift_notification_policy())

        class Finding:
            resource_id = "i-123"

        actions = controller.evaluate_drift([Finding()], None, 0.0)
        assert actions[0].kind == "notify"
        assert "i-123" in actions[0].message

    def test_custom_phase_policy(self):
        fired = []
        policy = Policy(
            name="custom",
            phase=PHASE_DRIFT,
            observe=lambda ctx: len(ctx.findings),
            condition=lambda n: n > 2,
            actions=[Notify("lots of drift")],
        )
        controller = InfrastructureController()
        controller.register(policy)
        assert controller.evaluate_drift([1, 2], None, 0.0) == []
        assert len(controller.evaluate_drift([1, 2, 3], None, 0.0)) == 1


class TestOutlierDetection:
    def corpus(self):
        sources = [web_tier(name=f"w{i}") for i in range(4)]
        return [Configuration.parse(s) for s in sources]

    def test_conforming_config_is_clean(self):
        model = TemplateExtractor().fit(self.corpus())
        findings = model.score_config(Configuration.parse(web_tier(name="new")))
        assert findings == []

    def test_unusual_value_flagged(self):
        model = TemplateExtractor().fit(self.corpus())
        odd = web_tier(name="new").replace(
            'engine     = "postgres"', 'engine     = "mariadb"'
        )
        findings = model.score_config(Configuration.parse(odd))
        assert any(
            f.kind == "unusual-value" and f.attr == "engine" for f in findings
        )

    def test_missing_common_attr_flagged(self):
        model = TemplateExtractor().fit(self.corpus())
        # drop the tags attr every corpus VM carries
        odd = web_tier(name="new").replace('  tags    = { tier = "web" }\n', "")
        findings = model.score_config(Configuration.parse(odd))
        assert any(f.kind == "missing-attr" and f.attr == "tags" for f in findings)

    def test_unknown_type_not_scored(self):
        model = TemplateExtractor().fit(self.corpus())
        findings = model.score_config(
            Configuration.parse('resource "exotic_thing" "x" {\n  a = 1\n}\n')
        )
        assert findings == []
