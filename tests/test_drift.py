"""Drift detection and reconciliation (E5 machinery)."""

import pytest

from repro.core import CloudlessEngine
from repro.drift import (
    ADOPT,
    ENFORCE,
    FullScanDetector,
    LogWatchDetector,
    NOTIFY,
    Reconciler,
)
from repro.workloads import web_tier


def deployed(seed=50, **kwargs):
    engine = CloudlessEngine(seed=seed)
    assert engine.apply(web_tier(**kwargs)).ok
    return engine


def a_vm(engine):
    return next(
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    )


class TestFullScan:
    def test_clean_estate_no_findings(self):
        engine = deployed()
        run = FullScanDetector(engine.gateway).scan(engine.state)
        assert run.findings == []

    def test_detects_modification(self):
        engine = deployed()
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}
        )
        run = FullScanDetector(engine.gateway).scan(engine.state)
        kinds = {(f.kind, f.resource_id) for f in run.findings}
        assert ("modified", vm.resource_id) in kinds
        finding = next(f for f in run.findings if f.kind == "modified")
        assert finding.changed_attrs == ["size"]

    def test_detects_deletion_and_unmanaged(self):
        engine = deployed()
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_delete(vm.resource_id)
        rogue = engine.gateway.planes["aws"].external_create(
            "aws_s3_bucket", {"name": "rogue"}, "us-east-1"
        )
        run = FullScanDetector(engine.gateway).scan(engine.state)
        kinds = {f.kind for f in run.findings}
        assert kinds == {"deleted", "unmanaged"}

    def test_scan_cost_scales_with_estate(self):
        small = deployed(seed=51, web_vms=1, app_vms=1)
        big = deployed(seed=52, web_vms=8, app_vms=8)
        small_run = FullScanDetector(small.gateway).scan(small.state)
        big_run = FullScanDetector(big.gateway).scan(big.state)
        assert big_run.api_calls >= small_run.api_calls
        assert big_run.duration_s > 0


class TestLogWatch:
    def test_ignores_iac_activity(self):
        engine = deployed()
        detector = LogWatchDetector(engine.gateway)
        run = detector.poll(engine.state)
        assert run.findings == []  # all events so far were actor=iac

    def test_detects_external_update(self):
        engine = deployed()
        detector = LogWatchDetector(engine.gateway)
        detector.poll(engine.state)  # consume history
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="cron-job"
        )
        run = detector.poll(engine.state)
        assert len(run.findings) == 1
        finding = run.findings[0]
        assert finding.kind == "modified"
        assert finding.actor == "cron-job"
        assert finding.changed_attrs == ["size"]
        assert str(finding.address) == str(vm.address)

    def test_cursor_prevents_rereporting(self):
        engine = deployed()
        detector = LogWatchDetector(engine.gateway)
        detector.poll(engine.state)
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="x"
        )
        assert len(detector.poll(engine.state).findings) == 1
        assert detector.poll(engine.state).findings == []

    def test_poll_is_cheap(self):
        engine = deployed(web_vms=6, app_vms=6)
        detector = LogWatchDetector(engine.gateway)
        before = engine.gateway.total_api_calls()
        detector.poll(engine.state)
        # one log read per provider, regardless of estate size
        assert engine.gateway.total_api_calls() - before == 2

    def test_detects_external_create_as_unmanaged(self):
        engine = deployed()
        detector = LogWatchDetector(engine.gateway)
        detector.poll(engine.state)
        engine.gateway.planes["aws"].external_create(
            "aws_s3_bucket", {"name": "rogue"}, "us-east-1", actor="intern"
        )
        run = detector.poll(engine.state)
        assert [f.kind for f in run.findings] == ["unmanaged"]


class TestReconciler:
    def drifted_engine(self):
        engine = deployed(seed=53)
        detector = LogWatchDetector(engine.gateway)
        detector.poll(engine.state)
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="script"
        )
        findings = detector.poll(engine.state).findings
        return engine, vm, findings

    def test_enforce_restores_golden_state(self):
        engine, vm, findings = self.drifted_engine()
        golden_size = vm.attrs["size"]
        assert golden_size != "large"
        report = Reconciler(engine.gateway).reconcile(findings, engine.state)
        assert all(a.ok for a in report.actions)
        live = engine.gateway.find_record(vm.resource_id)
        assert live.attrs["size"] == golden_size

    def test_adopt_pulls_cloud_into_state(self):
        engine, vm, findings = self.drifted_engine()
        report = Reconciler(
            engine.gateway, policy={"modified": ADOPT}
        ).reconcile(findings, engine.state)
        assert all(a.ok for a in report.actions)
        assert engine.state.by_resource_id(vm.resource_id).attrs["size"] == "large"
        # cloud untouched
        assert engine.gateway.find_record(vm.resource_id).attrs["size"] == "large"

    def test_notify_touches_nothing(self):
        engine, vm, findings = self.drifted_engine()
        report = Reconciler(
            engine.gateway, policy={"modified": NOTIFY}
        ).reconcile(findings, engine.state)
        assert report.notifications
        assert report.api_calls == 0

    def test_enforce_recreates_deleted(self):
        engine = deployed(seed=54)
        detector = LogWatchDetector(engine.gateway)
        detector.poll(engine.state)
        bucket = next(
            e for e in engine.state.resources() if e.address.type == "aws_database_instance"
        )
        engine.gateway.planes["aws"].external_delete(bucket.resource_id, actor="x")
        findings = detector.poll(engine.state).findings
        report = Reconciler(engine.gateway).reconcile(findings, engine.state)
        assert all(a.ok for a in report.actions)
        new_entry = engine.state.get(bucket.address)
        assert new_entry.resource_id != bucket.resource_id
        assert engine.gateway.find_record(new_entry.resource_id) is not None


class TestDetectorEquivalence:
    def test_both_detect_the_same_modification(self):
        engine = deployed(seed=55)
        log_detector = LogWatchDetector(engine.gateway)
        log_detector.poll(engine.state)
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="x"
        )
        log_run = log_detector.poll(engine.state)
        scan_run = FullScanDetector(engine.gateway).scan(engine.state)
        log_keys = {f.key for f in log_run.findings}
        scan_keys = {f.key for f in scan_run.findings}
        assert log_keys == scan_keys

    def test_log_watch_is_cheaper(self):
        engine = deployed(seed=56, web_vms=30, app_vms=30)
        log_detector = LogWatchDetector(engine.gateway)
        log_detector.poll(engine.state)
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="x"
        )
        before = engine.gateway.total_api_calls()
        log_detector.poll(engine.state)
        log_cost = engine.gateway.total_api_calls() - before
        before = engine.gateway.total_api_calls()
        FullScanDetector(engine.gateway).scan(engine.state)
        scan_cost = engine.gateway.total_api_calls() - before
        assert log_cost < scan_cost / 2


class TestResilienceRegressions:
    """Crash consistency and fault tolerance of the drift path."""

    def test_interrupted_replacement_checkpoints_state(self):
        # regression: an immutable-drift replacement whose create half
        # faults used to leave state pointing at the already-deleted id
        from repro.cloud import FaultSpec

        engine = deployed(seed=57)
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"image": "win-2022"}
        )
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InsufficientCapacity",
                message="no capacity",
                match_type="aws_virtual_machine",
                match_operation="create",
                transient=False,
                max_strikes=1,
            )
        )
        old_id = vm.resource_id
        run = FullScanDetector(engine.gateway).scan(engine.state)
        report = engine.reconcile(run.findings)
        assert not report.ok
        assert report.remainder  # precise resumable work
        entry = engine.state.get(vm.address)
        assert entry is not None
        assert entry.resource_id == ""  # checkpointed, not the dead id
        assert engine.gateway.find_record(old_id) is None
        # resume: a fresh detect + reconcile pass finishes the repair
        run2 = FullScanDetector(engine.gateway).scan(engine.state)
        report2 = engine.reconcile(run2.findings)
        assert report2.ok
        entry = engine.state.get(vm.address)
        assert entry.resource_id
        assert engine.gateway.find_record(entry.resource_id) is not None

    def test_transient_fault_during_replacement_is_retried(self):
        from repro.cloud import FaultSpec

        engine = deployed(seed=59)
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"image": "win-2022"}
        )
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalServerError",
                message="retry me",
                match_type="aws_virtual_machine",
                match_operation="create",
                transient=True,
                max_strikes=1,
            )
        )
        run = FullScanDetector(engine.gateway).scan(engine.state)
        report = engine.reconcile(run.findings)
        assert report.ok  # the retry absorbed the fault
        assert engine.resilient.stats.retries >= 1
        entry = engine.state.get(vm.address)
        assert engine.gateway.find_record(entry.resource_id) is not None

    def test_fullscan_survives_mid_pagination_fault(self):
        from repro.cloud import FaultSpec

        clean_engine = deployed(seed=58, web_vms=8, app_vms=8)
        clean = FullScanDetector(clean_engine.gateway).scan(
            clean_engine.state
        )
        assert clean.findings == []
        assert clean.api_calls >= 2  # estate spans multiple pages

        engine = deployed(seed=58, web_vms=8, app_vms=8)
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="Throttling",
                message="rate exceeded",
                match_operation="list",
                transient=True,
                max_strikes=1,
            )
        )
        run = FullScanDetector(engine.gateway).scan(engine.state)
        # the faulted page was retried with the same token: the scan
        # still covers the whole estate and costs exactly one extra call
        assert run.findings == []
        assert run.api_calls == clean.api_calls + 1
