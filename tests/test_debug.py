"""IaC debugger: error correlation and auto-repair (E10 machinery)."""

import pytest

from repro.core import CloudlessEngine
from repro.debug import IaCDebugger, apply_diagnoses
from repro.lang import Configuration

AZURE_MISWIRED = """
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "eastus"
}
resource "azure_virtual_network" "v" {
  name              = "v"
  resource_group_id = azure_resource_group.rg.id
  location          = "eastus"
  address_spaces    = ["10.0.0.0/16"]
}
resource "azure_subnet" "sn" {
  name           = "sn"
  vnet_id        = azure_virtual_network.v.id
  address_prefix = "10.0.1.0/24"
}
resource "azure_network_interface" "n1" {
  name      = "n1"
  subnet_id = azure_subnet.sn.id
  location  = "eastus"
}
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "westus2"
  nic_ids  = [azure_network_interface.n1.id]
}
"""


def failing_apply(source, seed=60):
    """Apply with compile-time validation OFF so the cloud error fires."""
    engine = CloudlessEngine(seed=seed)
    result = engine.apply(source, validate_first=False, admit=False)
    assert result.apply is not None and not result.apply.ok
    return engine, result


class TestPaperExample:
    """3.5's motivating case: opaque NIC-not-found -> precise root cause."""

    def test_diagnosis_finds_real_root_cause(self):
        engine, result = failing_apply(AZURE_MISWIRED)
        diagnosis = result.diagnoses[0]
        assert diagnosis.error_code == "NetworkInterfaceNotFound"
        assert "was not found" in diagnosis.raw_message
        assert "different region" in diagnosis.root_cause
        assert "eastus" in diagnosis.root_cause
        assert "westus2" in diagnosis.root_cause

    def test_diagnosis_points_at_source_line(self):
        engine, result = failing_apply(AZURE_MISWIRED)
        diagnosis = result.diagnoses[0]
        assert diagnosis.span is not None
        assert diagnosis.culprit_attr == "location"
        # the span lands exactly on the VM's location assignment
        line = AZURE_MISWIRED.splitlines()[diagnosis.span.start_line - 1]
        assert 'location = "westus2"' in line

    def test_fix_suggestion_is_actionable(self):
        engine, result = failing_apply(AZURE_MISWIRED)
        diagnosis = result.diagnoses[0]
        assert diagnosis.confidence > 0.9
        fix = diagnosis.fixes[0]
        assert fix.attr == "location"
        assert fix.new_value == "eastus"

    def test_auto_repair_then_apply_succeeds(self):
        engine, result = failing_apply(AZURE_MISWIRED)
        config = Configuration.parse(AZURE_MISWIRED)
        outcomes = apply_diagnoses(config, result.diagnoses)
        assert any(o.applied for o in outcomes)
        retry = engine.apply(config, validate_first=False, admit=False)
        assert retry.ok


class TestOtherErrorClasses:
    def test_password_rule_diagnosis(self):
        source = AZURE_MISWIRED.replace('location = "westus2"', 'location = "eastus"')
        source = source.replace(
            "nic_ids  = [azure_network_interface.n1.id]",
            'nic_ids  = [azure_network_interface.n1.id]\n'
            '  admin_password = "hunter2!"',
        )
        engine, result = failing_apply(source)
        diagnosis = result.diagnoses[0]
        assert "disable_password_auth" in diagnosis.root_cause
        assert diagnosis.fixes[0].new_value is False

    def test_name_conflict_diagnosis(self):
        source = (
            'resource "aws_s3_bucket" "a" { name = "same" }\n'
            'resource "aws_s3_bucket" "b" { name = "same" }\n'
        )
        engine, result = failing_apply(source)
        diagnosis = result.diagnoses[0]
        assert diagnosis.error_code == "Conflict"
        assert diagnosis.fixes[0].attr == "name"

    def test_subnet_range_diagnosis(self):
        source = (
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_subnet" "s" {\n'
            '  name = "s"\n'
            "  vpc_id = aws_vpc.v.id\n"
            '  cidr_block = "172.16.0.0/24"\n'
            "}\n"
        )
        engine, result = failing_apply(source)
        diagnosis = result.diagnoses[0]
        assert diagnosis.error_code == "InvalidSubnet.Range"
        assert "10.0.0.0/16" in diagnosis.root_cause
        assert diagnosis.fixes and diagnosis.fixes[0].new_value.startswith("10.0.")

    def test_quota_diagnosis(self):
        engine = CloudlessEngine(seed=61)
        engine.gateway.planes["aws"].set_quota("aws_s3_bucket", "us-east-1", 0)
        result = engine.apply(
            'resource "aws_s3_bucket" "b" { name = "b" }\n',
            validate_first=False,
            admit=False,
        )
        diagnosis = result.diagnoses[0]
        assert diagnosis.error_code == "QuotaExceeded"
        assert "quota" in diagnosis.root_cause

    def test_cascaded_failure_diagnosis(self):
        # NIC fails (bad subnet ref) -> VM skipped; VM diagnosis explains
        from repro.cloud import FaultSpec

        engine = CloudlessEngine(seed=62)
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InsufficientCapacity",
                message="capacity",
                match_type="aws_network_interface",
                transient=False,
                max_strikes=9,
            )
        )
        from repro.workloads import web_tier

        result = engine.apply(
            web_tier(web_vms=1, app_vms=0, with_lb=False, with_db=False),
            validate_first=False,
            admit=False,
        )
        assert not result.ok
        # the NIC failed outright; the VM was skipped, not failed
        assert any("aws_network_interface" in d.change_id for d in result.diagnoses)

    def test_unrecognized_error_gets_fallback(self):
        from repro.cloud import FaultSpec

        engine = CloudlessEngine(seed=63)
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="MysteryFailure",
                message="something odd happened",
                match_type="aws_s3_bucket",
                transient=False,
            )
        )
        result = engine.apply(
            'resource "aws_s3_bucket" "b" { name = "b" }\n',
            validate_first=False,
            admit=False,
        )
        diagnosis = result.diagnoses[0]
        assert diagnosis.confidence <= 0.5
        assert diagnosis.span is not None  # still localized to the block

    def test_render_is_readable(self):
        engine, result = failing_apply(AZURE_MISWIRED)
        text = result.diagnoses[0].render()
        assert "cloud said" in text
        assert "root cause" in text
        assert "suggestion" in text
