"""Unit tests for individual validation rules and mining primitives."""

import pytest

from repro.lang import Configuration, DiagnosticSink
from repro.validate import (
    DeploymentExample,
    RuleEngine,
    SpecificationMiner,
    ValidationContext,
)
from repro.validate.constraints.aws import AwsVpnTunnelGatewayRule
from repro.validate.mining import MinedEqualitySpec, MinedEqualityRule


class TestAwsVpnTunnelRule:
    def test_wrong_gateway_type_flagged(self):
        source = (
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_vpn_tunnel" "t" {\n'
            '  name       = "t"\n'
            "  gateway_id = aws_vpc.v.id\n"
            '  peer_ip    = "192.0.2.1"\n'
            "}\n"
        )
        ctx = ValidationContext.build(Configuration.parse(source))
        sink = DiagnosticSink()
        AwsVpnTunnelGatewayRule().check(ctx, sink)
        assert sink.has_errors()
        assert "aws_vpn_gateway" in sink.errors[0].message

    def test_correct_gateway_passes(self):
        source = (
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_vpn_gateway" "g" {\n'
            '  name   = "g"\n'
            "  vpc_id = aws_vpc.v.id\n"
            "}\n"
            'resource "aws_vpn_tunnel" "t" {\n'
            '  name       = "t"\n'
            "  gateway_id = aws_vpn_gateway.g.id\n"
            '  peer_ip    = "192.0.2.1"\n'
            "}\n"
        )
        ctx = ValidationContext.build(Configuration.parse(source))
        sink = DiagnosticSink()
        AwsVpnTunnelGatewayRule().check(ctx, sink)
        assert not sink.has_errors()


class TestValidationContextHelpers:
    SOURCE = (
        'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
        'resource "aws_subnet" "s" {\n'
        "  count = 2\n"
        '  name = "s-${count.index}"\n'
        "  vpc_id = aws_vpc.v.id\n"
        "  cidr_block = cidrsubnet(aws_vpc.v.cidr_block, 8, count.index)\n"
        "}\n"
    )

    def test_instances_expand_count(self):
        ctx = ValidationContext.build(Configuration.parse(self.SOURCE))
        assert len(ctx.instances_of_type("aws_subnet")) == 2

    def test_known_attr_resolves_statics_only(self):
        ctx = ValidationContext.build(Configuration.parse(self.SOURCE))
        subnet = ctx.instances_of_type("aws_subnet")[0]
        assert ctx.known_attr(subnet, "name") == "s-0"
        assert ctx.known_attr(subnet, "vpc_id") is None  # unknown pre-deploy

    def test_referenced_instances_follow_expressions(self):
        ctx = ValidationContext.build(Configuration.parse(self.SOURCE))
        subnet = ctx.instances_of_type("aws_subnet")[0]
        targets = ctx.referenced_instances(subnet, "vpc_id")
        assert [t.id for t in targets] == ["aws_vpc.v"]

    def test_attr_or_default_reads_schema(self):
        source = 'resource "aws_s3_bucket" "b" { name = "x" }\n'
        ctx = ValidationContext.build(Configuration.parse(source))
        bucket = ctx.instances_of_type("aws_s3_bucket")[0]
        assert ctx.attr_or_default(bucket, "versioning") is False


class TestMiningPrimitives:
    def test_observations_capture_refs(self):
        source = (
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_subnet" "s" {\n'
            '  name = "s"\n'
            "  vpc_id = aws_vpc.v.id\n"
            '  cidr_block = "10.0.1.0/24"\n'
            "}\n"
        )
        example = DeploymentExample.from_config(Configuration.parse(source))
        subnet_obs = next(o for o in example.resources if o.rtype == "aws_subnet")
        assert "vpc_id" in subnet_obs.refs
        target_type, target_attrs = subnet_obs.refs["vpc_id"][0]
        assert target_type == "aws_vpc"
        assert target_attrs["cidr_block"] == "10.0.0.0/16"

    def test_equality_rule_checks_both_directions_of_presence(self):
        spec = MinedEqualitySpec(
            rtype="azure_virtual_machine",
            ref_attr="nic_ids",
            target_type="azure_network_interface",
            shared_attr="location",
            support=5,
        )
        rule = MinedEqualityRule(spec)
        good = Configuration.parse(
            'resource "azure_resource_group" "rg" {\n'
            '  name = "rg"\n  location = "eastus"\n}\n'
            'resource "azure_virtual_network" "v" {\n'
            '  name = "v"\n'
            "  resource_group_id = azure_resource_group.rg.id\n"
            '  location = "eastus"\n'
            '  address_spaces = ["10.0.0.0/16"]\n'
            "}\n"
            'resource "azure_subnet" "sn" {\n'
            '  name = "sn"\n'
            "  vnet_id = azure_virtual_network.v.id\n"
            '  address_prefix = "10.0.1.0/24"\n'
            "}\n"
            'resource "azure_network_interface" "n" {\n'
            '  name = "n"\n'
            "  subnet_id = azure_subnet.sn.id\n"
            '  location = "eastus"\n'
            "}\n"
            'resource "azure_virtual_machine" "vm" {\n'
            '  name = "vm"\n'
            '  location = "eastus"\n'
            "  nic_ids = [azure_network_interface.n.id]\n"
            "}\n"
        )
        sink = DiagnosticSink()
        rule.check(ValidationContext.build(good), sink)
        assert not sink.has_errors()

    def test_miner_requires_scalar_consistency(self):
        # two examples with *different* consequent values -> no rule
        sources = []
        for disable in ("true", "false"):
            sources.append(
                'resource "aws_s3_bucket" "b" {\n'
                '  name       = "x"\n'
                f"  versioning = {disable}\n"
                "}\n"
            )
        examples = [
            DeploymentExample.from_config(Configuration.parse(s)) for s in sources
        ]
        rules = SpecificationMiner(min_support=2).mine(examples)
        assert not any("versioning" in r.info.rule_id for r in rules)
