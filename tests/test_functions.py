"""Built-in function library tests."""

import pytest

from repro.lang.diagnostics import CLCEvalError
from repro.lang.functions import call_function
from repro.lang.values import UNKNOWN, Unknown


def call(name, *args):
    return call_function(name, list(args))


class TestStringFunctions:
    def test_case(self):
        assert call("upper", "abc") == "ABC"
        assert call("lower", "ABC") == "abc"
        assert call("title", "hello world") == "Hello World"

    def test_trim_family(self):
        assert call("trimspace", "  x  ") == "x"
        assert call("trimprefix", "app-web", "app-") == "web"
        assert call("trimsuffix", "web.sim", ".sim") == "web"
        assert call("trim", "xxaxx", "x") == "a"

    def test_join_split(self):
        assert call("join", "-", ["a", "b"]) == "a-b"
        assert call("split", ",", "a,b,c") == ["a", "b", "c"]
        assert call("split", ",", "") == []

    def test_replace(self):
        assert call("replace", "a-b-c", "-", "_") == "a_b_c"

    def test_replace_regex(self):
        assert call("replace", "web12", "/[0-9]+/", "N") == "webN"

    def test_substr(self):
        assert call("substr", "hello", 1, 3) == "ell"
        assert call("substr", "hello", 2, -1) == "llo"

    def test_format(self):
        assert call("format", "%s-%d", "web", 3) == "web-3"
        assert call("format", "%q", "x") == '"x"'
        assert call("format", "100%%") == "100%"

    def test_format_errors(self):
        with pytest.raises(CLCEvalError):
            call("format", "%s %s", "only-one")

    def test_formatlist(self):
        assert call("formatlist", "vm-%s", ["a", "b"]) == ["vm-a", "vm-b"]

    def test_predicates(self):
        assert call("startswith", "abc", "ab") is True
        assert call("endswith", "abc", "bc") is True
        assert call("strcontains", "abc", "b") is True

    def test_regex(self):
        assert call("regex", r"\d+", "vm-42") == "42"
        assert call("regexall", r"\d+", "a1 b22") == ["1", "22"]
        with pytest.raises(CLCEvalError):
            call("regex", r"\d+", "none")


class TestNumericFunctions:
    def test_basics(self):
        assert call("abs", -4) == 4
        assert call("ceil", 1.2) == 2
        assert call("floor", 1.8) == 1
        assert call("min", 3, 1, 2) == 1
        assert call("max", 3, 1, 2) == 3
        assert call("signum", -9) == -1

    def test_pow(self):
        assert call("pow", 2, 10) == 1024.0

    def test_parseint(self):
        assert call("parseint", "ff", 16) == 255
        with pytest.raises(CLCEvalError):
            call("parseint", "zz", 10)


class TestCollectionFunctions:
    def test_length(self):
        assert call("length", [1, 2]) == 2
        assert call("length", "abc") == 3
        assert call("length", {"a": 1}) == 1

    def test_element_wraps(self):
        assert call("element", ["a", "b"], 3) == "b"

    def test_concat_flatten_distinct(self):
        assert call("concat", [1], [2, 3]) == [1, 2, 3]
        assert call("flatten", [[1], [2, [3]]]) == [1, 2, 3]
        assert call("distinct", [1, 2, 1]) == [1, 2]

    def test_keys_values_sorted(self):
        assert call("keys", {"b": 2, "a": 1}) == ["a", "b"]
        assert call("values", {"b": 2, "a": 1}) == [1, 2]

    def test_lookup(self):
        assert call("lookup", {"a": 1}, "a") == 1
        assert call("lookup", {}, "a", "fallback") == "fallback"
        with pytest.raises(CLCEvalError):
            call("lookup", {}, "a")

    def test_merge(self):
        assert call("merge", {"a": 1}, {"a": 2, "b": 3}) == {"a": 2, "b": 3}

    def test_contains_and_index(self):
        assert call("contains", [1, 2], 2) is True
        assert call("index", ["a", "b"], "b") == 1
        with pytest.raises(CLCEvalError):
            call("index", [], "x")

    def test_slice_and_range(self):
        assert call("slice", [1, 2, 3, 4], 1, 3) == [2, 3]
        assert call("range", 3) == [0, 1, 2]
        assert call("range", 1, 7, 2) == [1, 3, 5]

    def test_zipmap(self):
        assert call("zipmap", ["a"], [1]) == {"a": 1}
        with pytest.raises(CLCEvalError):
            call("zipmap", ["a"], [1, 2])

    def test_coalesce(self):
        assert call("coalesce", None, "", "x") == "x"
        with pytest.raises(CLCEvalError):
            call("coalesce", None, "")

    def test_compact(self):
        assert call("compact", ["a", "", None, "b"]) == ["a", "b"]

    def test_set_operations(self):
        assert call("setunion", [1, 2], [2, 3]) == [1, 2, 3]
        assert call("setintersection", [1, 2, 3], [2, 3, 4]) == [2, 3]
        assert call("setsubtract", [1, 2, 3], [2]) == [1, 3]

    def test_chunklist(self):
        assert call("chunklist", [1, 2, 3], 2) == [[1, 2], [3]]

    def test_one(self):
        assert call("one", ["x"]) == "x"
        assert call("one", []) is None
        with pytest.raises(CLCEvalError):
            call("one", [1, 2])

    def test_sort_reverse(self):
        assert call("sort", ["b", "a"]) == ["a", "b"]
        assert call("reverse", [1, 2]) == [2, 1]


class TestConversionFunctions:
    def test_tostring(self):
        assert call("tostring", 5) == "5"
        assert call("tostring", True) == "true"

    def test_tonumber(self):
        assert call("tonumber", "42") == 42
        assert call("tonumber", "4.5") == 4.5
        with pytest.raises(CLCEvalError):
            call("tonumber", "abc")

    def test_tobool(self):
        assert call("tobool", "true") is True
        with pytest.raises(CLCEvalError):
            call("tobool", "yes")

    def test_toset_dedups(self):
        assert call("toset", [1, 1, 2]) == [1, 2]


class TestEncodingFunctions:
    def test_json_round_trip(self):
        data = {"a": [1, 2], "b": "x"}
        assert call("jsondecode", call("jsonencode", data)) == data

    def test_jsondecode_error(self):
        with pytest.raises(CLCEvalError):
            call("jsondecode", "{nope")

    def test_base64_round_trip(self):
        assert call("base64decode", call("base64encode", "hello")) == "hello"

    def test_hashes_are_stable(self):
        assert call("sha256", "x") == call("sha256", "x")
        assert len(call("md5", "x")) == 32


class TestCidrFunctions:
    def test_cidrsubnet(self):
        assert call("cidrsubnet", "10.0.0.0/16", 8, 2) == "10.0.2.0/24"

    def test_cidrsubnet_out_of_range(self):
        with pytest.raises(CLCEvalError):
            call("cidrsubnet", "10.0.0.0/16", 4, 99)

    def test_cidrhost(self):
        assert call("cidrhost", "10.0.1.0/24", 5) == "10.0.1.5"

    def test_cidrnetmask(self):
        assert call("cidrnetmask", "10.0.0.0/16") == "255.255.0.0"

    def test_cidrsubnets(self):
        result = call("cidrsubnets", "10.0.0.0/16", 8, 8, 4)
        assert result[0] == "10.0.0.0/24"
        assert result[1] == "10.0.1.0/24"
        assert result[2] == "10.0.16.0/20"

    def test_invalid_cidr(self):
        with pytest.raises(CLCEvalError):
            call("cidrsubnet", "not-a-cidr", 8, 0)


class TestDispatch:
    def test_unknown_function(self):
        with pytest.raises(CLCEvalError):
            call("frobnicate", 1)

    def test_unknown_argument_propagates(self):
        assert isinstance(call("upper", UNKNOWN), Unknown)
