"""Shared fixtures for the test suite."""

import pytest

from repro.cloud import CloudGateway, SimClock
from repro.core import CloudlessEngine
from repro.types import SchemaRegistry


@pytest.fixture
def gateway():
    """A fresh simulated multi-cloud gateway."""
    return CloudGateway.simulated(seed=1234)


@pytest.fixture
def engine():
    """A fresh cloudless engine on its own simulated clouds."""
    return CloudlessEngine(seed=1234)


@pytest.fixture(scope="session")
def registry():
    """The default schema registry (read-only; session-scoped)."""
    return SchemaRegistry.default()


FIGURE2_SOURCE = '''
data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_network_interface" "n1" {
  name      = "example-nic"
  subnet_id = aws_subnet.s1.id
}

resource "aws_subnet" "s1" {
  name       = "example-subnet"
  vpc_id     = aws_vpc.v1.id
  cidr_block = "10.0.1.0/24"
}

resource "aws_vpc" "v1" {
  name       = "example-vpc"
  cidr_block = "10.0.0.0/16"
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}
'''


@pytest.fixture
def figure2_source():
    """The paper's Figure 2 program, completed with the networking the
    simulated provider requires."""
    return FIGURE2_SOURCE
