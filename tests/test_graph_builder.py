"""Graph builder: expansion, edges, modules, error cases."""

import pytest

from repro.graph.builder import GraphBuildError, build_graph
from repro.lang import Configuration, DictModuleLoader


def graph_of(source, variables=None, loader=None):
    return build_graph(
        Configuration.parse(source), variables=variables, loader=loader
    )


class TestExpansion:
    def test_single_instances(self):
        g = graph_of(
            'resource "aws_vpc" "a" { name = "a" }\n'
            'resource "aws_vpc" "b" { name = "b" }\n'
        )
        assert sorted(g.nodes) == ["aws_vpc.a", "aws_vpc.b"]

    def test_count_expansion(self):
        g = graph_of('resource "aws_vm" "web" {\n  count = 3\n  name = "w"\n}\n')
        assert sorted(g.nodes) == [
            "aws_vm.web[0]",
            "aws_vm.web[1]",
            "aws_vm.web[2]",
        ]

    def test_count_zero(self):
        g = graph_of('resource "aws_vm" "web" {\n  count = 0\n  name = "w"\n}\n')
        assert len(g) == 0

    def test_count_from_variable(self):
        g = graph_of(
            'variable "n" { default = 2 }\n'
            'resource "aws_vm" "w" {\n  count = var.n\n  name = "w"\n}\n'
        )
        assert len(g) == 2

    def test_for_each_map(self):
        g = graph_of(
            'resource "aws_vm" "w" {\n'
            '  for_each = { a = 1, b = 2 }\n'
            '  name = each.key\n'
            "}\n"
        )
        assert sorted(g.nodes) == ['aws_vm.w["a"]', 'aws_vm.w["b"]']

    def test_for_each_set(self):
        g = graph_of(
            'resource "aws_vm" "w" {\n'
            '  for_each = ["x", "y"]\n'
            "  name = each.value\n"
            "}\n"
        )
        assert len(g) == 2

    def test_for_each_duplicate_key(self):
        with pytest.raises(GraphBuildError):
            graph_of(
                'resource "aws_vm" "w" {\n'
                '  for_each = ["x", "x"]\n'
                "  name = each.value\n"
                "}\n"
            )

    def test_negative_count(self):
        with pytest.raises(GraphBuildError):
            graph_of('resource "t" "n" {\n  count = -1\n}\n')

    def test_count_depending_on_resource_rejected(self):
        with pytest.raises(GraphBuildError):
            graph_of(
                'resource "aws_vpc" "v" { name = "v" }\n'
                'resource "aws_vm" "w" {\n'
                "  count = length(aws_vpc.v.id)\n"
                "}\n"
            )

    def test_data_nodes(self):
        g = graph_of('data "aws_region" "r" {}\n')
        assert g.data_ids() == ["data.aws_region.r"]


class TestEdges:
    def test_direct_reference(self):
        g = graph_of(
            'resource "aws_vpc" "v" { name = "v" }\n'
            'resource "aws_subnet" "s" {\n'
            '  name   = "s"\n'
            "  vpc_id = aws_vpc.v.id\n"
            "}\n"
        )
        assert g.dag.successors("aws_vpc.v") == {"aws_subnet.s"}

    def test_reference_through_local(self):
        g = graph_of(
            'resource "aws_vpc" "v" { name = "v" }\n'
            "locals { vid = aws_vpc.v.id }\n"
            'resource "aws_subnet" "s" {\n  vpc_id = local.vid\n}\n'
        )
        assert "aws_subnet.s" in g.dag.successors("aws_vpc.v")

    def test_depends_on_edge(self):
        g = graph_of(
            'resource "aws_vpc" "v" { name = "v" }\n'
            'resource "aws_s3_bucket" "b" {\n'
            '  name       = "b"\n'
            "  depends_on = [aws_vpc.v]\n"
            "}\n"
        )
        assert "aws_s3_bucket.b" in g.dag.successors("aws_vpc.v")

    def test_count_instances_share_decl_deps(self):
        g = graph_of(
            'resource "aws_vpc" "v" { name = "v" }\n'
            'resource "aws_subnet" "s" {\n'
            "  count  = 2\n"
            "  vpc_id = aws_vpc.v.id\n"
            "}\n"
        )
        assert g.dag.successors("aws_vpc.v") == {
            "aws_subnet.s[0]",
            "aws_subnet.s[1]",
        }

    def test_data_to_resource_edge(self):
        g = graph_of(
            'data "aws_region" "r" {}\n'
            'resource "aws_vpc" "v" {\n'
            '  name = data.aws_region.r.name\n'
            "}\n"
        )
        assert "aws_vpc.v" in g.dag.successors("data.aws_region.r")

    def test_cycle_detected(self):
        with pytest.raises(GraphBuildError):
            graph_of(
                'resource "t" "a" {\n  x = t.b.id\n}\n'
                'resource "t" "b" {\n  x = t.a.id\n}\n'
            )

    def test_undeclared_reference_diagnosed(self):
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(
            Configuration.parse('resource "t" "a" {\n  x = t.ghost.id\n}\n')
        )
        builder.build()
        assert builder.diagnostics.has_errors()


class TestModules:
    def loader(self):
        return DictModuleLoader(
            {
                "./stack": (
                    'variable "vpc_id" { type = string }\n'
                    'resource "aws_subnet" "inner" {\n'
                    '  name   = "inner"\n'
                    "  vpc_id = var.vpc_id\n"
                    "}\n"
                    'output "subnet_id" { value = aws_subnet.inner.id }\n'
                )
            }
        )

    def test_module_resources_get_prefixed_addresses(self):
        g = graph_of(
            'resource "aws_vpc" "v" { name = "v" }\n'
            'module "m" {\n  source = "./stack"\n  vpc_id = aws_vpc.v.id\n}\n',
            loader=self.loader(),
        )
        assert "module.m.aws_subnet.inner" in g.nodes

    def test_cross_module_edges_via_inputs(self):
        g = graph_of(
            'resource "aws_vpc" "v" { name = "v" }\n'
            'module "m" {\n  source = "./stack"\n  vpc_id = aws_vpc.v.id\n}\n',
            loader=self.loader(),
        )
        assert "module.m.aws_subnet.inner" in g.dag.successors("aws_vpc.v")

    def test_cross_module_edges_via_outputs(self):
        g = graph_of(
            'resource "aws_vpc" "v" { name = "v" }\n'
            'module "m" {\n  source = "./stack"\n  vpc_id = aws_vpc.v.id\n}\n'
            'resource "aws_network_interface" "n" {\n'
            "  subnet_id = module.m.subnet_id\n"
            "}\n",
            loader=self.loader(),
        )
        assert "aws_network_interface.n" in g.dag.successors(
            "module.m.aws_subnet.inner"
        )

    def test_config_errors_block_build(self):
        cfg = Configuration.parse("gizmo {}\n")
        with pytest.raises(GraphBuildError):
            build_graph(cfg)
