"""Golden equivalence: COW state layer vs frozen deep-copy reference.

Drives *identical* seeded mutation sequences through the live
copy-on-write document/history (:mod:`repro.state`) and the frozen
deep-copy implementation (:mod:`repro.state.reference`), asserting at
every step that

* ``to_json()`` output is byte-identical,
* ``SnapshotHistory.diff`` results are equal for every version pair,
* ``checkout()`` reconstructions are byte-identical,
* document copies taken mid-sequence stay frozen while the original
  keeps mutating (snapshot isolation).

If the COW rewrite ever diverges observably from full deep copies,
these tests name the first step where it happens.
"""

import json
import random

import pytest

from repro.addressing import ResourceAddress
from repro.state import SnapshotHistory, StateDocument
from repro.state.document import ResourceState
from repro.state.reference import (
    ReferenceResourceState,
    ReferenceSnapshotHistory,
    ReferenceStateDocument,
)

TYPES = ["aws_virtual_machine", "aws_subnet", "azure_disk", "gcp_bucket"]


def _attrs(rng: random.Random) -> dict:
    return {
        "name": f"res-{rng.randrange(1000)}",
        "size": rng.choice(["small", "medium", "large"]),
        "tags": {"team": rng.choice(["a", "b"]), "n": rng.randrange(5)},
        "ports": [rng.randrange(1024) for _ in range(rng.randrange(3))],
    }


def _address(rng: random.Random) -> str:
    rtype = rng.choice(TYPES)
    name = f"r{rng.randrange(30)}"
    if rng.random() < 0.3:
        return f"{rtype}.{name}[{rng.randrange(3)}]"
    return f"{rtype}.{name}"


class _TwinDriver:
    """Applies one mutation step to both implementations in lockstep."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.live = StateDocument()
        self.ref = ReferenceStateDocument()
        self.live_history = SnapshotHistory(keyframe_interval=4)
        self.ref_history = ReferenceSnapshotHistory()
        self.next_id = 0

    def step(self) -> str:
        rng = self.rng
        roll = rng.random()
        addr_text = _address(rng)
        addr = ResourceAddress.parse(addr_text)
        if roll < 0.45 or len(self.live) == 0:
            # set (create or overwrite)
            attrs = _attrs(rng)
            existing = self.live.get(addr)
            if existing is not None and rng.random() < 0.5:
                rid = existing.resource_id  # in-place update, same identity
            else:
                self.next_id += 1
                rid = f"cloud-{self.next_id}"
            deps = sorted(
                str(e.address)
                for e in self.live.resources()[:2]
                if str(e.address) != addr_text
            )
            kwargs = dict(
                address=addr,
                resource_id=rid,
                provider="aws",
                attrs=attrs,
                region="us-east-1",
                created_at=1.0,
                updated_at=float(rng.randrange(100)),
                dependencies=deps,
            )
            self.live.set(ResourceState(**dict(kwargs, attrs=json.loads(json.dumps(attrs)))))
            self.ref.set(ReferenceResourceState(**dict(kwargs, attrs=json.loads(json.dumps(attrs)))))
            return f"set {addr_text}"
        if roll < 0.6:
            # remove a random existing entry (or a miss)
            if rng.random() < 0.8 and len(self.live):
                victim = rng.choice([str(a) for a in self.live.addresses()])
                addr = ResourceAddress.parse(victim)
            self.live.remove(addr)
            self.ref.remove(addr)
            return f"remove {addr}"
        if roll < 0.7:
            # replace: delete->create, identical attrs, fresh identity
            if not len(self.live):
                return "noop"
            victim = rng.choice([str(a) for a in self.live.addresses()])
            vaddr = ResourceAddress.parse(victim)
            live_old = self.live.get(vaddr)
            self.next_id += 1
            rid = f"cloud-{self.next_id}"
            self.live.set(live_old.replace(resource_id=rid))
            ref_old = self.ref.get(vaddr)
            ref_new = ref_old.copy()
            ref_new.resource_id = rid
            self.ref.set(ref_new)
            return f"replace {victim}"
        if roll < 0.8:
            value = rng.choice([1, "x", [1, 2], {"k": "v"}, None])
            name = f"out{rng.randrange(4)}"
            self.live.outputs[name] = value
            self.ref.outputs[name] = json.loads(json.dumps(value))
            return f"output {name}"
        if roll < 0.9:
            self.live.bump()
            self.ref.bump()
            return "bump"
        self.live_history.checkpoint(
            self.live, {"main.clc": "cfg"}, timestamp=float(len(self.live_history))
        )
        self.ref_history.checkpoint(
            self.ref, {"main.clc": "cfg"}, timestamp=float(len(self.ref_history))
        )
        return "checkpoint"

    def assert_equivalent(self, context: str) -> None:
        assert self.live.to_json() == self.ref.to_json(), context
        assert len(self.live_history) == len(self.ref_history)


@pytest.mark.parametrize("seed", [0, 7, 91])
def test_golden_mutation_sequences(seed):
    driver = _TwinDriver(seed)
    for i in range(240):
        what = driver.step()
        driver.assert_equivalent(f"seed={seed} step={i}: {what}")
    # force a final checkpoint on both sides so history is non-trivial
    driver.live_history.checkpoint(driver.live, {}, timestamp=999.0)
    driver.ref_history.checkpoint(driver.ref, {}, timestamp=999.0)

    versions = driver.live_history.versions()
    assert versions == driver.ref_history.versions()
    # every checkout reconstructs byte-identically
    for v in versions:
        live_doc = driver.live_history.checkout(v)
        ref_doc = driver.ref_history.checkout(v)
        assert live_doc.to_json() == ref_doc.to_json(), f"checkout v{v}"
        snap = driver.live_history.get(v)
        assert snap.state.to_json() == ref_doc.to_json(), f"get v{v}"
    # every version pair diffs identically
    rng = random.Random(seed)
    pairs = [
        (a, b)
        for a in versions
        for b in versions
    ]
    for a, b in rng.sample(pairs, min(60, len(pairs))):
        live_diff = driver.live_history.diff(a, b)
        ref_diff = driver.ref_history.diff(a, b)
        assert live_diff.added == ref_diff.added, f"diff {a}->{b}"
        assert live_diff.removed == ref_diff.removed, f"diff {a}->{b}"
        assert live_diff.changed == ref_diff.changed, f"diff {a}->{b}"


def test_copies_stay_frozen_while_original_mutates():
    driver = _TwinDriver(seed=5)
    frozen = []
    for i in range(120):
        driver.step()
        if i % 20 == 10:
            frozen.append((driver.live.copy(), driver.ref.copy()))
        for live_copy, ref_copy in frozen:
            assert live_copy.to_json() == ref_copy.to_json()


def test_round_trip_through_json_matches_reference():
    driver = _TwinDriver(seed=11)
    for _ in range(60):
        driver.step()
    text = driver.live.to_json()
    assert StateDocument.from_json(text).to_json() == text
    assert ReferenceStateDocument.from_json(text).to_json() == text
