"""Regenerate tests/golden/random_dag_1k.json.

Runs the frozen *reference* executors (repro.deploy.reference) over the
seeded 1k-node random DAG and records their scheduling fingerprints.
The optimized executors must reproduce these byte-for-byte
(tests/test_executor_equivalence.py::TestGoldenRandomDag).

Usage::

    PYTHONPATH=src python tests/golden/generate_golden.py
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))
sys.path.insert(0, os.path.join(HERE, ".."))

from repro.deploy.reference import REFERENCE_FOR  # noqa: E402
from repro.workloads.topologies import random_dag_estate  # noqa: E402

from test_executor_equivalence import (  # noqa: E402
    GOLDEN_CASES,
    GOLDEN_NODES,
    GOLDEN_SEED,
    result_fingerprint,
    run_apply,
)


def main() -> None:
    source = random_dag_estate(GOLDEN_NODES, seed=GOLDEN_SEED)
    executors = {}
    for name, cls, kwargs in GOLDEN_CASES:
        ref_cls = REFERENCE_FOR[cls]
        _, result = run_apply(
            lambda gw: ref_cls(gw, **kwargs), source, seed=GOLDEN_SEED
        )
        assert result.ok, f"{name}: {result.failed}"
        executors[name] = {
            "n_succeeded": len(result.succeeded),
            "makespan_s": round(result.makespan_s, 6),
            "succeeded_head": result.succeeded[:10],
            "fingerprint": result_fingerprint(result),
        }
        print(f"{name:22s} makespan={result.makespan_s:.3f}s "
              f"fp={executors[name]['fingerprint'][:16]}...")
    out = os.path.join(HERE, "random_dag_1k.json")
    with open(out, "w") as handle:
        json.dump(
            {
                "workload": "random_dag_estate",
                "nodes": GOLDEN_NODES,
                "seed": GOLDEN_SEED,
                "generated_by": "reference executors (repro.deploy.reference)",
                "executors": executors,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
