"""Stress and failure-injection integration tests."""

import pytest

from repro.cloud import CloudGateway, FaultSpec
from repro.core import CloudlessEngine
from repro.deploy import CriticalPathExecutor, RetryPolicy
from repro.deploy.incremental import read_data_sources
from repro.graph import Planner, build_graph
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import microservices, sized_estate


class TestTransientFaultStorm:
    def test_apply_converges_under_flaky_cloud(self):
        """A 15% blanket transient failure rate is survivable with
        retries; the estate converges and state matches the cloud."""
        gateway = CloudGateway.simulated(seed=90)
        gateway.planes["aws"].faults.set_transient_rate(0.15)
        graph = build_graph(
            Configuration.parse(microservices(services=4, vms_per_service=2))
        )
        planner = Planner(
            spec_lookup=gateway.try_spec,
            region_lookup=gateway.region_for,
            provider_lookup=gateway.provider_of,
        )
        state = StateDocument()
        data = read_data_sources(gateway, graph, state)
        plan = planner.plan(graph, state, data_values=data)
        executor = CriticalPathExecutor(
            gateway, retry=RetryPolicy(max_attempts=6, base_backoff_s=2.0)
        )
        result = executor.apply(plan)
        assert result.ok, result.failed
        assert gateway.planes["aws"].faults.fired > 0  # faults did fire
        # every state entry is backed by a live cloud record
        for entry in result.state.resources():
            assert gateway.find_record(entry.resource_id) is not None

    def test_retries_cost_extra_operations(self):
        def run(rate):
            gateway = CloudGateway.simulated(seed=91)
            gateway.planes["aws"].faults.set_transient_rate(rate)
            graph = build_graph(
                Configuration.parse(microservices(services=3, vms_per_service=1))
            )
            planner = Planner(spec_lookup=gateway.try_spec)
            plan = planner.plan(graph, StateDocument())
            result = CriticalPathExecutor(
                gateway, retry=RetryPolicy(max_attempts=8, base_backoff_s=5.0)
            ).apply(plan)
            assert result.ok
            return result

        clean = run(0.0)
        flaky = run(0.25)
        assert len(flaky.operations) > len(clean.operations)
        assert any(not op.ok for op in flaky.operations)
        assert max(op.attempt for op in flaky.operations) > 1

    def test_hang_fault_delays_completion(self):
        gateway = CloudGateway.simulated(seed=92)
        gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="RequestTimeout",
                message="stuck",
                match_type="aws_s3_bucket",
                transient=True,
                extra_delay_s=900.0,  # hangs 15 minutes before failing
                max_strikes=1,
            )
        )
        graph = build_graph(
            Configuration.parse('resource "aws_s3_bucket" "b" { name = "x" }\n')
        )
        planner = Planner(spec_lookup=gateway.try_spec)
        plan = planner.plan(graph, StateDocument())
        result = CriticalPathExecutor(
            gateway, retry=RetryPolicy(max_attempts=3, base_backoff_s=1.0)
        ).apply(plan)
        assert result.ok
        assert result.makespan_s > 900.0


class TestScale:
    def test_large_estate_applies(self):
        engine = CloudlessEngine(seed=93)
        result = engine.apply(sized_estate(250))
        assert result.ok
        assert len(engine.state) >= 150
        # and a re-plan over the large estate stays a no-op
        assert engine.plan(sized_estate(250)).is_empty

    def test_large_estate_graph_analyses(self):
        from repro.graph import ImpactAnalyzer

        graph = build_graph(Configuration.parse(sized_estate(250)))
        analyzer = ImpactAnalyzer(graph)
        leaf = next(n for n in graph.nodes if "dns" in n)
        assert analyzer.scope_fraction({leaf}) < 0.05
        assert graph.dag.max_width() > 20

    def test_destroy_large_estate(self):
        engine = CloudlessEngine(seed=94)
        assert engine.apply(sized_estate(150)).ok
        result = engine.destroy()
        assert result.ok
        assert engine.gateway.planes["aws"].count() == 0


class TestQuotaPressure:
    def test_partial_deploy_then_quota_raise(self):
        engine = CloudlessEngine(seed=95)
        engine.gateway.planes["aws"].set_quota(
            "aws_s3_bucket", "us-east-1", 2
        )
        src = (
            'resource "aws_s3_bucket" "b" {\n'
            "  count = 4\n"
            '  name  = "b-${count.index}"\n'
            "}\n"
        )
        first = engine.apply(src, validate_first=False)
        assert not first.ok
        assert engine.gateway.planes["aws"].count("aws_s3_bucket") == 2
        assert any(
            d.error_code == "QuotaExceeded"
            for d in first.diagnoses
        )
        # quota raised: the next apply finishes the job incrementally
        engine.gateway.planes["aws"].set_quota("aws_s3_bucket", "us-east-1", 10)
        second = engine.apply(src, validate_first=False)
        assert second.ok
        assert second.plan.summary()["create"] == 2
