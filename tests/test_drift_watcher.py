"""Event-driven continuous reconciliation (PR 7).

Covers the tentpole :class:`DriftWatcher` (durable cursors, bounded
staleness, coalescing, enforce/adopt/notify/defer-dark auto-reconcile)
and the three satellite bugfixes: late-added-plane cursor ``KeyError``,
sequence-based cursors under log compaction, and full-scan provider
derivation for planes registered under a non-prefix key.
"""

import pytest

from repro.addressing import ResourceAddress
from repro.cloud import FaultSpec
from repro.cloud.base import CloudAPIError
from repro.cloud.clock import SimClock
from repro.cloud.faults import OutageSpec
from repro.cloud.gateway import CloudGateway
from repro.cloud.synthetic import SyntheticControlPlane
from repro.core import CloudlessEngine
from repro.drift import (
    DEFER_DARK,
    DriftWatcher,
    ENFORCE,
    FullScanDetector,
    LogWatchDetector,
    NOTIFY,
    classify_defect,
)
from repro.drift.detector import DriftFinding
from repro.perf import PERF
from repro.state.document import ResourceState
from repro.workloads import two_region_estate, web_tier


def deployed(seed=70, **kwargs):
    engine = CloudlessEngine(seed=seed)
    assert engine.apply(web_tier(**kwargs)).ok
    return engine


def a_vm(engine, rtype="aws_virtual_machine"):
    return next(
        e for e in engine.state.resources() if e.address.type == rtype
    )


def consume_history(watcher_or_detector, state):
    """Advance cursors past the apply-time (actor=iac) events."""
    if isinstance(watcher_or_detector, DriftWatcher):
        cycle = watcher_or_detector.cycle(state)
        assert cycle.findings == []
    else:
        assert watcher_or_detector.poll(state).findings == []


class TestCursorSemantics:
    """Satellite 2: cursors are sequences, not list indexes."""

    def test_events_since_is_sequence_based_across_compaction(self):
        engine = deployed(seed=71)
        log = engine.gateway.planes["aws"].log
        cursor = log.next_cursor
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="x"
        )
        dropped = log.compact(cursor)
        assert dropped > 0
        events = log.events_since(cursor)
        assert [e.operation for e in events] == ["update"]
        assert events[0].sequence == cursor
        # the checkpointed cursor still means "everything before here"
        assert log.events_since(events[-1].sequence + 1) == []

    def test_poll_cursor_advances_by_sequence_not_index(self):
        engine = deployed(seed=72)
        detector = LogWatchDetector(engine.gateway)
        consume_history(detector, engine.state)
        cursor = detector.cursors["aws"]
        # retention drops the consumed prefix; index-based cursors
        # would now skip or replay, sequence-based cursors do neither
        engine.gateway.planes["aws"].log.compact(cursor)
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="cron"
        )
        run = detector.poll(engine.state)
        assert [f.kind for f in run.findings] == ["modified"]
        assert detector.poll(engine.state).findings == []

    def test_restored_log_keeps_minting_unique_sequences(self):
        from repro.cloud.activitylog import ActivityLog

        log = ActivityLog("aws")
        for i in range(4):
            log.append(float(i), "update", "aws_vpc", f"r{i}", "n", "", "x")
        log.compact(4)
        assert len(log) == 0
        restored = ActivityLog("aws")
        restored.restore(log.all_events(), next_sequence=log.next_cursor)
        event = restored.append(9.0, "update", "aws_vpc", "r9", "n", "", "x")
        assert event.sequence == 4  # not 0: no sequence collision


class TestLateAddedPlane:
    """Satellite 1: planes added after construction don't crash polls."""

    def test_late_added_plane_defaults_to_cursor_zero(self):
        engine = deployed(seed=73)
        detector = LogWatchDetector(engine.gateway)
        consume_history(detector, engine.state)
        plane = SyntheticControlPlane("syn0", clock=engine.clock, seed=9)
        engine.gateway.planes["syn0"] = plane
        plane.external_create(
            "syn0_vpc", {"name": "rogue"}, "syn0-east-1", actor="intern"
        )
        run = detector.poll(engine.state)  # used to KeyError on "syn0"
        assert [f.kind for f in run.findings] == ["unmanaged"]
        assert detector.cursors["syn0"] == plane.log.next_cursor

    def test_log_watch_across_outage_with_late_added_plane(self):
        engine = deployed(seed=74)
        detector = LogWatchDetector(engine.gateway)
        consume_history(detector, engine.state)
        now = engine.clock.now
        engine.gateway.inject_outage(
            "aws", OutageSpec(start_s=now, end_s=now + 300.0)
        )
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="cron"
        )
        plane = SyntheticControlPlane("syn0", clock=engine.clock, seed=9)
        engine.gateway.planes["syn0"] = plane
        plane.external_create(
            "syn0_vpc", {"name": "edge"}, "syn0-east-1", actor="intern"
        )
        run = detector.poll(engine.state)
        # the dark plane is reported unreachable, the new plane's event
        # is still delivered -- no KeyError, no lost events
        assert run.unreachable == ["aws"]
        assert [f.kind for f in run.findings] == ["unmanaged"]
        engine.clock.advance_to(now + 301.0)
        run = detector.poll(engine.state)
        assert [f.kind for f in run.findings] == ["modified"]  # late, not lost


class TestFullScanProviderDerivation:
    """Satellite 3: provider comes from the gateway's type->plane map."""

    def _edge_world(self):
        clock = SimClock()
        planes = {
            "edge": SyntheticControlPlane("syn0", clock=clock, seed=3),
        }
        gateway = CloudGateway(planes, clock)
        rid = planes["edge"].external_create(
            "syn0_vpc", {"name": "edge-net"}, "syn0-east-1", actor="iac"
        )
        record = planes["edge"].records[rid]
        state_entry = ResourceState(
            address=ResourceAddress(type="syn0_vpc", name="edge"),
            resource_id=rid,
            provider="edge",
            attrs=record.snapshot(),
            region=record.region,
        )
        from repro.state.document import StateDocument

        state = StateDocument()
        state.set(state_entry)
        return gateway, state

    def test_try_provider_of_resolves_nonprefix_plane(self):
        gateway, _ = self._edge_world()
        assert gateway.try_provider_of("syn0_vpc") == "edge"
        assert gateway.provider_of("syn0_vpc") == "edge"
        assert gateway.try_provider_of("nope_thing") is None
        with pytest.raises(CloudAPIError):
            gateway.provider_of("nope_thing")

    def test_region_outage_on_nonprefix_plane_no_phantom_deletion(self):
        gateway, state = self._edge_world()
        # clean scan first: no drift
        assert FullScanDetector(gateway).scan(state).findings == []
        now = gateway.clock.now
        gateway.inject_outage(
            "edge",
            OutageSpec(start_s=now, end_s=now + 500.0, region="syn0-east-1"),
        )
        run = FullScanDetector(gateway).scan(state)
        # the record is hidden by the dark region; deriving the provider
        # from the type prefix ("syn0", not a plane key) used to defeat
        # the outage skip-logic and fabricate a "deleted" finding here
        assert run.findings == []
        assert "edge/syn0-east-1" in run.unreachable

    def test_synthetic_plane_region_outage_via_simulated_gateway(self):
        engine = CloudlessEngine(
            gateway=CloudGateway.simulated(seed=7, synthetic=1)
        )
        plane = engine.gateway.planes["syn0"]
        rid = plane.external_create(
            "syn0_vpc", {"name": "net"}, "syn0-west-1", actor="iac"
        )
        record = plane.records[rid]
        engine.state.set(
            ResourceState(
                address=ResourceAddress(type="syn0_vpc", name="net"),
                resource_id=rid,
                provider="syn0",
                attrs=record.snapshot(),
                region=record.region,
            )
        )
        now = engine.clock.now
        engine.gateway.inject_outage(
            "syn0",
            OutageSpec(start_s=now, end_s=now + 500.0, region="syn0-west-1"),
        )
        run = FullScanDetector(engine.gateway).scan(engine.state)
        assert run.findings == []
        assert "syn0/syn0-west-1" in run.unreachable


class TestWatcherCoalescing:
    def test_event_burst_collapses_to_one_finding(self):
        engine = deployed(seed=75)
        watcher = DriftWatcher(engine.gateway, auto_reconcile=False)
        consume_history(watcher, engine.state)
        vm = a_vm(engine)
        plane = engine.gateway.planes["aws"]
        plane.external_update(vm.resource_id, {"size": "large"}, actor="a")
        plane.external_update(vm.resource_id, {"size": "xlarge"}, actor="b")
        plane.external_update(vm.resource_id, {"image": "win"}, actor="c")
        cycle = watcher.cycle(engine.state)
        assert len(cycle.findings) == 1
        finding = cycle.findings[0]
        assert finding.kind == "modified"
        assert finding.event_count == 3
        assert finding.changed_attrs == ["image", "size"]

    def test_created_then_deleted_out_of_band_is_no_finding(self):
        engine = deployed(seed=76)
        watcher = DriftWatcher(engine.gateway, auto_reconcile=False)
        consume_history(watcher, engine.state)
        plane = engine.gateway.planes["aws"]
        rid = plane.external_create(
            "aws_s3_bucket", {"name": "flash"}, "us-east-1", actor="intern"
        )
        plane.external_delete(rid, actor="intern")
        cycle = watcher.cycle(engine.state)
        assert cycle.findings == []

    def test_delete_dominates_earlier_updates(self):
        engine = deployed(seed=77)
        watcher = DriftWatcher(engine.gateway, auto_reconcile=False)
        consume_history(watcher, engine.state)
        db = a_vm(engine, rtype="aws_database_instance")
        plane = engine.gateway.planes["aws"]
        plane.external_update(db.resource_id, {"engine": "mysql"}, actor="x")
        plane.external_delete(db.resource_id, actor="x")
        cycle = watcher.cycle(engine.state)
        assert [f.kind for f in cycle.findings] == ["deleted"]
        assert cycle.findings[0].event_count == 2


class TestWatcherReconcile:
    def test_auto_reconcile_enforces_and_notifies(self):
        engine = deployed(seed=78)
        watcher = DriftWatcher(engine.gateway)
        consume_history(watcher, engine.state)
        vm = a_vm(engine)
        golden_size = vm.attrs["size"]
        plane = engine.gateway.planes["aws"]
        plane.external_update(vm.resource_id, {"size": "huge"}, actor="cron")
        plane.external_create(
            "aws_s3_bucket", {"name": "rogue"}, "us-east-1", actor="intern"
        )
        cycle = watcher.cycle(engine.state)
        assert cycle.ok
        decisions = {d.finding.kind: d.decision for d in cycle.decisions}
        assert decisions == {"modified": ENFORCE, "unmanaged": NOTIFY}
        assert cycle.report is not None and cycle.report.ok
        assert cycle.report.notifications  # the rogue bucket
        live = engine.gateway.find_record(vm.resource_id)
        assert live.attrs["size"] == golden_size  # enforced back

    def test_decisions_carry_defect_classes(self):
        deleted = DriftFinding(kind="deleted", resource_id="r", resource_type="t")
        rogue = DriftFinding(kind="unmanaged", resource_id="r", resource_type="t")
        open_cidr = DriftFinding(
            kind="modified",
            resource_id="r",
            resource_type="t",
            changed_attrs=["cidr_block"],
        )
        resized = DriftFinding(
            kind="modified",
            resource_id="r",
            resource_type="t",
            changed_attrs=["size"],
        )
        assert classify_defect(deleted) == "availability/missing-resource"
        assert classify_defect(rogue) == "provisioning/unmanaged-resource"
        assert classify_defect(open_cidr) == "security/misconfiguration"
        assert classify_defect(resized) == "capacity/misconfiguration"

    def test_defer_dark_partition_then_repair_after_recovery(self):
        engine = CloudlessEngine(seed=79)
        assert engine.apply(two_region_estate(14)).ok
        watcher = DriftWatcher(engine.gateway)
        consume_history(watcher, engine.state)
        entry = next(
            e
            for e in engine.state.resources()
            if e.region == "westus2" and e.address.type == "azure_virtual_machine"
        )
        golden_size = entry.attrs["size"]
        engine.gateway.planes["azure"].external_update(
            entry.resource_id, {"size": "enormous"}, actor="cron"
        )
        now = engine.clock.now
        engine.gateway.inject_outage(
            "azure", OutageSpec(start_s=now, end_s=now + 400.0, region="westus2")
        )
        cycle = watcher.cycle(engine.state)
        # the region-less log read still works, so the event is seen --
        # but the repair is deferred to the dark region's horizon, not
        # fired into the outage
        assert [d.decision for d in cycle.decisions] == [DEFER_DARK]
        assert cycle.deferred and cycle.degraded
        assert cycle.report is None  # zero repair API calls
        assert cycle.deferred[0].retry_at == pytest.approx(now + 400.0)
        engine.clock.advance_to(now + 401.0)
        cycle = watcher.cycle(engine.state)
        assert cycle.ok
        assert [d.decision for d in cycle.decisions] == [ENFORCE]
        live = engine.gateway.find_record(entry.resource_id)
        assert live.attrs["size"] == golden_size

    def test_watcher_retries_interrupted_replacement(self):
        """Satellite 4: reconcile remainder resume, watcher-driven."""
        engine = deployed(seed=80)
        watcher = DriftWatcher(engine.gateway)
        consume_history(watcher, engine.state)
        vm = a_vm(engine)
        plane = engine.gateway.planes["aws"]
        plane.external_update(vm.resource_id, {"image": "win-2022"}, actor="x")
        plane.faults.add_rule(
            FaultSpec(
                error_code="InsufficientCapacity",
                message="no capacity",
                match_type="aws_virtual_machine",
                match_operation="create",
                transient=False,
                max_strikes=1,
            )
        )
        cycle = watcher.cycle(engine.state)
        # the delete->create replacement was cut mid-sequence: state is
        # checkpointed (no dead id) and the repair is parked for retry
        assert cycle.report is not None and not cycle.report.ok
        assert cycle.report.remainder
        assert cycle.pending == 1
        assert engine.state.get(vm.address).resource_id == ""
        # an interrupted replacement leaves no external log event; the
        # retry queue, not the log, resumes it on the next cycle
        engine.clock.advance_by(60.0)
        cycle = watcher.cycle(engine.state)
        assert cycle.ok
        assert [f.kind for f in cycle.findings] == ["deleted"]
        entry = engine.state.get(vm.address)
        assert entry.resource_id
        assert engine.gateway.find_record(entry.resource_id) is not None


class TestWatcherStaleness:
    def test_unobserved_partition_goes_stale(self):
        engine = deployed(seed=81)
        watcher = DriftWatcher(engine.gateway, max_lag_s=100.0)
        consume_history(watcher, engine.state)
        now = engine.clock.now
        engine.gateway.inject_outage(
            "azure", OutageSpec(start_s=now, end_s=now + 10_000.0)
        )
        cycles = watcher.run(engine.state, cycles=3, interval_s=120.0)
        assert cycles[-1].run.unreachable == ["azure"]
        assert cycles[-1].lag_s["azure"] > 100.0
        assert cycles[-1].lag_s["aws"] == 0.0
        assert cycles[-1].stale == ["azure"]
        assert cycles[-1].degraded

    def test_perf_counters_exported(self):
        PERF.enable()
        PERF.reset()
        try:
            engine = deployed(seed=82)
            watcher = DriftWatcher(engine.gateway)
            consume_history(watcher, engine.state)
            vm = a_vm(engine)
            plane = engine.gateway.planes["aws"]
            plane.external_update(vm.resource_id, {"size": "big"}, actor="a")
            plane.external_update(vm.resource_id, {"size": "vast"}, actor="a")
            watcher.cycle(engine.state)
            snap = PERF.snapshot()
            assert snap["counters"]["drift.cycles"] == 2
            assert snap["counters"]["drift.external_events"] == 2
            assert snap["counters"]["drift.findings"] == 1
            assert snap["counters"]["drift.coalesced_events"] == 1
            assert snap["counters"]["drift.repairs"] == 1
            assert snap["timers"]["drift.lag_s"]["count"] >= 2
        finally:
            PERF.disable()
            PERF.reset()


class TestCursorPersistence:
    """Satellite 4: cursor checkpoints survive a watcher restart."""

    def test_restarted_watcher_resumes_not_replays(self, tmp_path):
        engine = deployed(seed=83)
        cursor_path = str(tmp_path / "watch.cursors")
        watcher = DriftWatcher(engine.gateway, cursor_path=cursor_path)
        consume_history(watcher, engine.state)  # checkpoints cursors
        vm = a_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="cron"
        )
        # "restart": a fresh watcher (fresh detector, cursors all zero)
        # pointed at the same checkpoint file
        restarted = DriftWatcher(
            engine.gateway, cursor_path=cursor_path, auto_reconcile=False
        )
        cycle = restarted.cycle(engine.state)
        # resumes at the checkpoint: sees exactly the one new event,
        # does not replay the apply-time history
        assert [f.kind for f in cycle.findings] == ["modified"]
        assert cycle.findings[0].event_count == 1
        third = DriftWatcher(
            engine.gateway, cursor_path=cursor_path, auto_reconcile=False
        )
        assert third.cycle(engine.state).findings == []

    def test_checkpoint_written_through_journal_store(self, tmp_path):
        engine = deployed(seed=84)
        cursor_path = str(tmp_path / "watch.cursors")
        watcher = DriftWatcher(engine.gateway, cursor_path=cursor_path)
        consume_history(watcher, engine.state)
        from repro.drift import WatchCursorStore

        assert WatchCursorStore(cursor_path).load() == watcher.cursors
        # identical cursors don't grow the journal
        import os

        size = os.path.getsize(cursor_path + ".journal")
        watcher.cycle(engine.state)
        assert os.path.getsize(cursor_path + ".journal") == size

    def test_world_persistence_round_trips_cursors(self, tmp_path):
        from repro.persist import load_world, save_world

        engine = deployed(seed=85)
        engine.watch()  # advances the engine watcher's cursors
        cursors = engine.watcher.cursors
        assert cursors["aws"] > 0
        path = str(tmp_path / "w.world")
        save_world(engine, path)
        reloaded = load_world(path)
        assert reloaded.watcher.cursors == cursors
        # and the reloaded log keeps minting non-colliding sequences
        vm = a_vm(reloaded)
        reloaded.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="cron"
        )
        run = reloaded.watcher.poll(reloaded.state)
        assert [f.kind for f in run.findings] == ["modified"]


class TestWatchCli:
    PROGRAM = """
resource "aws_vpc" "main" {
  name       = "w-vpc"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s" {
  name       = "w-subnet"
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, 0)
}

resource "aws_network_interface" "nic" {
  name      = "w-nic"
  subnet_id = aws_subnet.s.id
}

resource "aws_virtual_machine" "web" {
  name    = "w-web"
  nic_ids = [aws_network_interface.nic.id]
}
"""

    @pytest.fixture
    def project(self, tmp_path):
        path = tmp_path / "proj"
        path.mkdir()
        (path / "main.clc").write_text(self.PROGRAM)
        return str(path)

    def run(self, project, *argv):
        from repro.cli import main

        return main(["--chdir", project, *argv])

    def test_multi_cycle_watch_reconciles_and_exits_zero(
        self, project, capsys
    ):
        import os

        from repro.persist import load_world, save_world

        assert self.run(project, "init") == 0
        assert self.run(project, "apply") == 0
        assert self.run(project, "watch") == 0  # consume history
        world = os.path.join(project, "cloudless.world")
        engine = load_world(world)
        vm = next(
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        )
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "xlarge"}, actor="cron"
        )
        save_world(engine, world)
        capsys.readouterr()
        code = self.run(
            project, "watch", "--reconcile", "--cycles", "2", "--interval", "30"
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cycle 1/2" in out and "cycle 2/2" in out
        assert "modified" in out
        assert "reset cloud attributes" in out

    def test_watch_without_reconcile_prints_decision(self, project, capsys):
        import os

        from repro.persist import load_world, save_world

        assert self.run(project, "init") == 0
        assert self.run(project, "apply") == 0
        assert self.run(project, "watch") == 0
        world = os.path.join(project, "cloudless.world")
        engine = load_world(world)
        vm = next(
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        )
        engine.gateway.planes["aws"].external_delete(vm.resource_id, actor="x")
        save_world(engine, world)
        capsys.readouterr()
        assert self.run(project, "watch") == 0
        out = capsys.readouterr().out
        assert "[deleted]" in out
        assert "-> enforce" in out  # decided, not executed
        # nothing was repaired: the next reconcile pass still sees it
        reloaded = load_world(world)
        assert reloaded.gateway.find_record(vm.resource_id) is None
