"""ModuleContext: variables, lazy locals, child modules, outputs."""

import pytest

from repro.lang import (
    CLCEvalError,
    Configuration,
    DictModuleLoader,
    Evaluator,
    ModuleContext,
    StaticResolver,
    Unknown,
)


class TestVariables:
    def test_defaults_applied(self):
        cfg = Configuration.parse('variable "a" { default = 5 }\n')
        ctx = ModuleContext(cfg)
        assert ctx.variables["a"] == 5

    def test_provided_overrides_default(self):
        cfg = Configuration.parse('variable "a" { default = 5 }\n')
        ctx = ModuleContext(cfg, variables={"a": 9})
        assert ctx.variables["a"] == 9

    def test_missing_required_variable(self):
        cfg = Configuration.parse('variable "a" { type = number }\n')
        with pytest.raises(CLCEvalError):
            ModuleContext(cfg)

    def test_type_coercion(self):
        cfg = Configuration.parse('variable "a" { type = number }\n')
        ctx = ModuleContext(cfg, variables={"a": "7"})
        assert ctx.variables["a"] == 7

    def test_bad_coercion(self):
        cfg = Configuration.parse('variable "a" { type = number }\n')
        with pytest.raises(CLCEvalError):
            ModuleContext(cfg, variables={"a": "seven"})

    def test_unknown_variable_rejected(self):
        cfg = Configuration.parse("")
        with pytest.raises(CLCEvalError):
            ModuleContext(cfg, variables={"mystery": 1})


class TestLocals:
    def test_locals_chain(self):
        cfg = Configuration.parse(
            'variable "base" { default = "app" }\n'
            "locals {\n"
            '  full  = "${var.base}-prod"\n'
            "  upper = upper(local.full)\n"
            "}\n"
        )
        ctx = ModuleContext(cfg)
        value = Evaluator(ctx.scope()).evaluate(
            cfg.locals["upper"].expr
        )
        assert value == "APP-PROD"

    def test_local_cycle_detected(self):
        cfg = Configuration.parse(
            "locals {\n  a = local.b\n  b = local.a\n}\n"
        )
        ctx = ModuleContext(cfg)
        with pytest.raises(CLCEvalError):
            Evaluator(ctx.scope()).evaluate(cfg.locals["a"].expr)

    def test_local_referencing_resource_is_unknown_without_resolver(self):
        cfg = Configuration.parse(
            'resource "aws_vpc" "v" { name = "x" }\n'
            "locals { vid = aws_vpc.v.id }\n"
        )
        ctx = ModuleContext(cfg)
        value = Evaluator(ctx.scope()).evaluate(cfg.locals["vid"].expr)
        assert isinstance(value, Unknown)


class TestResolvers:
    def test_static_resolver_provides_values(self):
        cfg = Configuration.parse(
            'resource "aws_vpc" "v" { name = "x" }\n'
            "locals { vid = aws_vpc.v.id }\n"
        )
        ctx = ModuleContext(
            cfg, resolver=StaticResolver({"aws_vpc.v": {"id": "vpc-9"}})
        )
        value = Evaluator(ctx.scope()).evaluate(cfg.locals["vid"].expr)
        assert value == "vpc-9"

    def test_data_resolution(self):
        cfg = Configuration.parse(
            'data "aws_region" "r" {}\nlocals { n = data.aws_region.r.name }\n'
        )
        ctx = ModuleContext(
            cfg,
            resolver=StaticResolver({"data.aws_region.r": {"name": "eu"}}),
        )
        assert Evaluator(ctx.scope()).evaluate(cfg.locals["n"].expr) == "eu"

    def test_unknown_root_identifier(self):
        cfg = Configuration.parse("locals { x = not_a_thing.y.z }\n")
        ctx = ModuleContext(cfg)
        with pytest.raises(CLCEvalError):
            Evaluator(ctx.scope()).evaluate(cfg.locals["x"].expr)


class TestModules:
    def make_loader(self):
        return DictModuleLoader(
            {
                "./net": (
                    'variable "cidr" { type = string }\n'
                    'resource "aws_vpc" "this" {\n'
                    '  name       = "net"\n'
                    "  cidr_block = var.cidr\n"
                    "}\n"
                    'output "vpc_cidr" { value = var.cidr }\n'
                )
            }
        )

    def test_child_module_outputs(self):
        cfg = Configuration.parse(
            'module "net" {\n  source = "./net"\n  cidr = "10.1.0.0/16"\n}\n'
            "locals { c = module.net.vpc_cidr }\n"
        )
        ctx = ModuleContext(cfg, loader=self.make_loader())
        assert (
            Evaluator(ctx.scope()).evaluate(cfg.locals["c"].expr)
            == "10.1.0.0/16"
        )

    def test_module_args_evaluated_in_parent_scope(self):
        cfg = Configuration.parse(
            'variable "base" { default = "10.9" }\n'
            'module "net" {\n'
            '  source = "./net"\n'
            '  cidr   = "${var.base}.0.0/16"\n'
            "}\n"
            "locals { c = module.net.vpc_cidr }\n"
        )
        ctx = ModuleContext(cfg, loader=self.make_loader())
        assert (
            Evaluator(ctx.scope()).evaluate(cfg.locals["c"].expr)
            == "10.9.0.0/16"
        )

    def test_missing_module_output(self):
        cfg = Configuration.parse(
            'module "net" {\n  source = "./net"\n  cidr = "10.0.0.0/16"\n}\n'
            "locals { c = module.net.nope }\n"
        )
        ctx = ModuleContext(cfg, loader=self.make_loader())
        with pytest.raises(CLCEvalError):
            Evaluator(ctx.scope()).evaluate(cfg.locals["c"].expr)

    def test_output_values(self):
        cfg = Configuration.parse('output "x" { value = 1 + 1 }\n')
        ctx = ModuleContext(cfg)
        assert ctx.output_values() == {"x": 2}
