"""World persistence round trips."""

import pytest

from repro.core import CloudlessEngine
from repro.persist import (
    engine_from_dict,
    engine_to_dict,
    load_world,
    save_world,
)
from repro.workloads import web_tier


def deployed_engine():
    engine = CloudlessEngine(seed=77)
    assert engine.apply(web_tier(web_vms=2, app_vms=1)).ok
    return engine


class TestRoundTrip:
    def test_state_survives(self, tmp_path):
        engine = deployed_engine()
        path = str(tmp_path / "w.json")
        save_world(engine, path)
        restored = load_world(path)
        assert len(restored.state) == len(engine.state)
        assert {str(a) for a in restored.state.addresses()} == {
            str(a) for a in engine.state.addresses()
        }

    def test_cloud_records_survive(self, tmp_path):
        engine = deployed_engine()
        path = str(tmp_path / "w.json")
        save_world(engine, path)
        restored = load_world(path)
        original = {r.id: r.attrs for r in engine.gateway.all_records()}
        roundtrip = {r.id: r.attrs for r in restored.gateway.all_records()}
        assert roundtrip == original

    def test_clock_and_history_survive(self, tmp_path):
        engine = deployed_engine()
        engine.apply(web_tier(web_vms=3, app_vms=1))
        path = str(tmp_path / "w.json")
        save_world(engine, path)
        restored = load_world(path)
        assert restored.clock.now == pytest.approx(engine.clock.now)
        assert restored.history.versions() == engine.history.versions()
        snap = restored.history.get(1)
        assert len(snap.state) == len(engine.history.get(1).state)

    def test_replan_after_restore_is_noop(self, tmp_path):
        engine = deployed_engine()
        path = str(tmp_path / "w.json")
        save_world(engine, path)
        restored = load_world(path)
        plan = restored.plan(web_tier(web_vms=2, app_vms=1))
        assert plan.is_empty

    def test_id_counter_survives(self, tmp_path):
        """New resources after restore must not collide with old ids."""
        engine = deployed_engine()
        path = str(tmp_path / "w.json")
        save_world(engine, path)
        restored = load_world(path)
        old_ids = {r.id for r in restored.gateway.all_records()}
        result = restored.apply(web_tier(web_vms=3, app_vms=1))
        assert result.ok
        new_ids = {r.id for r in restored.gateway.all_records()} - old_ids
        assert new_ids and not (new_ids & old_ids)

    def test_activity_log_cursor_consistency(self, tmp_path):
        engine = deployed_engine()
        path = str(tmp_path / "w.json")
        save_world(engine, path)
        restored = load_world(path)
        # the watcher on a restored world sees only NEW external events
        run1 = restored.watch()
        assert run1.findings == []
        vm = next(
            e
            for e in restored.state.resources()
            if e.address.type == "aws_virtual_machine"
        )
        restored.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "large"}, actor="x"
        )
        run2 = restored.watch()
        assert len(run2.findings) == 1

    def test_rollback_after_restore(self, tmp_path):
        engine = deployed_engine()
        v1 = engine.history.versions()[-1]
        engine.apply(web_tier(web_vms=4, app_vms=1))
        path = str(tmp_path / "w.json")
        save_world(engine, path)
        restored = load_world(path)
        result = restored.rollback(v1)
        assert result.ok
        assert (
            restored.gateway.planes["aws"].count("aws_virtual_machine") == 3
        )

    def test_format_version_checked(self):
        with pytest.raises(ValueError):
            engine_from_dict({"format": 999})

    def test_dict_round_trip_stable(self):
        engine = deployed_engine()
        once = engine_to_dict(engine)
        twice = engine_to_dict(engine_from_dict(once))
        assert once == twice
