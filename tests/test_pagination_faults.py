"""``enumerate_estate(via_api=True)`` under faults injected mid-page.

Satellite of the crash-safe apply PR: the paginated estate scan must
retry the *faulted page* (same page token) and still see every
resource exactly once. ``FaultSpec.skip_first`` arms the fault after N
matching list calls, so the failure lands on the second or third page
rather than the first call.
"""

import pytest

from repro.cloud import FaultSpec, RetryPolicy
from repro.cloud.gateway import CloudGateway
from repro.porting.importer import enumerate_estate

#: page size is 25 (ControlPlane.list_page_size); 60 records on one
#: plane forces a 3-page scan
ESTATE = 60


def seeded_gateway():
    gateway = CloudGateway.simulated(seed=0)
    plane = gateway.planes["aws"]
    for i in range(ESTATE):
        plane.external_create(
            "aws_s3_bucket", {"name": f"bucket-{i:03d}"}, "us-east-1"
        )
    return gateway, plane


def test_fault_on_second_page_is_retried_with_same_token():
    gateway, plane = seeded_gateway()
    plane.faults.add_rule(
        FaultSpec(
            error_code="Throttling",
            message="Rate exceeded",
            match_operation="list",
            transient=True,
            skip_first=1,  # first page succeeds, second page faults
        )
    )
    records = enumerate_estate(gateway, RetryPolicy(max_attempts=4))
    assert len(records) == ESTATE
    assert len({r.id for r in records}) == ESTATE  # no duplicates
    assert plane.faults.fired == 1


def test_fault_on_every_page_once_still_converges():
    gateway, plane = seeded_gateway()
    plane.faults.add_rule(
        FaultSpec(
            error_code="InternalServerError",
            message="An internal error occurred",
            match_operation="list",
            transient=True,
            max_strikes=3,  # one strike per page of the 3-page scan
        )
    )
    records = enumerate_estate(gateway, RetryPolicy(max_attempts=4))
    assert len(records) == ESTATE
    assert plane.faults.fired == 3


def test_fault_mid_scan_on_multiple_planes():
    gateway, plane = seeded_gateway()
    azure = gateway.planes["azure"]
    for i in range(30):
        azure.external_create(
            "azure_storage_account",
            {"name": f"stor{i:03d}", "location": "eastus"},
            "eastus",
        )
    for target in (plane, azure):
        target.faults.add_rule(
            FaultSpec(
                error_code="Throttling",
                message="Rate exceeded",
                match_operation="list",
                transient=True,
                skip_first=1,
            )
        )
    records = enumerate_estate(gateway, RetryPolicy(max_attempts=4))
    assert len(records) == ESTATE + 30
    assert len({r.id for r in records}) == ESTATE + 30


def test_persistent_list_fault_surfaces_after_retries():
    gateway, plane = seeded_gateway()
    plane.faults.add_rule(
        FaultSpec(
            error_code="AccessDenied",
            message="not authorized to list",
            match_operation="list",
            transient=False,  # permanent: retries cannot save this
            max_strikes=-1,
            skip_first=1,
        )
    )
    from repro.cloud.base import CloudAPIError

    with pytest.raises(CloudAPIError):
        enumerate_estate(gateway, RetryPolicy(max_attempts=3))


def test_probability_miss_consumes_no_strike():
    """Regression: a rule that matches but loses the dice roll must not
    burn a strike -- only *firing* consumes the budget. Under seed 17
    the p=0.5 rule misses several matching calls yet still delivers its
    full max_strikes=2 budget."""
    import random

    from repro.cloud.faults import FaultInjector

    injector = FaultInjector(rng=random.Random(17))
    rule = FaultSpec(
        error_code="X",
        message="x",
        match_operation="list",
        probability=0.5,
        skip_first=3,
        max_strikes=2,
    )
    injector.add_rule(rule)
    outcomes = [
        injector.check("t", "list") is not None for _ in range(20)
    ]
    fired_at = [i for i, fired in enumerate(outcomes) if fired]
    # the skip window passes the first 3 matches without rolling dice,
    # then misses at calls 3-5 and 7-9 consume nothing: the full strike
    # budget still lands (at calls 6 and 10 under this seed)
    assert fired_at == [6, 10]
    assert injector.fired == 2
    assert rule.exhausted
    assert rule._seen == 3  # skip window consumed exactly once


def test_fault_spec_validates_budgets():
    with pytest.raises(ValueError):
        FaultSpec(error_code="X", message="x", probability=1.5)
    with pytest.raises(ValueError):
        FaultSpec(error_code="X", message="x", skip_first=-1)
    with pytest.raises(ValueError):
        FaultSpec(error_code="X", message="x", max_strikes=-2)
    # -1 means unlimited and is legal
    spec = FaultSpec(error_code="X", message="x", max_strikes=-1)
    assert not spec.exhausted


def test_skip_first_arms_after_n_matches():
    from repro.cloud.faults import FaultInjector

    injector = FaultInjector()
    injector.add_rule(
        FaultSpec(
            error_code="X", message="x", match_operation="list", skip_first=2
        )
    )
    assert injector.check("t", "list") is None
    assert injector.check("t", "list") is None
    assert injector.check("t", "list") is not None
    # non-matching operations never consume the skip budget
    injector2 = FaultInjector()
    injector2.add_rule(
        FaultSpec(
            error_code="X", message="x", match_operation="list", skip_first=1
        )
    )
    assert injector2.check("t", "create") is None
    assert injector2.check("t", "list") is None  # consumes the skip
    assert injector2.check("t", "list") is not None
