"""Resilience layer: taxonomy, retry policy, ResilientGateway."""

import pytest

from repro.cloud import (
    CloudAPIError,
    CloudGateway,
    FaultInjector,
    FaultSpec,
    OperationTimeout,
    ResilientGateway,
    RetryPolicy,
    TERMINAL,
    THROTTLED,
    TIMEOUT,
    TRANSIENT,
    classify,
)
from repro.cloud.resilience import _unit_hash


def gateway(seed=7):
    return CloudGateway.simulated(seed=seed)


def resilient(seed=7, **kwargs):
    return ResilientGateway(gateway(seed=seed), **kwargs)


class TestClassify:
    def test_transient(self):
        err = CloudAPIError("InternalServerError", "retry", transient=True)
        assert classify(err) == TRANSIENT

    def test_throttled_codes(self):
        for code in ("Throttling", "TooManyRequests", "RequestLimitExceeded"):
            err = CloudAPIError(code, "slow down", transient=True)
            assert classify(err) == THROTTLED

    def test_terminal(self):
        err = CloudAPIError("InvalidParameter", "bad", transient=False)
        assert classify(err) == TERMINAL

    def test_timeout(self):
        err = OperationTimeout("budget blown", operation="create")
        assert classify(err) == TIMEOUT
        assert err.code == "OperationTimedOut"
        assert err.http_status == 408


class TestRetryPolicy:
    def test_backoff_matches_legacy_executor_schedule(self):
        # the deploy executors' schedule must stay byte-identical
        policy = RetryPolicy()
        assert [policy.backoff(a) for a in (1, 2, 3)] == [5.0, 10.0, 20.0]

    def test_retries_only_transient_and_throttled(self):
        policy = RetryPolicy()
        assert policy.retries(TRANSIENT)
        assert policy.retries(THROTTLED)
        assert not policy.retries(TERMINAL)
        assert not policy.retries(TIMEOUT)

    def test_throttle_inflation_and_cap(self):
        policy = RetryPolicy(base_backoff_s=100.0, max_backoff_s=150.0)
        assert policy.delay_for(1, TRANSIENT) == 100.0
        # 100 * 2.0 throttle factor, capped at 150
        assert policy.delay_for(1, THROTTLED) == 150.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff_s=10.0, jitter=0.25)
        a = policy.delay_for(1, TRANSIENT, key="vm|create|r-1")
        b = policy.delay_for(1, TRANSIENT, key="vm|create|r-1")
        c = policy.delay_for(1, TRANSIENT, key="vm|create|r-2")
        assert a == b  # same key, same attempt -> same delay
        assert a != c  # different key -> different jitter
        assert 10.0 <= a < 10.0 * 1.25

    def test_unit_hash_range(self):
        values = [_unit_hash(f"k{i}") for i in range(50)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) == len(values)

    def test_deploy_reexports_same_class(self):
        from repro.deploy import RetryPolicy as deploy_policy
        from repro.deploy.executor import RetryPolicy as executor_policy

        assert deploy_policy is RetryPolicy
        assert executor_policy is RetryPolicy


class TestFaultSpecValidation:
    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            FaultSpec(error_code="X", message="m", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(error_code="X", message="m", probability=-0.1)

    def test_probability_zero_never_fires(self):
        class ZeroRng:
            def random(self):
                return 0.0  # the old `<=` comparison made this fire

        injector = FaultInjector(rng=ZeroRng())
        injector.add_rule(
            FaultSpec(error_code="X", message="m", probability=0.0)
        )
        for _ in range(20):
            assert injector.check("aws_s3_bucket", "create") is None


class TestResilientGateway:
    def test_wrap_is_idempotent(self):
        rg = resilient()
        assert ResilientGateway.wrap(rg) is rg
        # re-wrapping with overrides still never double-wraps
        rg2 = ResilientGateway.wrap(rg, retry=RetryPolicy(max_attempts=2))
        assert rg2.inner is rg.inner

    def test_transient_fault_is_retried_to_success(self):
        rg = resilient()
        rg.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalServerError",
                message="oops",
                match_operation="create",
                transient=True,
                max_strikes=1,
            )
        )
        before = rg.clock.now
        response = rg.execute(
            "create", "aws_s3_bucket", attrs={"name": "b1"}, region="us-east-1"
        )
        assert response["id"]
        assert rg.stats.retries == 1
        assert rg.stats.backoff_s > 0
        assert rg.clock.now >= before + rg.stats.backoff_s

    def test_terminal_fault_is_not_retried(self):
        rg = resilient()
        rg.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InvalidParameter",
                message="bad request",
                match_operation="create",
                transient=False,
                max_strikes=1,
            )
        )
        calls_before = rg.total_api_calls()
        with pytest.raises(CloudAPIError) as exc_info:
            rg.execute(
                "create", "aws_s3_bucket", attrs={"name": "b2"},
                region="us-east-1",
            )
        assert exc_info.value.code == "InvalidParameter"
        assert rg.stats.retries == 0
        assert rg.total_api_calls() - calls_before == 1

    def test_gives_up_after_max_attempts(self):
        rg = resilient(retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0))
        rg.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalServerError",
                message="oops",
                match_operation="create",
                transient=True,
                max_strikes=-1,  # unlimited
            )
        )
        with pytest.raises(CloudAPIError):
            rg.execute(
                "create", "aws_s3_bucket", attrs={"name": "b3"},
                region="us-east-1",
            )
        assert rg.stats.gave_up == 1
        assert rg.stats.retries == 1  # one backoff, then gave up

    def test_timeout_budget_raises_operation_timeout(self):
        rg = resilient(timeouts={"create": 1.0})
        rg.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalServerError",
                message="oops",
                match_operation="create",
                transient=True,
                max_strikes=-1,
            )
        )
        with pytest.raises(OperationTimeout) as exc_info:
            rg.execute(
                "create", "aws_s3_bucket", attrs={"name": "b4"},
                region="us-east-1",
            )
        err = exc_info.value
        assert err.budget_s == 1.0
        assert err.last_error is not None
        assert err.last_error.code == "InternalServerError"
        assert rg.stats.timeouts == 1

    def test_submit_passes_through_unretried(self):
        rg = resilient()
        rg.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalServerError",
                message="oops",
                match_operation="create",
                transient=True,
                max_strikes=1,
            )
        )
        pending = rg.submit(
            "create", "aws_s3_bucket", attrs={"name": "b5"}, region="us-east-1"
        )
        rg.clock.advance_to(pending.t_complete)
        # the fault surfaces raw: event-loop callers own their retry
        with pytest.raises(CloudAPIError):
            pending.resolve()
        assert rg.stats.retries == 0

    def test_read_data_is_retried(self):
        rg = resilient()
        rg.execute(
            "create", "aws_s3_bucket", attrs={"name": "data-src"},
            region="us-east-1",
        )
        rg.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalServerError",
                message="oops",
                match_operation="read",
                transient=True,
                max_strikes=1,
            )
        )
        result = rg.read_data("aws_s3_bucket", {"name": "data-src"})
        assert result.get("name") == "data-src"
        assert rg.stats.retries == 1

    def test_perf_counters_record_retries(self):
        from repro import perf

        perf.PERF.enable()
        perf.PERF.reset()
        try:
            rg = resilient()
            rg.planes["aws"].faults.add_rule(
                FaultSpec(
                    error_code="Throttling",
                    message="slow down",
                    match_operation="create",
                    transient=True,
                    max_strikes=2,
                )
            )
            rg.execute(
                "create", "aws_s3_bucket", attrs={"name": "b6"},
                region="us-east-1",
            )
            snap = perf.snapshot()
            assert snap["counters"]["resilience.retries"] == 2
            assert snap["timers"]["resilience.backoff_sim_s"]["total_s"] > 0
        finally:
            perf.PERF.reset()
            perf.PERF.disable()

    def test_throttled_backoff_exceeds_transient(self):
        policy = RetryPolicy(base_backoff_s=10.0, throttle_factor=3.0)
        assert policy.delay_for(1, THROTTLED) == 3 * policy.delay_for(
            1, TRANSIENT
        )

    def test_engine_exposes_shared_resilient_wrapper(self):
        from repro.core import CloudlessEngine

        engine = CloudlessEngine(seed=9)
        assert isinstance(engine.resilient, ResilientGateway)
        assert engine.resilient.inner is engine.gateway


class TestRetryStatsAndPerfCounters:
    """PR 5 satellite: RetryStats.as_dict and the resilience.* perf
    counters under a mixed transient/throttled/terminal/outage storm."""

    def test_as_dict_round_trips_every_counter(self):
        from repro.cloud import RetryStats

        stats = RetryStats(
            retries=3, backoff_s=12.5, gave_up=1, timeouts=2, fast_fails=4
        )
        assert stats.as_dict() == {
            "retries": 3,
            "backoff_s": 12.5,
            "gave_up": 1,
            "timeouts": 2,
            "fast_fails": 4,
        }
        # fresh stats start at zero across the board
        assert all(v == 0 for v in RetryStats().as_dict().values())

    def test_mixed_storm_feeds_stats_and_perf(self):
        from repro import perf
        from repro.cloud import BreakerPolicy, HealthMonitor, OutageSpec
        from repro.cloud.resilience import PartitionUnavailableError

        perf.PERF.enable()
        perf.PERF.reset()
        try:
            health = HealthMonitor(policy=BreakerPolicy(failure_threshold=1))
            rg = resilient(
                seed=11,
                retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
                health=health,
            )
            aws = rg.inner.planes["aws"]
            # 1. one transient strike: retried once, then succeeds
            aws.faults.add_rule(
                FaultSpec(
                    error_code="InternalServerError",
                    message="oops",
                    match_operation="create",
                    transient=True,
                    max_strikes=1,
                )
            )
            rg.execute(
                "create", "aws_s3_bucket", attrs={"name": "a"},
                region="us-east-1",
            )
            # 2. a throttle storm that outlasts the retry budget
            aws.faults.add_rule(
                FaultSpec(
                    error_code="Throttling",
                    message="slow down",
                    match_operation="create",
                    transient=True,
                    max_strikes=2,
                )
            )
            with pytest.raises(CloudAPIError) as throttled:
                rg.execute(
                    "create", "aws_s3_bucket", attrs={"name": "b"},
                    region="us-east-1",
                )
            assert classify(throttled.value) == THROTTLED
            # 3. a terminal error: raised immediately, never retried
            aws.faults.add_rule(
                FaultSpec(
                    error_code="InvalidParameter",
                    message="bad",
                    match_operation="create",
                    transient=False,
                    max_strikes=1,
                )
            )
            with pytest.raises(CloudAPIError) as terminal:
                rg.execute(
                    "create", "aws_s3_bucket", attrs={"name": "c"},
                    region="us-east-1",
                )
            assert classify(terminal.value) == TERMINAL
            # 4. an outage: first failure trips the breaker (threshold
            # 1), the next call is rejected locally
            rg.inner.inject_outage(
                "azure", OutageSpec(start_s=0.0, end_s=1e9, region="westus2")
            )
            for _ in range(2):
                with pytest.raises(PartitionUnavailableError):
                    rg.execute(
                        "create",
                        "azure_resource_group",
                        attrs={"name": "rg", "location": "westus2"},
                        region="westus2",
                    )

            assert rg.stats.retries == 2  # one transient + one throttled
            assert rg.stats.gave_up == 1
            assert rg.stats.fast_fails == 1
            assert rg.stats.timeouts == 0
            assert rg.stats.backoff_s > 0.0
            assert rg.stats.as_dict()["fast_fails"] == 1

            counters = perf.snapshot()["counters"]
            assert counters["resilience.retries"] == 2
            assert counters["resilience.gave_up"] == 1
            assert counters["resilience.fast_fails"] == 1
            assert counters["resilience.breaker_opened"] == 1
        finally:
            perf.PERF.reset()
            perf.PERF.disable()
