"""Control plane tests: CRUD, constraints, quotas, logs, data sources."""

import pytest

from repro.cloud import (
    AwsControlPlane,
    AzureControlPlane,
    CloudAPIError,
    CloudGateway,
    SimClock,
)


def make_aws():
    return AwsControlPlane(clock=SimClock(), seed=5)


def make_azure():
    return AzureControlPlane(clock=SimClock(), seed=5)


class TestCrudLifecycle:
    def test_create_read_update_delete(self):
        plane = make_aws()
        vpc = plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        assert vpc["id"].startswith("vpc-")
        read = plane.execute("read", "aws_vpc", resource_id=vpc["id"])
        assert read["name"] == "v"
        plane.execute(
            "update", "aws_vpc", resource_id=vpc["id"], attrs={"name": "v2"}
        )
        assert plane.records[vpc["id"]].attrs["name"] == "v2"
        plane.execute("delete", "aws_vpc", resource_id=vpc["id"])
        assert vpc["id"] not in plane.records

    def test_create_takes_latency(self):
        plane = make_aws()
        t0 = plane.clock.now
        plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        assert plane.clock.now > t0 + 1.0

    def test_defaults_filled(self):
        plane = make_aws()
        vpc = plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        nothing = plane.execute(
            "create",
            "aws_subnet",
            attrs={"name": "s", "vpc_id": vpc["id"], "cidr_block": "10.0.1.0/24"},
            region="us-east-1",
        )
        nic = plane.execute(
            "create",
            "aws_network_interface",
            attrs={"name": "n", "subnet_id": nothing["id"]},
            region="us-east-1",
        )
        vm = plane.execute(
            "create",
            "aws_virtual_machine",
            attrs={"name": "m", "nic_ids": [nic["id"]]},
            region="us-east-1",
        )
        assert vm["size"] == "small"
        assert vm["image"] == "linux-base"
        assert "public_ip" in vm

    def test_read_missing_returns_none(self):
        plane = make_aws()
        assert plane.execute("read", "aws_vpc", resource_id="vpc-nope") is None

    def test_unknown_type(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError) as err:
            plane.execute("create", "aws_quantum_computer", attrs={})
        assert err.value.code == "UnknownResourceType"


class TestValidationErrors:
    def test_missing_required(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create", "aws_vpc", attrs={"name": "v"}, region="us-east-1"
            )
        assert err.value.code == "MissingParameter"

    def test_unknown_attr(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create",
                "aws_vpc",
                attrs={"name": "v", "cidr_block": "10.0.0.0/16", "flavour": "x"},
                region="us-east-1",
            )
        assert err.value.code == "InvalidParameter"

    def test_wrong_type_value(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError):
            plane.execute(
                "create",
                "aws_vpc",
                attrs={"name": 5, "cidr_block": "10.0.0.0/16"},
                region="us-east-1",
            )

    def test_bad_enum(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create",
                "aws_disk",
                attrs={"name": "d", "size_gb": 10, "disk_type": "quantum"},
                region="us-east-1",
            )
        assert err.value.code == "InvalidParameterValue"

    def test_invalid_region(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create",
                "aws_vpc",
                attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
                region="mars-north-1",
            )
        assert err.value.code == "InvalidLocation"

    def test_dangling_reference_aws_style(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create",
                "aws_subnet",
                attrs={
                    "name": "s",
                    "vpc_id": "vpc-missing",
                    "cidr_block": "10.0.0.0/24",
                },
                region="us-east-1",
            )
        assert err.value.code == "InvalidVpcID.NotFound"

    def test_wrong_type_reference_reports_not_found(self):
        """The leaky-abstraction error from paper 3.2."""
        plane = make_aws()
        vpc = plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create",
                "aws_network_interface",
                attrs={"name": "n", "subnet_id": vpc["id"]},  # a VPC, not subnet
                region="us-east-1",
            )
        assert "NotFound" in err.value.code

    def test_name_conflict(self):
        plane = make_aws()
        attrs = {"name": "dup", "cidr_block": "10.0.0.0/16"}
        plane.execute("create", "aws_vpc", attrs=dict(attrs), region="us-east-1")
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create",
                "aws_vpc",
                attrs={"name": "dup", "cidr_block": "10.1.0.0/16"},
                region="us-east-1",
            )
        assert err.value.code == "Conflict"

    def test_quota(self):
        plane = make_aws()
        plane.set_quota("aws_s3_bucket", "us-east-1", 1)
        plane.execute(
            "create", "aws_s3_bucket", attrs={"name": "a"}, region="us-east-1"
        )
        with pytest.raises(CloudAPIError) as err:
            plane.execute(
                "create", "aws_s3_bucket", attrs={"name": "b"}, region="us-east-1"
            )
        assert err.value.code == "QuotaExceeded"

    def test_immutable_attr_update_rejected(self):
        plane = make_aws()
        vpc = plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        with pytest.raises(CloudAPIError):
            plane.execute(
                "update",
                "aws_vpc",
                resource_id=vpc["id"],
                attrs={"cidr_block": "10.9.0.0/16"},
            )

    def test_delete_with_dependents_rejected(self):
        plane = make_aws()
        vpc = plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        plane.execute(
            "create",
            "aws_subnet",
            attrs={"name": "s", "vpc_id": vpc["id"], "cidr_block": "10.0.1.0/24"},
            region="us-east-1",
        )
        with pytest.raises(CloudAPIError) as err:
            plane.execute("delete", "aws_vpc", resource_id=vpc["id"])
        assert err.value.code == "DependencyViolation"


class TestAwsCidrRules:
    def setup_method(self):
        self.plane = make_aws()
        self.vpc = self.plane.execute(
            "create",
            "aws_vpc",
            attrs={"name": "v", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )

    def test_subnet_outside_vpc(self):
        with pytest.raises(CloudAPIError) as err:
            self.plane.execute(
                "create",
                "aws_subnet",
                attrs={
                    "name": "s",
                    "vpc_id": self.vpc["id"],
                    "cidr_block": "192.168.0.0/24",
                },
                region="us-east-1",
            )
        assert err.value.code == "InvalidSubnet.Range"

    def test_overlapping_subnets(self):
        common = {"vpc_id": self.vpc["id"]}
        self.plane.execute(
            "create",
            "aws_subnet",
            attrs={"name": "a", "cidr_block": "10.0.1.0/24", **common},
            region="us-east-1",
        )
        with pytest.raises(CloudAPIError) as err:
            self.plane.execute(
                "create",
                "aws_subnet",
                attrs={"name": "b", "cidr_block": "10.0.1.128/25", **common},
                region="us-east-1",
            )
        assert err.value.code == "InvalidSubnet.Conflict"


class TestAzureRules:
    def setup_method(self):
        self.plane = make_azure()
        self.rg = self.plane.execute(
            "create",
            "azure_resource_group",
            attrs={"name": "rg", "location": "eastus"},
            region="eastus",
        )
        self.vnet = self.plane.execute(
            "create",
            "azure_virtual_network",
            attrs={
                "name": "v",
                "resource_group_id": self.rg["id"],
                "location": "eastus",
                "address_spaces": ["10.0.0.0/16"],
            },
            region="eastus",
        )
        self.subnet = self.plane.execute(
            "create",
            "azure_subnet",
            attrs={
                "name": "s",
                "vnet_id": self.vnet["id"],
                "address_prefix": "10.0.1.0/24",
            },
            region="eastus",
        )
        self.nic = self.plane.execute(
            "create",
            "azure_network_interface",
            attrs={"name": "n", "subnet_id": self.subnet["id"], "location": "eastus"},
            region="eastus",
        )

    def test_vm_nic_region_mismatch_is_opaque(self):
        """The paper's running example, verbatim."""
        with pytest.raises(CloudAPIError) as err:
            self.plane.execute(
                "create",
                "azure_virtual_machine",
                attrs={"name": "vm", "location": "westus2", "nic_ids": [self.nic["id"]]},
                region="westus2",
            )
        assert err.value.code == "NetworkInterfaceNotFound"
        assert "was not found" in err.value.message
        assert "region" not in err.value.message  # the opacity is the point

    def test_vm_same_region_succeeds(self):
        vm = self.plane.execute(
            "create",
            "azure_virtual_machine",
            attrs={"name": "vm", "location": "eastus", "nic_ids": [self.nic["id"]]},
            region="eastus",
        )
        assert vm["id"].startswith("vm-")

    def test_password_requires_auth_enabled(self):
        with pytest.raises(CloudAPIError):
            self.plane.execute(
                "create",
                "azure_virtual_machine",
                attrs={
                    "name": "vm",
                    "location": "eastus",
                    "nic_ids": [self.nic["id"]],
                    "admin_password": "hunter2!",
                },
                region="eastus",
            )

    def test_password_with_auth_enabled(self):
        vm = self.plane.execute(
            "create",
            "azure_virtual_machine",
            attrs={
                "name": "vm",
                "location": "eastus",
                "nic_ids": [self.nic["id"]],
                "admin_password": "hunter2!",
                "disable_password_auth": False,
            },
            region="eastus",
        )
        assert vm["admin_password"] == "hunter2!"

    def test_subnet_outside_vnet(self):
        with pytest.raises(CloudAPIError) as err:
            self.plane.execute(
                "create",
                "azure_subnet",
                attrs={
                    "name": "bad",
                    "vnet_id": self.vnet["id"],
                    "address_prefix": "172.16.0.0/24",
                },
                region="eastus",
            )
        assert err.value.code == "NetcfgInvalidSubnet"

    def test_peering_overlap_rejected(self):
        other = self.plane.execute(
            "create",
            "azure_virtual_network",
            attrs={
                "name": "v2",
                "resource_group_id": self.rg["id"],
                "location": "eastus",
                "address_spaces": ["10.0.0.0/20"],  # overlaps self.vnet
            },
            region="eastus",
        )
        with pytest.raises(CloudAPIError) as err:
            self.plane.execute(
                "create",
                "azure_vnet_peering",
                attrs={
                    "name": "p",
                    "vnet_a_id": self.vnet["id"],
                    "vnet_b_id": other["id"],
                },
                region="eastus",
            )
        assert err.value.code == "VnetAddressSpacesOverlap"


class TestActivityLogAndExternal:
    def test_iac_operations_logged(self):
        plane = make_aws()
        plane.execute(
            "create",
            "aws_s3_bucket",
            attrs={"name": "b"},
            region="us-east-1",
        )
        assert len(plane.log) == 1
        event = plane.log.all_events()[0]
        assert event.actor == "iac"
        assert not event.is_external

    def test_external_operations_flagged(self):
        plane = make_aws()
        bucket = plane.execute(
            "create", "aws_s3_bucket", attrs={"name": "b"}, region="us-east-1"
        )
        plane.external_update(bucket["id"], {"versioning": True}, actor="script")
        events = plane.log.all_events()
        assert events[-1].is_external
        assert events[-1].changed_attrs == ("versioning",)

    def test_external_create_and_delete(self):
        plane = make_aws()
        rid = plane.external_create(
            "aws_s3_bucket", {"name": "shadow"}, "us-east-1", actor="clickops"
        )
        assert rid in plane.records
        plane.external_delete(rid, actor="clickops")
        assert rid not in plane.records

    def test_log_cursor(self):
        plane = make_aws()
        plane.execute(
            "create", "aws_s3_bucket", attrs={"name": "b1"}, region="us-east-1"
        )
        cursor = plane.log.next_cursor
        plane.execute(
            "create", "aws_s3_bucket", attrs={"name": "b2"}, region="us-east-1"
        )
        new = plane.log.events_since(cursor)
        assert len(new) == 1
        assert new[0].resource_name == "b2"


class TestListPagination:
    def test_pages(self):
        plane = make_aws()
        for i in range(60):
            plane.external_create(
                "aws_s3_bucket", {"name": f"b{i}"}, "us-east-1"
            )
        page1 = plane.execute("list", "aws_s3_bucket", attrs={"page_token": 0})
        assert len(page1["items"]) == plane.list_page_size
        assert page1["next_token"] is not None
        total = 0
        token = 0
        while token is not None:
            page = plane.execute("list", "aws_s3_bucket", attrs={"page_token": token})
            total += len(page["items"])
            token = page["next_token"]
        assert total == 60


class TestDataSources:
    def test_region_pseudo_source(self):
        plane = make_aws()
        assert plane.read_data("aws_region", {}, "eu-west-1")["name"] == "eu-west-1"
        assert plane.read_data("aws_region", {})["name"] == plane.regions[0]

    def test_zones(self):
        plane = make_aws()
        zones = plane.read_data("aws_availability_zones", {}, "us-east-1")
        assert len(zones["names"]) == 3

    def test_catalog_lookup_by_name(self):
        plane = make_aws()
        plane.external_create("aws_s3_bucket", {"name": "found-me"}, "us-east-1")
        result = plane.read_data("aws_s3_bucket", {"name": "found-me"})
        assert result["name"] == "found-me"

    def test_catalog_lookup_missing(self):
        plane = make_aws()
        with pytest.raises(CloudAPIError):
            plane.read_data("aws_s3_bucket", {"name": "ghost"})


class TestGateway:
    def test_routing(self, gateway):
        assert gateway.provider_of("aws_vpc") == "aws"
        assert gateway.provider_of("azure_subnet") == "azure"
        with pytest.raises(CloudAPIError):
            gateway.provider_of("gcp_thing")

    def test_shared_clock(self, gateway):
        assert gateway.planes["aws"].clock is gateway.clock
        assert gateway.planes["azure"].clock is gateway.clock

    def test_region_for(self, gateway):
        assert gateway.region_for("azure_virtual_machine", {"location": "westeurope"}) == "westeurope"
        assert gateway.region_for("aws_vpc", {}) == "us-east-1"

    def test_api_call_accounting(self, gateway):
        before = gateway.total_api_calls()
        gateway.execute(
            "create",
            "aws_s3_bucket",
            attrs={"name": "b"},
            region="us-east-1",
        )
        assert gateway.total_api_calls() == before + 1
        assert gateway.api_calls_by_class()["write"] >= 1

    def test_try_spec(self, gateway):
        assert gateway.try_spec("aws_vpc") is not None
        assert gateway.try_spec("aws_nonsense") is None
