"""Workload generators and traffic traces."""

import pytest

from repro.lang import Configuration
from repro.validate import LEVEL_RULES, validate
from repro.workloads import (
    ConfigMutator,
    MutationError,
    diurnal_trace,
    distribute_demand,
    hub_spoke,
    microservices,
    ml_training,
    multi_cloud,
    ramp_surge_trace,
    sized_estate,
    vpn_site,
    web_tier,
)


class TestTopologies:
    @pytest.mark.parametrize(
        "source",
        [
            web_tier(),
            microservices(),
            hub_spoke(),
            ml_training(),
            vpn_site(),
            multi_cloud(),
        ],
        ids=["web", "micro", "hub", "ml", "vpn", "multicloud"],
    )
    def test_generators_produce_valid_configs(self, source):
        report = validate(source, level=LEVEL_RULES)
        assert report.ok, str(report)

    def test_web_tier_scales(self):
        small = Configuration.parse(web_tier(web_vms=1, app_vms=1))
        big = Configuration.parse(web_tier(web_vms=8, app_vms=4))
        assert len(big.managed_resources()) == len(small.managed_resources())
        # count meta scales instances, not declarations
        from repro.graph import build_graph

        assert len(build_graph(big)) > len(build_graph(small))

    def test_sized_estate_hits_target(self):
        from repro.graph import build_graph

        for target in (30, 100, 200):
            graph = build_graph(Configuration.parse(sized_estate(target)))
            assert 0.5 * target <= len(graph) <= 1.6 * target

    def test_hub_spoke_gateway_optional(self):
        with_gw = hub_spoke(with_gateway=True)
        without = hub_spoke(with_gateway=False)
        assert "azure_vpn_gateway" in with_gw
        assert "azure_vpn_gateway" not in without

    def test_multi_cloud_spans_providers(self):
        config = Configuration.parse(multi_cloud())
        types = config.resource_types()
        assert any(t.startswith("aws_") for t in types)
        assert any(t.startswith("azure_") for t in types)


class TestMutators:
    def test_every_kind_applies_to_rich_config(self):
        source = web_tier() + hub_spoke(name="h2")
        mutator = ConfigMutator(seed=9)
        for kind, _ in mutator.mutators():
            config = Configuration.parse(source)
            mutation = mutator.apply_kind(config, kind)
            assert mutation.kind == kind
            assert mutation.catchable_at in ("types", "rules")

    def test_apply_random_is_deterministic(self):
        source = web_tier()
        m1 = ConfigMutator(seed=5).apply_random(Configuration.parse(source))
        m2 = ConfigMutator(seed=5).apply_random(Configuration.parse(source))
        assert m1.kind == m2.kind
        assert m1.target == m2.target

    def test_mutation_error_when_no_site(self):
        mutator = ConfigMutator(seed=1)
        config = Configuration.parse("")
        with pytest.raises(MutationError):
            mutator.apply_random(config)

    def test_mutated_config_differs(self):
        source = web_tier()
        clean = Configuration.parse(source)
        mutated = Configuration.parse(source)
        ConfigMutator(seed=2).apply_kind(mutated, "bad_enum")
        clean_report = validate(clean, level=LEVEL_RULES)
        bad_report = validate(mutated, level=LEVEL_RULES)
        assert clean_report.ok and not bad_report.ok


class TestTraffic:
    def test_ramp_surge_shape(self):
        trace = ramp_surge_trace(duration_s=1000, step_s=10, base=100, peak=1000)
        values = [p.value for p in trace]
        assert max(values) > 800
        assert values[0] < 200
        assert values[-1] < 300  # cooled down

    def test_diurnal_periodicity(self):
        trace = diurnal_trace(duration_s=3600 * 6, period_s=3600 * 3, noise=0.0)
        values = [p.value for p in trace]
        # two peaks over two periods
        assert max(values[: len(values) // 2]) > 1200
        assert max(values[len(values) // 2 :]) > 1200

    def test_traces_deterministic(self):
        a = [p.value for p in ramp_surge_trace(seed=4)]
        b = [p.value for p in ramp_surge_trace(seed=4)]
        assert a == b

    def test_distribute_demand(self):
        loads, dropped = distribute_demand(1000.0, 4, capacity=300.0)
        assert loads == [250.0] * 4
        assert dropped == 0.0
        loads, dropped = distribute_demand(2000.0, 4, capacity=300.0)
        assert loads == [300.0] * 4
        assert dropped == pytest.approx(800.0)

    def test_distribute_no_instances(self):
        loads, dropped = distribute_demand(100.0, 0, capacity=10.0)
        assert loads == [] and dropped == 100.0
