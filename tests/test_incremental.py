"""Incremental update pipeline and impact analysis (E2 machinery)."""

import pytest

from repro.cloud import CloudGateway
from repro.deploy import CriticalPathExecutor, UpdatePipeline, refresh_state
from repro.deploy.incremental import read_data_sources
from repro.graph import ImpactAnalyzer, Planner, build_graph, diff_configurations
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import microservices


def deploy(gateway, source):
    graph = build_graph(Configuration.parse(source))
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    plan = planner.plan(graph, state, data_values=data)
    result = CriticalPathExecutor(gateway).apply(plan)
    assert result.ok
    return result.state


class TestConfigDelta:
    def test_no_change(self):
        src = microservices(services=2)
        delta = diff_configurations(
            Configuration.parse(src), Configuration.parse(src)
        )
        assert delta.is_empty

    def test_attribute_change_detected(self):
        old = microservices(services=2)
        new = old.replace('zone  = "example.sim"', 'zone  = "other.sim"')
        delta = diff_configurations(
            Configuration.parse(old), Configuration.parse(new)
        )
        assert not delta.is_empty
        changed_types = {key[1] for key in delta.changed_resources}
        assert changed_types == {"aws_dns_record"}

    def test_added_and_removed_decls(self):
        old = 'resource "aws_s3_bucket" "a" { name = "a" }\n'
        new = 'resource "aws_s3_bucket" "b" { name = "b" }\n'
        delta = diff_configurations(
            Configuration.parse(old), Configuration.parse(new)
        )
        names = {key[2] for key in delta.changed_resources}
        assert names == {"a", "b"}

    def test_variable_and_local_changes(self):
        old = 'variable "n" { default = 1 }\nlocals { x = 1 }\n'
        new = 'variable "n" { default = 2 }\nlocals { x = 2 }\n'
        delta = diff_configurations(
            Configuration.parse(old), Configuration.parse(new)
        )
        assert delta.changed_variables == {"n"}
        assert delta.changed_locals == {"x"}


class TestImpactAnalyzer:
    def test_scope_is_descendants(self):
        src = microservices(services=3, vms_per_service=1)
        graph = build_graph(Configuration.parse(src))
        analyzer = ImpactAnalyzer(graph)
        seeds = {"aws_subnet.svc_0"}
        scope = analyzer.impact_scope(seeds)
        assert "aws_subnet.svc_0" in scope
        assert "aws_virtual_machine.svc_0_vm[0]" in scope
        # service 1 untouched
        assert not any("svc_1" in s for s in scope)

    def test_scope_fraction_small_for_leaf(self):
        src = microservices(services=6, vms_per_service=2)
        graph = build_graph(Configuration.parse(src))
        analyzer = ImpactAnalyzer(graph)
        fraction = analyzer.scope_fraction({"aws_dns_record.svc_0_dns"})
        assert fraction < 0.1

    def test_root_change_taints_all_dependents(self):
        src = microservices(services=3, vms_per_service=1)
        graph = build_graph(Configuration.parse(src))
        analyzer = ImpactAnalyzer(graph)
        scope = analyzer.impact_scope({"aws_vpc.svc"})
        # everything except the independent IAM role flows from the VPC
        assert scope == set(graph.nodes) - {"aws_iam_role.svc_role"}


class TestRefresh:
    def test_full_refresh_reads_everything(self):
        gateway = CloudGateway.simulated(seed=20)
        state = deploy(gateway, microservices(services=2, vms_per_service=1))
        before = gateway.total_api_calls()
        result = refresh_state(gateway, state)
        assert len(result.refreshed) == len(state)
        assert result.api_calls == len(state)
        assert gateway.total_api_calls() - before == len(state)

    def test_scoped_refresh_reads_subset(self):
        gateway = CloudGateway.simulated(seed=20)
        state = deploy(gateway, microservices(services=2, vms_per_service=1))
        subset = {str(state.resources()[0].address)}
        result = refresh_state(gateway, state, addresses=subset)
        assert result.api_calls == 1

    def test_refresh_pulls_in_drift(self):
        gateway = CloudGateway.simulated(seed=20)
        state = deploy(gateway, microservices(services=1, vms_per_service=1))
        vm = next(
            e for e in state.resources() if e.address.type == "aws_virtual_machine"
        )
        gateway.planes["aws"].external_update(vm.resource_id, {"size": "large"})
        result = refresh_state(gateway, state)
        assert str(vm.address) in result.drifted
        # entries are immutable: the refreshed values live in a
        # successor entry in state, not in the stale reference
        assert state.get(vm.address).attrs["size"] == "large"

    def test_refresh_drops_missing(self):
        gateway = CloudGateway.simulated(seed=20)
        state = deploy(gateway, 'resource "aws_s3_bucket" "b" { name = "b" }\n')
        rid = state.resources()[0].resource_id
        gateway.planes["aws"].external_delete(rid)
        result = refresh_state(gateway, state)
        assert result.missing == ["aws_s3_bucket.b"]
        assert len(state) == 0


class TestUpdatePipeline:
    def run_both(self, delta_fn):
        outcomes = {}
        for incremental in (False, True):
            gateway = CloudGateway.simulated(seed=21)
            old_src = microservices(services=4, vms_per_service=2)
            state = deploy(gateway, old_src)
            new_src = delta_fn(old_src)
            pipeline = UpdatePipeline(gateway, incremental=incremental)
            outcomes[incremental] = pipeline.plan_update(
                Configuration.parse(old_src),
                Configuration.parse(new_src),
                state,
            )
        return outcomes[False], outcomes[True]

    def test_small_delta_small_scope(self):
        full, scoped = self.run_both(
            lambda s: s.replace('zone  = "example.sim"', 'zone  = "z.sim"')
        )
        assert scoped.scope_size < scoped.plan.graph if False else True
        assert scoped.scope_size < len(scoped.graph)
        # both plans agree on what changes
        assert full.plan.summary()["update"] == scoped.plan.summary()["update"]

    def test_incremental_uses_fewer_api_calls(self):
        full, scoped = self.run_both(
            lambda s: s.replace('zone  = "example.sim"', 'zone  = "z.sim"')
        )
        assert scoped.refresh.api_calls < full.refresh.api_calls / 2

    def test_incremental_faster_turnaround(self):
        full, scoped = self.run_both(
            lambda s: s.replace('zone  = "example.sim"', 'zone  = "z.sim"')
        )
        assert scoped.turnaround_s < full.turnaround_s

    def test_plans_equivalent_on_scoped_change(self):
        full, scoped = self.run_both(
            lambda s: s.replace('zone  = "example.sim"', 'zone  = "z.sim"')
        )
        full_actions = {
            cid: c.action.value
            for cid, c in full.plan.changes.items()
            if c.action.value not in ("noop", "read")
        }
        scoped_actions = {
            cid: c.action.value
            for cid, c in scoped.plan.changes.items()
            if c.action.value not in ("noop", "read")
        }
        assert full_actions == scoped_actions
