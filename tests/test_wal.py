"""Intent-journal unit tests: WAL format, replay, torn tails, tokens."""

import json
import os

import pytest

from repro.cloud.gateway import CloudGateway
from repro.deploy.wal import (
    IntentJournal,
    WALCorruptError,
)


class TestIntentJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "apply.wal")
        journal = IntentJournal(path)
        run_id = journal.begin_run()
        i0 = journal.log_intent(
            "aws_vpc.main", "create", "aws_vpc",
            address="aws_vpc.main", token=f"{run_id}/aws_vpc.main/0",
        )
        i1 = journal.log_intent(
            "aws_subnet.a", "create", "aws_subnet", address="aws_subnet.a"
        )
        journal.log_commit(i0, resource_id="vpc-00000001")
        journal.log_abort(i1, error="QuotaExceeded")
        journal.close()

        replayed = IntentJournal.resume(path)
        assert replayed.run_id == run_id
        records = replayed.records()
        assert [r.status for r in records] == ["committed", "aborted"]
        assert records[0].committed_id == "vpc-00000001"
        assert records[0].token == f"{run_id}/aws_vpc.main/0"
        assert records[1].error == "QuotaExceeded"
        assert replayed.open_intents() == []

    def test_begin_run_truncates_previous_run(self, tmp_path):
        path = str(tmp_path / "apply.wal")
        journal = IntentJournal(path)
        journal.begin_run()
        journal.log_intent("a", "create", "aws_vpc")
        journal.begin_run()
        journal.log_intent("b", "create", "aws_vpc")
        journal.close()
        replayed = IntentJournal.resume(path)
        assert [r.cid for r in replayed.records()] == ["b"]

    def test_resume_continues_iids_and_run_id(self, tmp_path):
        path = str(tmp_path / "apply.wal")
        journal = IntentJournal(path)
        run_id = journal.begin_run()
        journal.log_intent("a", "create", "aws_vpc")
        journal.close()
        resumed = IntentJournal.resume(path)
        assert resumed.run_id == run_id
        iid = resumed.log_intent("b", "create", "aws_vpc")
        assert iid == 1  # continues after the crashed run's intents
        resumed.close()
        again = IntentJournal.resume(path)
        assert [r.cid for r in again.records()] == ["a", "b"]

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = str(tmp_path / "apply.wal")
        journal = IntentJournal(path)
        journal.begin_run()
        iid = journal.log_intent("a", "create", "aws_vpc")
        journal.log_commit(iid)
        journal.close()
        # simulate a crash mid-append: half a JSON record at the end
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"rec": "intent", "iid": 1, "cid": "b"')
        replayed = IntentJournal.resume(path)
        assert [r.cid for r in replayed.records()] == ["a"]
        # the torn bytes are physically gone: a second replay is clean
        with open(path, "rb") as handle:
            raw = handle.read()
        assert raw.endswith(b"\n")
        assert b'"cid": "b"' not in raw
        again = IntentJournal.resume(path)
        assert [r.cid for r in again.records()] == ["a"]

    def test_mid_file_garbage_raises(self, tmp_path):
        path = str(tmp_path / "apply.wal")
        journal = IntentJournal(path)
        journal.begin_run()
        journal.log_intent("a", "create", "aws_vpc")
        journal.log_intent("b", "create", "aws_vpc")
        journal.close()
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # corrupt a middle record
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(WALCorruptError):
            IntentJournal.resume(path)

    def test_mark_clean_empties_journal(self, tmp_path):
        path = str(tmp_path / "apply.wal")
        journal = IntentJournal(path)
        journal.begin_run()
        journal.log_intent("a", "create", "aws_vpc")
        journal.mark_clean()
        journal.close()
        assert os.path.getsize(path) == 0
        assert IntentJournal.resume(path).run_id is None

    def test_missing_file_resumes_empty(self, tmp_path):
        replayed = IntentJournal.resume(str(tmp_path / "nope.wal"))
        assert replayed.run_id is None
        assert replayed.records() == []

    def test_records_are_sorted_json_lines(self, tmp_path):
        path = str(tmp_path / "apply.wal")
        journal = IntentJournal(path)
        journal.begin_run()
        journal.log_intent("a", "create", "aws_vpc")
        journal.close()
        for line in open(path, "r", encoding="utf-8"):
            record = json.loads(line)
            assert list(record) == sorted(record)

    def test_invalid_sync_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            IntentJournal(str(tmp_path / "x.wal"), sync="sometimes")


class TestIdempotencyTokens:
    def test_create_with_same_token_returns_original(self):
        gateway = CloudGateway.simulated(seed=0)
        plane = gateway.planes["aws"]
        first = plane.execute(
            "create", "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1", idempotency_token="tok-1",
        )
        second = plane.execute(
            "create", "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1", idempotency_token="tok-1",
        )
        assert second["id"] == first["id"]
        assert plane.count("aws_vpc") == 1

    def test_different_tokens_create_distinct_resources(self):
        gateway = CloudGateway.simulated(seed=0)
        plane = gateway.planes["aws"]
        a = plane.execute(
            "create", "aws_vpc",
            attrs={"name": "net-a", "cidr_block": "10.0.0.0/16"},
            region="us-east-1", idempotency_token="tok-a",
        )
        b = plane.execute(
            "create", "aws_vpc",
            attrs={"name": "net-b", "cidr_block": "10.1.0.0/16"},
            region="us-east-1", idempotency_token="tok-b",
        )
        assert a["id"] != b["id"]
        assert plane.count("aws_vpc") == 2

    def test_find_record_by_token_across_planes(self):
        gateway = CloudGateway.simulated(seed=0)
        response = gateway.planes["azure"].execute(
            "create", "azure_resource_group",
            attrs={"name": "rg", "location": "eastus"}, region="eastus",
            idempotency_token="tok-rg",
        )
        found = gateway.find_record_by_token("tok-rg")
        assert found is not None and found.id == response["id"]
        assert gateway.find_record_by_token("tok-none") is None
        assert gateway.find_record_by_token("") is None

    def test_tokenless_create_never_deduplicates(self):
        gateway = CloudGateway.simulated(seed=0)
        plane = gateway.planes["aws"]
        plane.execute(
            "create", "aws_s3_bucket", attrs={"name": "b1"}, region="us-east-1"
        )
        assert gateway.find_record_by_token("") is None

    def test_settle_inflight_resolves_accepted_writes(self):
        gateway = CloudGateway.simulated(seed=0)
        plane = gateway.planes["aws"]
        pending = plane.submit(
            "create", "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1", idempotency_token="tok-settle",
        )
        assert plane.count("aws_vpc") == 0  # client died before resolve
        settled = gateway.settle_inflight()
        assert settled == 1
        assert plane.count("aws_vpc") == 1
        assert gateway.clock.now >= pending.t_complete
        # the orphan is discoverable by its token
        assert gateway.find_record_by_token("tok-settle") is not None
        # idempotent: nothing left to settle
        assert gateway.settle_inflight() == 0
