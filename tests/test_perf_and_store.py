"""Unit tests for the perf registry and the indexed RecordStore."""

import ipaddress

import pytest

from repro.cloud.base import RecordStore, ResourceRecord, parse_network
from repro.perf import PerfRegistry


def record(rid, rtype="aws_vm", region="us-east-1", name=None, **attrs):
    if name is not None:
        attrs["name"] = name
    return ResourceRecord(
        id=rid,
        type=rtype,
        region=region,
        attrs=attrs,
        created_at=0.0,
        updated_at=0.0,
    )


class TestPerfRegistry:
    def test_disabled_probes_are_noops(self):
        perf = PerfRegistry()
        perf.count("x")
        perf.observe("y", 1.0)
        with perf.timed("z"):
            pass
        perf.gauge("g", 3.0)
        snap = perf.snapshot()
        assert snap == {"counters": {}, "timers": {}, "gauges": {}}

    def test_counters_and_timers(self):
        perf = PerfRegistry(enabled=True)
        perf.count("dispatch")
        perf.count("dispatch", 2)
        perf.observe("pick", 0.5)
        perf.observe("pick", 2.0)
        perf.observe("pick", 1.0)
        snap = perf.snapshot()
        assert snap["counters"]["dispatch"] == 3
        timer = snap["timers"]["pick"]
        assert timer["total_s"] == pytest.approx(3.5)
        assert timer["count"] == 3
        assert timer["max_s"] == pytest.approx(2.0)

    def test_timed_context_manager(self):
        perf = PerfRegistry(enabled=True)
        with perf.timed("work"):
            pass
        snap = perf.snapshot()
        assert snap["timers"]["work"]["count"] == 1
        assert snap["timers"]["work"]["total_s"] >= 0.0

    def test_reset(self):
        perf = PerfRegistry(enabled=True)
        perf.count("a")
        perf.observe("b", 1.0)
        perf.gauge("g", 2.0)
        perf.reset()
        assert perf.snapshot() == {"counters": {}, "timers": {}, "gauges": {}}
        assert perf.enabled  # reset clears data, not the switch


class TestParseNetwork:
    def test_parses_and_caches(self):
        first = parse_network("10.0.0.0/16")
        again = parse_network("10.0.0.0/16")
        assert first is again  # memoized
        assert first == ipaddress.ip_network("10.0.0.0/16")

    def test_strict_and_non_strict_are_separate_entries(self):
        loose = parse_network("10.0.0.1/16", strict=False)
        assert loose == ipaddress.ip_network("10.0.0.1/16", strict=False)
        with pytest.raises(ValueError):
            parse_network("10.0.0.1/16")

    def test_failures_not_cached(self):
        with pytest.raises(ValueError):
            parse_network("not-a-network")
        with pytest.raises(ValueError):
            parse_network("not-a-network")


class TestRecordStore:
    def test_type_and_region_indexes_follow_mutations(self):
        store = RecordStore()
        store["vm-1"] = record("vm-1", name="web")
        store["vm-2"] = record("vm-2", name="app")
        store["sub-1"] = record("sub-1", rtype="aws_subnet", name="net")
        assert store.ids_of_type("aws_vm") == {"vm-1", "vm-2"}
        assert store.count_in_region("aws_vm", "us-east-1") == 2
        assert store.has_name("aws_vm", "us-east-1", "web")
        assert not store.has_name("aws_vm", "eu-west-1", "web")

        del store["vm-1"]
        assert store.ids_of_type("aws_vm") == {"vm-2"}
        assert not store.has_name("aws_vm", "us-east-1", "web")

    def test_overwrite_reindexes(self):
        store = RecordStore()
        store["x"] = record("x", name="old")
        store["x"] = record("x", rtype="aws_disk", name="new")
        assert store.ids_of_type("aws_vm") == frozenset()
        assert store.ids_of_type("aws_disk") == {"x"}
        assert not store.has_name("aws_vm", "us-east-1", "old")
        assert store.has_name("aws_disk", "us-east-1", "new")

    def test_duplicate_names_tracked_by_count(self):
        store = RecordStore()
        store["a"] = record("a", name="dup")
        store["b"] = record("b", name="dup")
        del store["a"]
        assert store.has_name("aws_vm", "us-east-1", "dup")
        del store["b"]
        assert not store.has_name("aws_vm", "us-east-1", "dup")

    def test_note_renamed(self):
        store = RecordStore()
        rec = record("vm-1", name="before")
        store["vm-1"] = rec
        old = rec.attrs.get("name")
        rec.attrs["name"] = "after"
        store.note_renamed(rec, old)
        assert store.has_name("aws_vm", "us-east-1", "after")
        assert not store.has_name("aws_vm", "us-east-1", "before")

    def test_pop_and_clear(self):
        store = RecordStore()
        store["a"] = record("a")
        store["b"] = record("b")
        store.pop("a")
        assert store.pop("ghost", None) is None
        assert store.ids_of_type("aws_vm") == {"b"}
        store.clear()
        assert len(store) == 0
        assert store.ids_of_type("aws_vm") == frozenset()

    def test_update_and_setdefault_reindex(self):
        store = RecordStore()
        store.update({"a": record("a", name="one")})
        store.setdefault("b", record("b", name="two"))
        store.setdefault("b", record("b", name="three"))  # no-op: key exists
        assert store.has_name("aws_vm", "us-east-1", "one")
        assert store.has_name("aws_vm", "us-east-1", "two")
        assert not store.has_name("aws_vm", "us-east-1", "three")

    def test_is_a_real_dict(self):
        store = RecordStore()
        store["a"] = record("a")
        assert isinstance(store, dict)
        assert dict(store) == {"a": store["a"]}
