"""CLI end-to-end tests (in tmp project directories)."""

import os

import pytest

from repro.cli import main

PROGRAM = """
variable "vm_count" {
  type    = number
  default = 2
}

resource "aws_vpc" "main" {
  name       = "cli-vpc"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s" {
  name       = "cli-subnet"
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, 0)
}

resource "aws_virtual_machine" "web" {
  count   = var.vm_count
  name    = "cli-web-${count.index}"
  nic_ids = [aws_network_interface.nic[count.index].id]
}

resource "aws_network_interface" "nic" {
  count     = var.vm_count
  name      = "cli-nic-${count.index}"
  subnet_id = aws_subnet.s.id
}

output "vm_names" { value = aws_virtual_machine.web[*].name }
"""


@pytest.fixture
def project(tmp_path):
    path = tmp_path / "proj"
    path.mkdir()
    (path / "main.clc").write_text(PROGRAM)
    return str(path)


def run(project, *argv):
    return main(["--chdir", project, *argv])


class TestCliLifecycle:
    def test_init_creates_world(self, project, capsys):
        assert run(project, "init") == 0
        assert os.path.exists(os.path.join(project, "cloudless.world"))
        assert "aws, azure" in capsys.readouterr().out

    def test_init_refuses_overwrite(self, project):
        assert run(project, "init") == 0
        assert run(project, "init") == 1
        assert run(project, "init", "--force") == 0

    def test_validate_plan_apply_show(self, project, capsys):
        run(project, "init")
        assert run(project, "validate") == 0
        assert run(project, "plan") == 0
        out = capsys.readouterr().out
        assert "6 to add" in out
        assert run(project, "apply") == 0
        out = capsys.readouterr().out
        assert "apply complete" in out
        assert "vm_names" in out
        assert run(project, "show") == 0
        out = capsys.readouterr().out
        assert "aws_vpc.main" in out

    def test_apply_persists_between_invocations(self, project, capsys):
        run(project, "init")
        run(project, "apply")
        capsys.readouterr()
        assert run(project, "plan") == 0
        out = capsys.readouterr().out
        assert "0 to add, 0 to change, 0 to destroy" in out

    def test_vars_flow(self, project, capsys):
        run(project, "init")
        assert run(project, "apply", "--var", "vm_count=3") == 0
        out = capsys.readouterr().out
        assert "cli-web-2" in out

    def test_validation_gate_blocks_apply(self, project, capsys):
        run(project, "init")
        broken = PROGRAM.replace(
            "nic_ids = [aws_network_interface.nic[count.index].id]",
            "nic_ids = [aws_subnet.s.id]",
        )
        with open(os.path.join(project, "main.clc"), "w") as handle:
            handle.write(broken)
        assert run(project, "apply") == 1
        out = capsys.readouterr().out
        assert "TYPE009" in out

    def test_history_and_rollback(self, project, capsys):
        run(project, "init")
        run(project, "apply")
        run(project, "apply", "--var", "vm_count=4")
        capsys.readouterr()
        assert run(project, "history") == 0
        out = capsys.readouterr().out
        assert "v1" in out and "v2" in out
        assert run(project, "rollback", "1") == 0
        capsys.readouterr()
        run(project, "show")
        out = capsys.readouterr().out
        assert "web[3]" not in out

    def test_watch_detects_and_reconciles(self, project, capsys):
        run(project, "init")
        run(project, "apply")
        capsys.readouterr()
        assert run(project, "watch") == 0
        assert "no drift" in capsys.readouterr().out
        # drift out of band, through the persisted world
        from repro.persist import load_world, save_world

        world = os.path.join(project, "cloudless.world")
        engine = load_world(world)
        vm = next(
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        )
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "xlarge"}, actor="cron"
        )
        save_world(engine, world)
        assert run(project, "watch", "--reconcile") == 0
        out = capsys.readouterr().out
        assert "modified" in out
        assert "reset cloud attributes" in out

    def test_destroy(self, project, capsys):
        run(project, "init")
        run(project, "apply")
        assert run(project, "destroy") == 0
        capsys.readouterr()
        run(project, "show")
        assert "state is empty" in capsys.readouterr().out

    def test_import_writes_files(self, tmp_path, capsys):
        project = str(tmp_path / "legacy")
        os.mkdir(project)
        assert run(project, "init") == 0
        from repro.persist import load_world, save_world

        world = os.path.join(project, "cloudless.world")
        engine = load_world(world)
        engine.gateway.planes["aws"].external_create(
            "aws_s3_bucket", {"name": "clickops-bucket"}, "us-east-1"
        )
        save_world(engine, world)
        assert run(project, "import") == 0
        main_clc = os.path.join(project, "main.clc")
        assert os.path.exists(main_clc)
        with open(main_clc) as handle:
            assert "clickops-bucket" in handle.read()
        capsys.readouterr()
        assert run(project, "plan") == 0
        assert "0 to add" in capsys.readouterr().out

    def test_missing_world_is_friendly(self, project, capsys):
        assert run(project, "plan") == 1
        assert "init" in capsys.readouterr().err

    def test_bad_var_syntax(self, project):
        run(project, "init")
        assert run(project, "apply", "--var", "oops") == 1


class TestCliExtras:
    def test_providers_lists_catalog(self, project, capsys):
        run(project, "init")
        assert run(project, "providers") == 0
        out = capsys.readouterr().out
        assert "aws_virtual_machine" in out
        assert "azure_vpn_gateway" in out
        assert "us-east-1" in out

    def test_graph_emits_dot(self, project, capsys):
        run(project, "init")
        capsys.readouterr()
        assert run(project, "graph") == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "plan"')
        assert "aws_vpc.main" in out

    def test_outputs_command(self, project, capsys):
        run(project, "init")
        run(project, "apply")
        capsys.readouterr()
        assert run(project, "outputs") == 0
        assert "vm_names" in capsys.readouterr().out

    def test_engine_error_is_friendly(self, project, capsys):
        run(project, "init")
        # a variable validation failure surfaces as a clean CLI error
        with open(os.path.join(project, "main.clc"), "a") as handle:
            handle.write(
                'variable "guard" {\n'
                "  default = 1\n"
                "  validation {\n"
                "    condition     = var.guard > 5\n"
                '    error_message = "guard too small"\n'
                "  }\n"
                "}\n"
            )
        assert run(project, "plan") == 1
        # the validation pipeline reports it with the offending line
        out = capsys.readouterr().out
        assert "guard too small" in out and "main.clc" in out
