"""Outage model, circuit breakers, and degraded-mode apply (PR 5).

Covers the tentpole end to end: time-windowed :class:`OutageSpec`s at
the control plane, the :class:`HealthMonitor`/:class:`CircuitBreaker`
layer, fast-fail through :class:`ResilientGateway`, executor partition
quarantine, drain-on-recovery via ``engine.resume()``, the outage-aware
drift detectors and update coordinator, and the CLI's partial exit code.
"""

import os

import pytest

from repro.cloud import (
    BreakerPolicy,
    CircuitBreaker,
    CloudAPIError,
    CloudGateway,
    HealthMonitor,
    OutageSpec,
    PartitionUnavailableError,
    ResilientGateway,
    RetryPolicy,
    UNAVAILABLE,
    classify,
    is_outage_error,
)
from repro.cloud.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    GATE_ALLOW,
    GATE_OPEN,
    GATE_WAIT,
)
from repro.core import CloudlessEngine
from repro.workloads import two_region_estate, web_tier

OUTAGE = OutageSpec(start_s=0.0, end_s=50000.0, region="westus2")


def make_engine(tmp_path=None, seed=0):
    wal = str(tmp_path / "apply.wal") if tmp_path is not None else None
    return CloudlessEngine(seed=seed, wal_path=wal)


# -- the fault model ----------------------------------------------------------


class TestOutageSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            OutageSpec(start_s=100.0, end_s=100.0)
        with pytest.raises(ValueError):
            OutageSpec(start_s=0.0, end_s=10.0, mode="flaky")
        with pytest.raises(ValueError):
            OutageSpec(
                start_s=0.0, end_s=10.0, mode="brownout", latency_multiplier=0.5
            )

    def test_active_window_is_half_open(self):
        spec = OutageSpec(start_s=100.0, end_s=200.0)
        assert not spec.active_at(99.9)
        assert spec.active_at(100.0)
        assert spec.active_at(199.9)
        assert not spec.active_at(200.0)

    def test_region_scoping(self):
        spec = OutageSpec(start_s=0.0, end_s=10.0, region="westus2")
        assert spec.covers("azure_virtual_machine", "westus2")
        assert not spec.covers("azure_virtual_machine", "eastus")
        # a region-scoped outage never covers region-less operations
        assert not spec.covers("azure_virtual_machine", "")

    def test_provider_wide_covers_everything(self):
        spec = OutageSpec(start_s=0.0, end_s=10.0)
        assert spec.covers("azure_virtual_machine", "westus2")
        assert spec.covers("azure_virtual_machine", "")

    def test_match_type_scoping(self):
        spec = OutageSpec(
            start_s=0.0, end_s=10.0, match_type="azure_virtual_machine"
        )
        assert spec.covers("azure_virtual_machine", "eastus")
        assert not spec.covers("azure_subnet", "eastus")


class TestControlPlaneOutage:
    def attrs(self):
        return {"name": "rg-1", "location": "westus2"}

    def test_hard_outage_fails_fast(self):
        gateway = CloudGateway.simulated(seed=3)
        gateway.inject_outage("azure", OUTAGE)
        pending = gateway.submit(
            "create", "azure_resource_group", attrs=self.attrs(),
            region="westus2",
        )
        # fail-fast latency, not the type's provisioning latency
        assert pending.t_complete - pending.t_start <= 10.0
        gateway.clock.advance_to(pending.t_complete)
        with pytest.raises(CloudAPIError) as err:
            pending.resolve()
        assert err.value.code == "ServiceUnavailable"
        assert err.value.transient
        assert is_outage_error(err.value)

    def test_outage_ends_on_schedule(self):
        gateway = CloudGateway.simulated(seed=3)
        gateway.inject_outage("azure", OUTAGE)
        gateway.clock.advance_to(OUTAGE.end_s)
        result = gateway.execute(
            "create", "azure_resource_group", attrs=self.attrs(),
            region="westus2",
        )
        assert result["id"]

    def test_region_scoped_outage_spares_siblings(self):
        gateway = CloudGateway.simulated(seed=3)
        gateway.inject_outage("azure", OUTAGE)
        result = gateway.execute(
            "create",
            "azure_resource_group",
            attrs={"name": "rg-east", "location": "eastus"},
            region="eastus",
        )
        assert result["id"]

    def test_brownout_scales_latency(self):
        def create_duration(with_brownout):
            gateway = CloudGateway.simulated(seed=3)
            if with_brownout:
                gateway.inject_outage(
                    "azure",
                    OutageSpec(
                        start_s=0.0,
                        end_s=1e6,
                        mode="brownout",
                        latency_multiplier=5.0,
                    ),
                )
            pending = gateway.submit(
                "create",
                "azure_resource_group",
                attrs={"name": "rg-1", "location": "eastus"},
            )
            return pending.t_complete - pending.t_start

        base = create_duration(False)
        slow = create_duration(True)
        assert slow == pytest.approx(base * 5.0)

    def test_dark_region_records_hidden_from_list(self):
        gateway = CloudGateway.simulated(seed=3)
        plane = gateway.planes["azure"]
        plane.external_create(
            "azure_storage_account", {"name": "ea", "location": "eastus"}, "eastus"
        )
        plane.external_create(
            "azure_storage_account", {"name": "we", "location": "westus2"}, "westus2"
        )
        gateway.inject_outage("azure", OUTAGE)
        page = gateway.execute(
            "list", "azure_storage_account", attrs={"page_token": 0}
        )
        names = sorted(item["name"] for item in page["items"])
        assert names == ["ea"]
        gateway.clock.advance_to(OUTAGE.end_s)
        page = gateway.execute(
            "list", "azure_storage_account", attrs={"page_token": 0}
        )
        assert sorted(i["name"] for i in page["items"]) == ["ea", "we"]

    def test_status_page(self):
        gateway = CloudGateway.simulated(seed=3)
        gateway.inject_outage("azure", OUTAGE)
        assert gateway.partition_dark("azure", "westus2") == OUTAGE.end_s
        assert gateway.partition_dark("azure", "eastus") is None
        assert gateway.dark_partitions() == {("azure", "westus2"): OUTAGE.end_s}
        gateway.clock.advance_to(OUTAGE.end_s)
        assert gateway.dark_partitions() == {}


# -- breakers -----------------------------------------------------------------


class TestCircuitBreaker:
    def policy(self):
        return BreakerPolicy(
            failure_threshold=3, recovery_s=100.0, backoff_multiplier=2.0
        )

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(("azure", "westus2"), self.policy())
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.gate(3.0) == GATE_OPEN
        assert breaker.blocked(3.0)

    def test_half_open_probe_and_close(self):
        breaker = CircuitBreaker(("azure", "westus2"), self.policy())
        for t in range(3):
            breaker.record_failure(float(t))
        assert breaker.next_probe_at() == pytest.approx(102.0)
        # first gate at/after the probe time half-opens and admits one
        # probe; the second holds (WAIT) instead of failing fast
        assert breaker.gate(102.0) == GATE_ALLOW
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.gate(102.0) == GATE_WAIT
        breaker.record_success(110.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.gate(110.0) == GATE_ALLOW

    def test_failed_probe_backs_off_exponentially(self):
        breaker = CircuitBreaker(("azure", "westus2"), self.policy())
        for t in range(3):
            breaker.record_failure(float(t))
        assert breaker.gate(102.0) == GATE_ALLOW  # the probe
        breaker.record_failure(104.0)  # probe failed
        assert breaker.state == BREAKER_OPEN
        # recovery window doubled: 104 + 200
        assert breaker.next_probe_at() == pytest.approx(304.0)

    def test_blocked_is_pure(self):
        breaker = CircuitBreaker(("azure", "westus2"), self.policy())
        for t in range(3):
            breaker.record_failure(float(t))
        # blocked() past the probe time must not consume the probe slot
        assert not breaker.blocked(102.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.gate(102.0) == GATE_ALLOW


class TestHealthMonitor:
    def monitor(self):
        return HealthMonitor(policy=BreakerPolicy(failure_threshold=2))

    def test_region_outage_trips_only_its_partition(self):
        monitor = self.monitor()
        for t in range(2):
            monitor.record(
                "azure",
                "westus2",
                ok=False,
                now=float(t),
                code="ServiceUnavailable",
                outage=True,
            )
        assert monitor.gate("azure", "westus2", 3.0) == GATE_OPEN
        # healthy sibling regions and region-less ops stay reachable
        assert monitor.gate("azure", "eastus", 3.0) == GATE_ALLOW
        assert monitor.gate("azure", "", 3.0) == GATE_ALLOW

    def test_success_closes_and_healthy_traffic_allocates_nothing(self):
        monitor = self.monitor()
        monitor.record("azure", "eastus", ok=True, now=1.0, latency_s=2.0)
        assert monitor.breakers == {}  # no breaker state for healthy traffic
        for t in range(2):
            monitor.record(
                "azure", "westus2", ok=False, now=float(t),
                code="ServiceUnavailable", outage=True,
            )
        assert monitor.blocked("azure", "westus2", 3.0)
        probe_at = monitor.next_probe_at("azure", "westus2")
        monitor.record("azure", "westus2", ok=True, now=probe_at + 1.0)
        assert not monitor.blocked("azure", "westus2", probe_at + 2.0)

    def test_non_outage_errors_do_not_advance_breakers(self):
        monitor = self.monitor()
        for t in range(10):
            monitor.record(
                "azure", "westus2", ok=False, now=float(t),
                code="InternalServerError", outage=False,
            )
        assert monitor.gate("azure", "westus2", 11.0) == GATE_ALLOW
        assert monitor.health_of("azure", "westus2").errors == 10

    def test_snapshot_shape(self):
        monitor = self.monitor()
        monitor.record(
            "azure", "westus2", ok=False, now=0.0,
            code="ServiceUnavailable", outage=True,
        )
        snap = monitor.snapshot()
        assert "azure/westus2" in snap
        assert snap["azure/westus2"]["health"]["outage_errors"] == 1
        assert snap["azure/westus2"]["breaker"]["state"] == BREAKER_CLOSED


class TestFastFail:
    def test_open_breaker_rejects_without_api_call(self):
        health = HealthMonitor(policy=BreakerPolicy(failure_threshold=1))
        gateway = ResilientGateway(
            CloudGateway.simulated(seed=3), health=health
        )
        health.record(
            "azure", "westus2", ok=False, now=0.0,
            code="ServiceUnavailable", outage=True,
        )
        calls_before = gateway.total_api_calls()
        with pytest.raises(PartitionUnavailableError) as err:
            gateway.execute(
                "create",
                "azure_resource_group",
                attrs={"name": "rg", "location": "westus2"},
                region="westus2",
            )
        assert gateway.total_api_calls() == calls_before  # rejected locally
        assert gateway.stats.fast_fails == 1
        assert classify(err.value) == UNAVAILABLE
        assert is_outage_error(err.value)
        assert err.value.retry_at is not None

    def test_breaker_stops_retry_storm_mid_outage(self):
        health = HealthMonitor(policy=BreakerPolicy(failure_threshold=2))
        gateway = ResilientGateway(
            CloudGateway.simulated(seed=3),
            retry=RetryPolicy(max_attempts=10, base_backoff_s=1.0),
            health=health,
        )
        gateway.inner.inject_outage("azure", OUTAGE)
        with pytest.raises(PartitionUnavailableError):
            gateway.execute(
                "create",
                "azure_resource_group",
                attrs={"name": "rg", "location": "westus2"},
                region="westus2",
            )
        # the breaker tripped after `failure_threshold` real calls; the
        # remaining retry budget was NOT burned against the dark region
        hits = gateway.inner.planes["azure"].faults.outage_hits
        assert hits == 2


# -- degraded-mode apply ------------------------------------------------------


class TestDegradedApply:
    def test_partial_apply_quarantines_dark_region(self, tmp_path):
        engine = make_engine(tmp_path)
        engine.gateway.inject_outage("azure", OUTAGE)
        result = engine.apply(two_region_estate(42))
        assert result.partial and not result.ok
        assert result.apply.failed == {}
        assert result.apply.skipped == []
        assert result.apply.quarantined_partitions() == ["azure/westus2"]
        # every eastus stack converged; every westus2 stack is parked
        assert len(result.apply.succeeded) == 21
        assert len(result.apply.quarantined) == 21
        for quarantine in result.apply.quarantined.values():
            assert quarantine.partition == "azure/westus2"

    def test_no_retry_storm_into_dark_region(self, tmp_path):
        engine = make_engine(tmp_path)
        engine.gateway.inject_outage("azure", OUTAGE)
        engine.apply(two_region_estate(42))
        hits = engine.gateway.planes["azure"].faults.outage_hits
        policy = engine.health.policy
        # breaker trips after `failure_threshold` failures; in-flight
        # operations (bounded by executor concurrency) may also land
        assert hits <= policy.failure_threshold + 2 * 10

    def test_resume_drains_quarantine_to_canonical_estate(self, tmp_path):
        from repro.chaos import assert_converged_like

        engine = make_engine(tmp_path)
        engine.gateway.inject_outage("azure", OUTAGE)
        src = two_region_estate(42)
        partial = engine.apply(src)
        assert partial.partial
        engine.clock.advance_to(OUTAGE.end_s + 4000.0)
        outcome = engine.resume(src)
        assert outcome.ok
        # the journal's quarantined intents were recognized as parked
        assert outcome.recovery is not None
        assert outcome.recovery.summary().get("quarantined", 0) >= 1

        baseline = CloudlessEngine(seed=0)
        assert baseline.apply(src).ok
        assert_converged_like(engine, baseline)

    def test_healthy_apply_is_untouched_by_breaker_layer(self, tmp_path):
        src = two_region_estate(14)
        with_health = make_engine(tmp_path)
        reference = CloudlessEngine(seed=0)
        a = with_health.apply(src)
        b = reference.apply(src)
        assert a.ok and b.ok
        assert a.apply.makespan_s == b.apply.makespan_s
        assert a.apply.api_calls == b.apply.api_calls


# -- drift under outage -------------------------------------------------------


class TestDriftUnderOutage:
    def test_full_scan_reports_no_phantom_deletions(self):
        from repro.drift import FullScanDetector

        engine = CloudlessEngine(seed=0)
        assert engine.apply(two_region_estate(14)).ok
        engine.gateway.inject_outage(
            "azure",
            OutageSpec(
                start_s=engine.clock.now,
                end_s=engine.clock.now + 10000.0,
                region="westus2",
            ),
        )
        detector = FullScanDetector(engine.resilient)
        run = detector.scan(engine.state)
        assert [f for f in run.findings if f.kind == "deleted"] == []
        assert "azure/westus2" in run.unreachable

    def test_full_scan_skips_unreachable_provider(self):
        from repro.drift import FullScanDetector

        engine = CloudlessEngine(seed=0)
        assert engine.apply(web_tier(web_vms=2, app_vms=1)).ok
        engine.gateway.inject_outage(
            "aws",
            OutageSpec(
                start_s=engine.clock.now, end_s=engine.clock.now + 1e6
            ),
        )
        detector = FullScanDetector(
            engine.gateway, retry=RetryPolicy(max_attempts=2)
        )
        run = detector.scan(engine.state)
        assert run.findings == []
        assert run.unreachable == ["aws"]

    def test_log_watch_delivers_events_late_not_lost(self):
        from repro.drift import LogWatchDetector

        engine = CloudlessEngine(seed=0)
        assert engine.apply(web_tier(web_vms=2, app_vms=1)).ok
        detector = LogWatchDetector(
            engine.gateway, retry=RetryPolicy(max_attempts=2)
        )
        detector.poll(engine.state)  # drain the apply's own events
        # an intruder deletes a VM, then the provider goes dark
        victim = next(
            e for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        )
        engine.gateway.planes["aws"].external_delete(victim.resource_id)
        outage = OutageSpec(
            start_s=engine.clock.now, end_s=engine.clock.now + 5000.0
        )
        engine.gateway.inject_outage("aws", outage)
        during = detector.poll(engine.state)
        assert during.findings == []
        assert during.unreachable == ["aws"]
        engine.clock.advance_to(outage.end_s)
        after = detector.poll(engine.state)
        assert after.unreachable == []
        assert any(
            f.kind == "deleted" and f.resource_id == victim.resource_id
            for f in after.findings
        )


# -- coordinator deferral -----------------------------------------------------


class TestCoordinatorDeferral:
    def test_dark_partition_defers_admission(self):
        from repro.state import ResourceLockManager, StateDocument
        from repro.update import UpdateCoordinator, UpdateRequest

        gateway = CloudGateway.simulated(seed=3)
        outage = OutageSpec(start_s=0.0, end_s=900.0, region="westus2")
        gateway.inject_outage("azure", outage)
        coordinator = UpdateCoordinator(
            StateDocument(), ResourceLockManager(), gateway=gateway
        )
        dark = UpdateRequest(
            team="geo-west",
            submitted_at=0.0,
            keys={"azure_virtual_machine.w0"},
            duration_s=60.0,
            partitions={("azure", "westus2")},
        )
        healthy = UpdateRequest(
            team="geo-east",
            submitted_at=0.0,
            keys={"azure_virtual_machine.e0"},
            duration_s=60.0,
            partitions={("azure", "eastus")},
        )
        result = coordinator.run([dark, healthy])
        assert len(result.outcomes) == 2
        by_team = {o.team: o for o in result.outcomes}
        # the healthy team ran immediately; the dark one waited for the
        # status page's recovery horizon instead of burning its window
        assert by_team["geo-east"].acquired_at == pytest.approx(0.0)
        assert by_team["geo-west"].acquired_at >= outage.end_s
        assert len(result.deferrals) == 1
        assert "geo-west" in result.deferrals[0]


# -- recovery classification --------------------------------------------------


class TestRecoveryClassification:
    def test_quarantined_aborts_are_not_terminal_failures(self, tmp_path):
        from repro.deploy import CrashRecovery, IntentJournal
        from repro.deploy.recovery import ABORTED, QUARANTINED
        from repro.state import StateDocument

        path = str(tmp_path / "intents.wal")
        journal = IntentJournal(path)
        journal.begin_run("runq")
        parked = journal.log_intent(
            "azure_resource_group.w", "create", "azure_resource_group"
        )
        journal.log_abort(
            parked, "quarantined: retries exhausted against azure/westus2"
        )
        failed = journal.log_intent(
            "azure_resource_group.x", "create", "azure_resource_group"
        )
        journal.log_abort(failed, "InvalidParameter: bad location")
        journal.close()

        recovery = CrashRecovery(
            CloudGateway.simulated(seed=3), IntentJournal.resume(path)
        )
        report = recovery.recover(StateDocument())
        by_cid = {a.intent.cid: a.classification for a in report.actions}
        assert by_cid["azure_resource_group.w"] == QUARANTINED
        assert by_cid["azure_resource_group.x"] == ABORTED
        assert report.summary()["quarantined"] == 1


# -- CLI exit codes -----------------------------------------------------------


class TestCliExitCodes:
    def project(self, tmp_path, resources=14):
        from repro.cli import main

        directory = str(tmp_path)
        assert main(["--chdir", directory, "init"]) == 0
        with open(os.path.join(directory, "main.clc"), "w") as handle:
            handle.write(two_region_estate(resources))
        return directory, main

    def test_apply_exit_0_on_full_success(self, tmp_path):
        directory, main = self.project(tmp_path)
        assert main(["--chdir", directory, "apply"]) == 0

    def test_apply_exit_2_on_partial_then_resume_0(
        self, tmp_path, capsys
    ):
        import repro.cli as cli

        directory, main = self.project(tmp_path)
        real_load = cli.load_world

        def load_with_outage(path):
            engine = real_load(path)
            engine.gateway.inject_outage("azure", OUTAGE)
            return engine

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(cli, "load_world", load_with_outage)
            assert main(["--chdir", directory, "apply"]) == 2
        out = capsys.readouterr().out
        assert "apply DEGRADED" in out
        assert "azure/westus2" in out
        # outages are ephemeral (not persisted): the reloaded world is
        # healthy, so resume drains the quarantined work to completion
        assert main(["--chdir", directory, "resume"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert main(["--chdir", directory, "apply"]) == 0
