"""state mv / state rm: refactors without destroy/recreate."""

import os

import pytest

from repro.cli import main
from repro.core import CloudlessEngine, EngineError
from repro.graph import Action


class TestStateMove:
    def setup_engine(self):
        engine = CloudlessEngine(seed=60)
        result = engine.apply(
            'resource "aws_vpc" "old_name" {\n'
            '  name       = "net"\n'
            '  cidr_block = "10.0.0.0/16"\n'
            "}\n"
            'resource "aws_subnet" "s" {\n'
            '  name       = "sub"\n'
            "  vpc_id     = aws_vpc.old_name.id\n"
            '  cidr_block = "10.0.1.0/24"\n'
            "}\n"
        )
        assert result.ok
        return engine

    def test_rename_avoids_replacement(self):
        engine = self.setup_engine()
        engine.state_move("aws_vpc.old_name", "aws_vpc.network")
        plan = engine.plan(
            'resource "aws_vpc" "network" {\n'
            '  name       = "net"\n'
            '  cidr_block = "10.0.0.0/16"\n'
            "}\n"
            'resource "aws_subnet" "s" {\n'
            '  name       = "sub"\n'
            "  vpc_id     = aws_vpc.network.id\n"
            '  cidr_block = "10.0.1.0/24"\n'
            "}\n"
        )
        assert plan.is_empty  # no destroy/create despite the rename

    def test_dependencies_follow_the_move(self):
        engine = self.setup_engine()
        engine.state_move("aws_vpc.old_name", "aws_vpc.network")
        from repro.addressing import ResourceAddress

        subnet = engine.state.get(ResourceAddress.parse("aws_subnet.s"))
        assert "aws_vpc.network" in subnet.dependencies
        assert "aws_vpc.old_name" not in subnet.dependencies

    def test_move_missing_source(self):
        engine = self.setup_engine()
        with pytest.raises(EngineError):
            engine.state_move("aws_vpc.ghost", "aws_vpc.x")

    def test_move_onto_existing(self):
        engine = self.setup_engine()
        with pytest.raises(EngineError):
            engine.state_move("aws_vpc.old_name", "aws_subnet.s")


class TestStateForget:
    def test_forget_leaves_cloud_resource(self):
        engine = CloudlessEngine(seed=61)
        assert engine.apply('resource "aws_s3_bucket" "b" { name = "keep" }\n').ok
        assert engine.state_forget("aws_s3_bucket.b")
        assert len(engine.state) == 0
        assert engine.gateway.planes["aws"].find_by_name(
            "aws_s3_bucket", "keep"
        ) is not None

    def test_forget_then_replan_recreates(self):
        # without the state entry the planner wants to create it again
        engine = CloudlessEngine(seed=62)
        src = 'resource "aws_s3_bucket" "b" { name = "keep" }\n'
        assert engine.apply(src).ok
        engine.state_forget("aws_s3_bucket.b")
        plan = engine.plan(src)
        assert plan.changes["aws_s3_bucket.b"].action is Action.CREATE

    def test_forget_missing(self):
        engine = CloudlessEngine(seed=63)
        assert engine.state_forget("aws_s3_bucket.ghost") is False


class TestCliStateCommands:
    @pytest.fixture
    def project(self, tmp_path):
        path = str(tmp_path)
        with open(os.path.join(path, "main.clc"), "w") as handle:
            handle.write('resource "aws_s3_bucket" "b" { name = "x" }\n')
        assert main(["--chdir", path, "init"]) == 0
        assert main(["--chdir", path, "apply"]) == 0
        return path

    def test_cli_mv(self, project, capsys):
        assert (
            main(["--chdir", project, "state", "mv", "aws_s3_bucket.b", "aws_s3_bucket.c"])
            == 0
        )
        capsys.readouterr()
        main(["--chdir", project, "show"])
        out = capsys.readouterr().out
        assert "aws_s3_bucket.c" in out

    def test_cli_rm(self, project, capsys):
        assert main(["--chdir", project, "state", "rm", "aws_s3_bucket.b"]) == 0
        capsys.readouterr()
        main(["--chdir", project, "show"])
        assert "state is empty" in capsys.readouterr().out

    def test_cli_mv_errors(self, project, capsys):
        assert (
            main(["--chdir", project, "state", "mv", "aws_s3_bucket.ghost", "a.b"])
            == 1
        )
        assert "no state entry" in capsys.readouterr().err
