"""SimClock, EventQueue, rate limiting, latency, fault injection."""

import random

import pytest

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.faults import FaultInjector, FaultSpec
from repro.cloud.latency import DEFAULT_PROFILE, LatencyModel, LatencyProfile
from repro.cloud.ratelimit import RateLimiterBank, TokenBucket


class TestSimClock:
    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_no_time_travel(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(3.0)

    def test_advance_by(self):
        clock = SimClock()
        clock.advance_by(2.5)
        clock.advance_by(2.5)
        assert clock.now == 5.0
        with pytest.raises(ValueError):
            clock.advance_by(-1)


class TestEventQueue:
    def test_pop_orders_by_time(self):
        clock = SimClock()
        q = EventQueue(clock)
        q.schedule(5.0, "b")
        q.schedule(2.0, "a")
        assert q.pop() == (2.0, "a")
        assert clock.now == 2.0
        assert q.pop() == (5.0, "b")

    def test_fifo_among_ties(self):
        q = EventQueue(SimClock())
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_cannot_schedule_past(self):
        clock = SimClock(start=10.0)
        q = EventQueue(clock)
        with pytest.raises(ValueError):
            q.schedule(1.0, "x")

    def test_empty_pop(self):
        assert EventQueue(SimClock()).pop() is None

    def test_past_schedule_error_names_the_event(self):
        clock = SimClock(start=10.0)
        q = EventQueue(clock)
        with pytest.raises(ValueError, match=r"event 'complete' \(res-42\)"):
            q.schedule(1.0, ("complete", "res-42"))
        with pytest.raises(ValueError, match=r"event 'tick'"):
            q.schedule(1.0, "tick")
        with pytest.raises(ValueError, match=r"event of type dict"):
            q.schedule(1.0, {"kind": "opaque"})


class TestTokenBucket:
    def test_burst_is_free(self):
        bucket = TokenBucket(rate=1.0, burst=5)
        for _ in range(5):
            assert bucket.consume(0.0) == 0.0

    def test_throttling_pushes_start_times(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.consume(0.0) == 0.0
        start = bucket.consume(0.0)
        assert start == pytest.approx(1.0)
        assert bucket.consume(0.0) == pytest.approx(2.0)

    def test_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        bucket.consume(0.0)
        bucket.consume(0.0)
        # after 1s, 2 tokens refilled
        assert bucket.consume(1.0) == pytest.approx(1.0)

    def test_available_at_does_not_consume(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.available_at(0.0) == 0.0
        assert bucket.available_at(0.0) == 0.0
        bucket.consume(0.0)
        assert bucket.available_at(0.0) > 0.0

    def test_stats(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        bucket.consume(0.0)
        bucket.consume(0.0)
        assert bucket.stats.calls == 2
        assert bucket.stats.throttled_calls == 1
        assert bucket.stats.total_wait_s > 0

    def test_impossible_request(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        with pytest.raises(ValueError):
            bucket.available_at(0.0, tokens=5)


class TestRateLimiterBank:
    def test_separate_buckets(self):
        bank = RateLimiterBank({"read": (100.0, 100), "write": (1.0, 1)})
        assert bank.consume("read", 0.0) == 0.0
        bank.consume("write", 0.0)
        assert bank.consume("write", 0.0) > 0.0
        # reads unaffected by write pressure
        assert bank.consume("read", 0.0) == 0.0

    def test_unknown_class_falls_back(self):
        bank = RateLimiterBank()
        assert bank.consume("mystery", 0.0) == 0.0


class TestLatencyModel:
    def test_mean(self):
        model = LatencyModel({"vm": LatencyProfile(40.0, 20.0, 10.0)})
        assert model.mean("vm", "create") == 40.0
        assert model.mean("vm", "delete") == 10.0
        assert model.mean("unknown_type", "create") == DEFAULT_PROFILE.create_s

    def test_sample_determinism(self):
        model = LatencyModel({"vm": LatencyProfile(40.0, 20.0, 10.0)})
        a = model.sample("vm", "create", random.Random(7))
        b = model.sample("vm", "create", random.Random(7))
        assert a == b

    def test_sample_near_mean(self):
        model = LatencyModel({"vm": LatencyProfile(40.0, 20.0, 10.0, spread=0.1)})
        rng = random.Random(1)
        samples = [model.sample("vm", "create", rng) for _ in range(200)]
        mean = sum(samples) / len(samples)
        assert 35.0 < mean < 45.0

    def test_zero_spread_is_exact(self):
        model = LatencyModel({"vm": LatencyProfile(40.0, 20.0, 10.0, spread=0.0)})
        assert model.sample("vm", "create", random.Random(1)) == 40.0


class TestFaultInjector:
    def test_targeted_rule_fires_once(self):
        injector = FaultInjector(random.Random(0))
        injector.add_rule(
            FaultSpec(
                error_code="Boom",
                message="boom",
                match_type="aws_vm",
                max_strikes=1,
            )
        )
        assert injector.check("aws_vm", "create") is not None
        assert injector.check("aws_vm", "create") is None

    def test_rule_matching(self):
        injector = FaultInjector(random.Random(0))
        injector.add_rule(
            FaultSpec(
                error_code="Boom",
                message="boom",
                match_type="aws_vm",
                match_operation="delete",
                max_strikes=10,
            )
        )
        assert injector.check("aws_vm", "create") is None
        assert injector.check("aws_disk", "delete") is None
        assert injector.check("aws_vm", "delete") is not None

    def test_blanket_transient_rate(self):
        injector = FaultInjector(random.Random(0))
        injector.set_transient_rate(0.5)
        outcomes = [injector.check("t", "create") for _ in range(200)]
        fired = [o for o in outcomes if o is not None]
        assert 50 < len(fired) < 150
        assert all(f.transient for f in fired)

    def test_reads_never_hit_blanket_rate(self):
        injector = FaultInjector(random.Random(0))
        injector.set_transient_rate(0.99)
        assert injector.check("t", "read") is None

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FaultInjector().set_transient_rate(1.5)
