"""Property-based tests (hypothesis) on core invariants."""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addressing import ResourceAddress
from repro.graph.dag import Dag
from repro.lang.functions import call_function
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression_source
from repro.lang.values import values_equal
from repro.porting.emitter import render_value
from repro.state import ResourceState, StateDocument
from repro.cloud.ratelimit import TokenBucket

# -- strategies ---------------------------------------------------------------

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True)

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs",), blacklist_characters="\x00"
        ),
        max_size=30,
    ),
)

json_values = st.recursive(
    scalar_values,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(identifiers, children, max_size=4),
    ),
    max_leaves=12,
)


class TestEmitterRoundTrip:
    @given(json_values)
    @settings(max_examples=200)
    def test_render_value_parses_back_to_equal_value(self, value):
        """Every JSON-ish value survives emit -> lex -> parse -> eval."""
        from repro.lang.evaluator import Evaluator, Scope

        text = render_value(value)
        expr = parse_expression_source(text)
        result = Evaluator(Scope(bindings={})).evaluate(expr)
        assert values_equal(result, value)

    @given(st.text(max_size=60))
    @settings(max_examples=200)
    def test_string_render_is_lossless(self, text):
        if "\x00" in text:
            return
        rendered = render_value(text)
        expr = parse_expression_source(rendered)
        from repro.lang.evaluator import Evaluator, Scope

        assert Evaluator(Scope(bindings={})).evaluate(expr) == text


class TestLexerProperties:
    @given(st.text(alphabet=" \t\nabc123+-*/=<>!&|(){}[],.\"'#", max_size=50))
    @settings(max_examples=300)
    def test_lexer_never_crashes_unexpectedly(self, source):
        """Any input either tokenizes or raises the typed syntax error."""
        from repro.lang.diagnostics import CLCSyntaxError

        try:
            tokens = tokenize(source)
            assert tokens[-1].type.name == "EOF"
        except CLCSyntaxError:
            pass  # rejection is fine; crashes are not


class TestAddressProperties:
    keys = st.one_of(st.none(), st.integers(0, 999), identifiers)

    @given(identifiers, identifiers, keys, st.lists(identifiers, max_size=2))
    @settings(max_examples=200)
    def test_address_round_trip(self, rtype, name, key, modules):
        addr = ResourceAddress(
            type=rtype,
            name=name,
            module_path=tuple(modules),
            instance_key=key,
        )
        assert ResourceAddress.parse(str(addr)) == addr

    @given(identifiers, identifiers, st.lists(st.integers(0, 50), min_size=2, max_size=8, unique=True))
    def test_numeric_ordering(self, rtype, name, keys):
        addrs = [
            ResourceAddress(type=rtype, name=name, instance_key=k) for k in keys
        ]
        ordered = sorted(addrs)
        assert [a.instance_key for a in ordered] == sorted(keys)


class TestStateProperties:
    @given(
        st.lists(
            st.tuples(identifiers, identifiers, json_values),
            max_size=6,
            unique_by=lambda t: (t[0], t[1]),
        )
    )
    @settings(max_examples=100)
    def test_state_json_round_trip(self, entries):
        doc = StateDocument(serial=3)
        for i, (rtype, name, value) in enumerate(entries):
            doc.set(
                ResourceState(
                    address=ResourceAddress(type=rtype, name=name),
                    resource_id=f"r-{i}",
                    provider="aws",
                    attrs={"payload": _jsonable(value)},
                    region="us-east-1",
                )
            )
        restored = StateDocument.from_json(doc.to_json())
        assert len(restored) == len(doc)
        for entry in doc.resources():
            twin = restored.get(entry.address)
            assert twin is not None
            assert twin.attrs == entry.attrs


class TestDagProperties:
    edge_lists = st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        max_size=40,
    )

    @given(edge_lists)
    @settings(max_examples=200)
    def test_topological_order_respects_every_edge(self, edges):
        from repro.graph.dag import CycleError

        dag = Dag()
        try:
            for a, b in edges:
                dag.add_edge(f"n{a}", f"n{b}")
        except CycleError:
            return
        try:
            order = dag.topological_order()
        except CycleError:
            assert dag.find_cycle() is not None
            return
        position = {n: i for i, n in enumerate(order)}
        for a, b in edges:
            assert position[f"n{a}"] < position[f"n{b}"]

    @given(edge_lists)
    @settings(max_examples=100)
    def test_descendants_closed_under_successors(self, edges):
        from repro.graph.dag import CycleError

        dag = Dag()
        try:
            for a, b in edges:
                dag.add_edge(f"n{a}", f"n{b}")
        except CycleError:
            return
        for node in dag.nodes:
            descendants = dag.descendants(node)
            for d in descendants:
                assert dag.successors(d) <= descendants


class TestCidrProperties:
    @given(st.integers(0, 255), st.integers(1, 8), st.integers(0, 200))
    @settings(max_examples=200)
    def test_cidrsubnet_is_contained_and_disjoint(self, octet, newbits, netnum):
        import ipaddress

        base = f"10.{octet}.0.0/16"
        if netnum >= 2**newbits:
            return
        subnet = call_function("cidrsubnet", [base, newbits, netnum])
        assert ipaddress.ip_network(subnet).subnet_of(ipaddress.ip_network(base))
        if netnum > 0:
            other = call_function("cidrsubnet", [base, newbits, netnum - 1])
            assert not ipaddress.ip_network(subnet).overlaps(
                ipaddress.ip_network(other)
            )


class TestTokenBucketProperties:
    @given(
        st.floats(min_value=0.5, max_value=50.0),
        st.integers(1, 20),
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40),
    )
    @settings(max_examples=150)
    def test_start_times_monotone_and_never_early(self, rate, burst, arrivals):
        bucket = TokenBucket(rate=rate, burst=burst)
        arrivals = sorted(arrivals)
        starts = [bucket.consume(t) for t in arrivals]
        for arrival, start in zip(arrivals, starts):
            assert start >= arrival - 1e-9
        for earlier, later in zip(starts, starts[1:]):
            assert later >= earlier - 1e-9

    @given(
        st.floats(min_value=0.5, max_value=50.0),
        st.integers(1, 20),
        st.integers(1, 60),
    )
    @settings(max_examples=100)
    def test_long_run_rate_is_bounded(self, rate, burst, n):
        bucket = TokenBucket(rate=rate, burst=burst)
        starts = [bucket.consume(0.0) for _ in range(n)]
        window = max(starts) - min(starts)
        if window > 0:
            observed_rate = (n - burst) / window if n > burst else 0.0
            assert observed_rate <= rate * 1.01 + 1e-6


def _jsonable(value):
    """Clamp hypothesis floats to json round-trippable values."""
    return json.loads(json.dumps(value))
