"""Chunker and streaming-parse tests.

The chunker (``repro.lang.chunker``) must split any source into
byte-exact chunks -- concatenation reproduces the input -- across every
lexical construct that can hide a newline (strings, interpolations,
heredocs, comments, nested blocks). ``Configuration.parse_streaming``
must be semantically identical to ``Configuration.parse`` and must
actually skip re-parsing unchanged chunks when given ``reuse=``.
"""

import pytest

from repro.lang import Configuration
from repro.lang.chunker import chunk_fingerprints, iter_chunks

SIMPLE = '''
variable "region" {
  default = "eastus"
}

resource "azure_resource_group" "app" {
  name     = "app-rg"
  location = var.region
}

output "rg" {
  value = azure_resource_group.app.id
}
'''

TRICKY = '''
# leading comment travels with the next block
resource "aws_vpc" "a" {
  name = "brace } in string"
  tag  = "interp ${join("-", ["x", "y"])} tail"
}

resource "aws_subnet" "b" {
  description = <<EOT
heredoc with } and { and "quotes"
and a blank line:

EOT
  cidr_block = cidrsubnet("10.0.0.0/16", 8, 1)  # trailing comment
}

locals {
  nested = { a = { b = [1, 2, { c = 3 }] } }
}
'''


class TestChunkRoundtrip:
    def test_concat_reproduces_source(self):
        for src in (SIMPLE, TRICKY, "", "\n\n", "# only a comment\n"):
            chunks = list(iter_chunks(src))
            assert "".join(c.text for c in chunks) == src

    def test_one_chunk_per_top_level_block(self):
        chunks = list(iter_chunks(SIMPLE))
        assert len(chunks) == 3
        assert 'variable "region"' in chunks[0].text
        assert 'resource "azure_resource_group"' in chunks[1].text
        assert 'output "rg"' in chunks[2].text

    def test_tricky_grammar_boundaries(self):
        chunks = list(iter_chunks(TRICKY))
        assert len(chunks) == 3
        # the heredoc's blank line must not split its chunk
        assert "EOT" in chunks[1].text and "cidr_block" in chunks[1].text

    def test_comment_attaches_to_following_block(self):
        chunks = list(iter_chunks(TRICKY))
        assert chunks[0].text.lstrip().startswith("# leading comment")

    def test_start_lines_are_file_absolute(self):
        chunks = list(iter_chunks(SIMPLE))
        lines = SIMPLE.splitlines()
        for chunk in chunks:
            first = chunk.text.lstrip("\n").splitlines()[0]
            blanks = len(chunk.text) - len(chunk.text.lstrip("\n"))
            assert lines[chunk.start_line - 1 + blanks] == first

    def test_unterminated_tail_lands_in_last_chunk(self):
        src = 'resource "aws_vpc" "a" {\n  name = "unterminated\n'
        chunks = list(iter_chunks(src))
        assert "".join(c.text for c in chunks) == src


class TestChunkFingerprints:
    def test_stable_and_content_addressed(self):
        fps1 = chunk_fingerprints(SIMPLE)
        fps2 = chunk_fingerprints(SIMPLE)
        assert fps1 == fps2
        assert len(fps1) == 3

    def test_editing_one_block_changes_one_fingerprint(self):
        before = chunk_fingerprints(SIMPLE)
        after = chunk_fingerprints(SIMPLE.replace('"app-rg"', '"app-rg2"'))
        assert len(before) == len(after)
        diffs = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert diffs == [1]


class TestParseStreaming:
    def test_equivalent_to_parse(self):
        batch = Configuration.parse(TRICKY)
        stream = Configuration.parse_streaming(TRICKY)
        assert set(stream.resources) == set(batch.resources)
        assert set(stream.locals) == set(batch.locals)
        assert not stream.diagnostics.has_errors()

    def test_diagnostics_spans_are_file_absolute(self):
        src = SIMPLE + '\nresource "oops" {\n}\n'
        batch = Configuration.parse(src)
        stream = Configuration.parse_streaming(src)
        berrs = [(d.message, d.span.start_line) for d in batch.diagnostics]
        serrs = [(d.message, d.span.start_line) for d in stream.diagnostics]
        assert berrs == serrs
        assert berrs  # the malformed resource header must be reported

    def test_reuse_skips_unchanged_chunks(self):
        prev = Configuration.parse_streaming(SIMPLE)
        edited = SIMPLE.replace('"app-rg"', '"app-rg2"')
        cfg = Configuration.parse_streaming(edited, reuse=prev)
        # unchanged chunk ASTs are the same objects, not re-parses
        shared = set(prev._chunk_asts) & set(cfg._chunk_asts)
        assert len(shared) == 2
        for fp in shared:
            assert cfg._chunk_asts[fp] is prev._chunk_asts[fp]
        decl = cfg.resource("azure_resource_group", "app")
        assert decl is not None

    def test_reuse_ignores_other_files_chunks(self):
        prev = Configuration.parse_streaming({"a.clc": SIMPLE})
        cfg = Configuration.parse_streaming({"b.clc": SIMPLE}, reuse=prev)
        for fp, ast in cfg._chunk_asts.items():
            assert ast.filename == "b.clc"

    def test_multi_file_fingerprint_map(self):
        cfg = Configuration.parse_streaming(
            {"a.clc": SIMPLE, "b.clc": TRICKY}
        )
        assert set(cfg.block_fingerprints) == {"a.clc", "b.clc"}
        assert cfg.block_fingerprints["a.clc"] == chunk_fingerprints(SIMPLE)
        assert cfg.block_fingerprints["b.clc"] == chunk_fingerprints(TRICKY)
