"""Generic DAG tests."""

import random

import pytest

from repro.graph.dag import CycleError, Dag


def chain(*nodes):
    dag = Dag()
    for a, b in zip(nodes, nodes[1:]):
        dag.add_edge(a, b)
    return dag


class TestStructure:
    def test_add_and_query(self):
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        assert dag.successors("a") == {"b", "c"}
        assert dag.predecessors("b") == {"a"}
        assert set(dag.roots()) == {"a"}
        assert set(dag.leaves()) == {"b", "c"}

    def test_self_edge_rejected(self):
        with pytest.raises(CycleError):
            Dag().add_edge("a", "a")

    def test_remove_node(self):
        dag = chain("a", "b", "c")
        dag.remove_node("b")
        assert "b" not in dag
        assert dag.successors("a") == set()
        assert dag.predecessors("c") == set()

    def test_subgraph(self):
        dag = chain("a", "b", "c")
        sub = dag.subgraph({"a", "b"})
        assert set(sub.nodes) == {"a", "b"}
        assert sub.successors("a") == {"b"}

    def test_reversed(self):
        dag = chain("a", "b")
        rev = dag.reversed()
        assert rev.successors("b") == {"a"}

    def test_nodes_is_a_live_view(self):
        dag = chain("a", "b")
        view = dag.nodes
        assert "a" in view and len(view) == 2
        dag.add_node("c")
        assert "c" in view  # no copy: reflects later mutations
        assert sorted(view) == ["a", "b", "c"]

    def test_adjacency_views_are_not_copies(self):
        dag = chain("a", "b")
        succ = dag.successors("a")
        dag.add_edge("a", "c")
        assert succ == {"b", "c"}

    def test_missing_node_views_are_empty_and_shared(self):
        dag = Dag()
        assert dag.successors("ghost") == frozenset()
        assert dag.predecessors("ghost") == frozenset()
        assert len(dag.successors("ghost")) == 0

    def test_iter_edges_and_count(self):
        dag = chain("a", "b", "c")
        assert sorted(dag.iter_edges()) == [("a", "b"), ("b", "c")]
        assert dag.edge_count() == 2

    def test_in_degrees(self):
        dag = Dag()
        dag.add_edge("a", "c")
        dag.add_edge("b", "c")
        assert dag.in_degrees() == {"a": 0, "b": 0, "c": 2}

    def test_copies_are_independent(self):
        dag = chain("a", "b")
        cp = dag.copy()
        cp.add_edge("b", "c")
        assert "c" not in dag
        assert dag.successors("b") == set()


class TestTopologicalOrder:
    def test_respects_edges(self):
        dag = Dag()
        dag.add_edge("a", "c")
        dag.add_edge("b", "c")
        dag.add_edge("c", "d")
        order = dag.topological_order()
        assert order.index("a") < order.index("c") < order.index("d")
        assert order.index("b") < order.index("c")

    def test_deterministic_tie_break(self):
        dag = Dag()
        for n in ["z", "m", "a"]:
            dag.add_node(n)
        assert dag.topological_order() == ["a", "m", "z"]

    def test_cycle_raises(self):
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        dag.add_edge("c", "a")
        with pytest.raises(CycleError):
            dag.topological_order()

    def test_find_cycle_returns_loop(self):
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("b", "a")
        cycle = dag.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_acyclic_has_no_cycle(self):
        assert chain("a", "b", "c").find_cycle() is None

    def test_heap_order_matches_sorted_kahn_reference(self):
        """The heap-based sort must reproduce the classic sorted-ready
        Kahn's ordering exactly on arbitrary DAGs."""

        def reference_topo(dag):
            indeg = {n: dag.in_degree(n) for n in dag.nodes}
            ready = sorted(n for n, d in indeg.items() if d == 0)
            out = []
            while ready:
                node = ready.pop(0)
                out.append(node)
                for s in sorted(dag.successors(node)):
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        ready.append(s)
                ready.sort()
            return out

        rng = random.Random(20240806)
        for trial in range(25):
            n = rng.randint(2, 60)
            dag = Dag()
            for i in range(n):
                dag.add_node(f"n{i:02d}")
            for j in range(1, n):
                for dep in rng.sample(range(j), min(j, rng.randint(0, 3))):
                    dag.add_edge(f"n{dep:02d}", f"n{j:02d}")
            assert dag.topological_order() == reference_topo(dag)

    def test_topo_custom_key_breaks_ties(self):
        dag = Dag()
        for n in ["a1", "b2", "c0"]:
            dag.add_node(n)
        order = dag.topological_order(key=lambda n: n[::-1])
        assert order == ["c0", "a1", "b2"]

    def test_topo_stable_across_runs(self):
        dag = Dag()
        dag.add_edge("root", "m")
        dag.add_edge("root", "a")
        dag.add_edge("a", "z")
        dag.add_edge("m", "z")
        assert dag.topological_order() == dag.topological_order()
        assert dag.topological_order() == ["root", "a", "m", "z"]


class TestReachability:
    def test_ancestors_descendants(self):
        dag = Dag()
        dag.add_edge("vpc", "subnet")
        dag.add_edge("subnet", "nic")
        dag.add_edge("nic", "vm")
        dag.add_edge("sg", "nic")
        assert dag.ancestors("vm") == {"vpc", "subnet", "nic", "sg"}
        assert dag.descendants("vpc") == {"subnet", "nic", "vm"}
        assert dag.descendants("vm") == set()


class TestWeightedAnalyses:
    def make_weighted(self):
        # a(1) -> b(10) -> d(1);  a -> c(2) -> d
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        dag.add_edge("c", "d")
        weights = {"a": 1.0, "b": 10.0, "c": 2.0, "d": 1.0}
        return dag, weights

    def test_longest_path_to_sink(self):
        dag, w = self.make_weighted()
        dist = dag.longest_path_to_sink(lambda n: w[n])
        assert dist["d"] == 1.0
        assert dist["b"] == 11.0
        assert dist["c"] == 3.0
        assert dist["a"] == 12.0

    def test_critical_path(self):
        dag, w = self.make_weighted()
        length, path = dag.critical_path(lambda n: w[n])
        assert length == 12.0
        assert path == ["a", "b", "d"]

    def test_empty_graph(self):
        assert Dag().critical_path(lambda n: 1.0) == (0.0, [])

    def test_width_profile(self):
        dag = Dag()
        dag.add_edge("root", "x1")
        dag.add_edge("root", "x2")
        dag.add_edge("root", "x3")
        dag.add_edge("x1", "sink")
        assert dag.width_profile() == [1, 3, 1]
        assert dag.max_width() == 3
