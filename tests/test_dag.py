"""Generic DAG tests."""

import pytest

from repro.graph.dag import CycleError, Dag


def chain(*nodes):
    dag = Dag()
    for a, b in zip(nodes, nodes[1:]):
        dag.add_edge(a, b)
    return dag


class TestStructure:
    def test_add_and_query(self):
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        assert dag.successors("a") == {"b", "c"}
        assert dag.predecessors("b") == {"a"}
        assert set(dag.roots()) == {"a"}
        assert set(dag.leaves()) == {"b", "c"}

    def test_self_edge_rejected(self):
        with pytest.raises(CycleError):
            Dag().add_edge("a", "a")

    def test_remove_node(self):
        dag = chain("a", "b", "c")
        dag.remove_node("b")
        assert "b" not in dag
        assert dag.successors("a") == set()
        assert dag.predecessors("c") == set()

    def test_subgraph(self):
        dag = chain("a", "b", "c")
        sub = dag.subgraph({"a", "b"})
        assert set(sub.nodes) == {"a", "b"}
        assert sub.successors("a") == {"b"}

    def test_reversed(self):
        dag = chain("a", "b")
        rev = dag.reversed()
        assert rev.successors("b") == {"a"}


class TestTopologicalOrder:
    def test_respects_edges(self):
        dag = Dag()
        dag.add_edge("a", "c")
        dag.add_edge("b", "c")
        dag.add_edge("c", "d")
        order = dag.topological_order()
        assert order.index("a") < order.index("c") < order.index("d")
        assert order.index("b") < order.index("c")

    def test_deterministic_tie_break(self):
        dag = Dag()
        for n in ["z", "m", "a"]:
            dag.add_node(n)
        assert dag.topological_order() == ["a", "m", "z"]

    def test_cycle_raises(self):
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        dag.add_edge("c", "a")
        with pytest.raises(CycleError):
            dag.topological_order()

    def test_find_cycle_returns_loop(self):
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("b", "a")
        cycle = dag.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_acyclic_has_no_cycle(self):
        assert chain("a", "b", "c").find_cycle() is None


class TestReachability:
    def test_ancestors_descendants(self):
        dag = Dag()
        dag.add_edge("vpc", "subnet")
        dag.add_edge("subnet", "nic")
        dag.add_edge("nic", "vm")
        dag.add_edge("sg", "nic")
        assert dag.ancestors("vm") == {"vpc", "subnet", "nic", "sg"}
        assert dag.descendants("vpc") == {"subnet", "nic", "vm"}
        assert dag.descendants("vm") == set()


class TestWeightedAnalyses:
    def make_weighted(self):
        # a(1) -> b(10) -> d(1);  a -> c(2) -> d
        dag = Dag()
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        dag.add_edge("c", "d")
        weights = {"a": 1.0, "b": 10.0, "c": 2.0, "d": 1.0}
        return dag, weights

    def test_longest_path_to_sink(self):
        dag, w = self.make_weighted()
        dist = dag.longest_path_to_sink(lambda n: w[n])
        assert dist["d"] == 1.0
        assert dist["b"] == 11.0
        assert dist["c"] == 3.0
        assert dist["a"] == 12.0

    def test_critical_path(self):
        dag, w = self.make_weighted()
        length, path = dag.critical_path(lambda n: w[n])
        assert length == 12.0
        assert path == ["a", "b", "d"]

    def test_empty_graph(self):
        assert Dag().critical_path(lambda n: 1.0) == (0.0, [])

    def test_width_profile(self):
        dag = Dag()
        dag.add_edge("root", "x1")
        dag.add_edge("root", "x2")
        dag.add_edge("root", "x3")
        dag.add_edge("x1", "sink")
        assert dag.width_profile() == [1, 3, 1]
        assert dag.max_width() == 3
