"""Sharded apply: partitioning, equivalence, fencing, incremental replan.

The sharding layer must be *invisible* in every observable except wall
time: the interleaved sharded executor makes byte-identical scheduling
decisions to the single executor it mirrors (same op stream, same sim
makespan, same final state), the partitioner covers the plan exactly
(every change in one shard, every edge intra-shard or declared
cross-shard), pool mode is deterministic and wiring-equivalent, and
incremental re-planning yields the same plan the full pipeline would.
"""

import hashlib
import json
import re

import pytest

from repro import perf
from repro.cloud import CloudGateway, HealthMonitor, BreakerPolicy
from repro.cloud.faults import OutageSpec
from repro.core.engine import CloudlessEngine
from repro.deploy import (
    BestEffortExecutor,
    CompletionLedger,
    CriticalPathExecutor,
    FencingError,
    IncrementalSession,
    SequentialExecutor,
    ShardedExecutor,
)
from repro.deploy.incremental import read_data_sources
from repro.graph import Planner, build_graph, partition_plan
from repro.graph.critical_path import clear_analysis_cache
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import (
    microservices,
    multi_cloud,
    scale_estate,
    scale_estate_sharded,
    two_region_estate,
    web_tier,
)

STRATEGIES = {
    "sequential": SequentialExecutor,
    "best-effort": BestEffortExecutor,
    "critical-path": CriticalPathExecutor,
}


def make_plan(source, seed=0, synthetic=0, state=None):
    clear_analysis_cache()
    gateway = CloudGateway.simulated(seed=seed, synthetic=synthetic)
    graph = build_graph(Configuration.parse(source))
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = state if state is not None else StateDocument()
    data = read_data_sources(gateway, graph, state)
    return gateway, planner.plan(graph, state, data_values=data)


def ops_fingerprint(result):
    ops = [
        [
            op.change_id,
            op.operation,
            round(op.t_submit, 6),
            round(op.t_complete, 6),
            op.ok,
            op.error_code,
            op.attempt,
        ]
        for op in result.operations
    ]
    payload = {
        "succeeded": result.succeeded,
        "skipped": sorted(result.skipped),
        "failed": sorted(result.failed),
        "makespan_s": round(result.makespan_s, 6),
        "ops": ops,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def scrubbed_estate(gateway, state):
    """Provider records keyed by (type, name) with minted ids masked --
    the id-permutation-tolerant wiring fingerprint pool mode must hold."""
    identity = (
        "id", "arn", "private_ip", "public_ip", "ip_address",
        "fqdn", "endpoint", "dns_name", "resource_uri",
    )

    def scrub(value):
        if isinstance(value, str):
            return re.sub(r"\b[a-z0-9]+-[a-z]+-[0-9a-f]{8}\b|\b[a-z]+-[0-9a-f]{8}\b", "<id>", value)
        if isinstance(value, list):
            return [scrub(v) for v in value]
        if isinstance(value, dict):
            return {k: scrub(v) for k, v in value.items()}
        return value

    cloud = {}
    for record in gateway.all_records():
        attrs = {k: scrub(v) for k, v in record.attrs.items() if k not in identity}
        cloud[(record.type, record.name)] = (record.region, attrs)
    return cloud, sorted(str(a) for a in state.addresses())


# -- partitioner invariants ---------------------------------------------------


class TestPartitioner:
    @pytest.fixture(params=["multi_cloud", "two_region", "synthetic"])
    def planned(self, request):
        if request.param == "multi_cloud":
            gateway, plan = make_plan(multi_cloud(), seed=3)
        elif request.param == "two_region":
            gateway, plan = make_plan(two_region_estate(40), seed=3)
        else:
            gateway, plan = make_plan(
                scale_estate_sharded(
                    140, providers=2, cross_link_every=3
                ),
                seed=3,
                synthetic=2,
            )
        return gateway, plan

    def test_exact_cover(self, planned):
        gateway, plan = planned
        partition = partition_plan(plan, gateway)
        dag = plan.execution_dag()
        seen = set()
        for shard in partition.shards.values():
            for cid in shard.change_ids:
                assert cid not in seen, f"{cid} in two shards"
                seen.add(cid)
        assert seen == set(dag.nodes)
        assert set(partition.shard_of) == seen

    def test_every_edge_intra_shard_or_cross(self, planned):
        gateway, plan = planned
        partition = partition_plan(plan, gateway)
        dag = plan.execution_dag()
        cross = set(partition.cross_edges)
        for src in dag.nodes:
            for dst in dag.successors(src):
                if partition.shard_of[src] == partition.shard_of[dst]:
                    assert (src, dst) not in cross
                else:
                    assert (src, dst) in cross, f"undeclared cross edge {src}->{dst}"
        assert partition.cross_edge_count() == len(cross)

    def test_deterministic(self, planned):
        gateway, plan = planned
        first = partition_plan(plan, gateway)
        second = partition_plan(plan, gateway)
        assert sorted(first.shards) == sorted(second.shards)
        for sid in first.shards:
            assert first.shards[sid].change_ids == second.shards[sid].change_ids
        assert first.shard_of == second.shard_of

    def test_shard_partition_key_is_provider_region(self, planned):
        gateway, plan = planned
        partition = partition_plan(plan, gateway)
        for shard in partition.shards.values():
            assert shard.provider in gateway.planes
            found = partition.shards_for_partition(shard.provider, shard.region)
            assert shard.id in found

    def test_max_shards_caps_count(self, planned):
        gateway, plan = planned
        unbounded = partition_plan(plan, gateway, split_components=True)
        capped = partition_plan(
            plan, gateway, split_components=True, max_shards=2
        )
        assert len(capped.shards) <= 2
        assert len(capped.shards) <= len(unbounded.shards)
        # cover is preserved under the cap
        covered = set()
        for shard in capped.shards.values():
            covered |= set(shard.change_ids)
        assert covered == set(plan.execution_dag().nodes)

    def test_pool_waves_topological(self, planned):
        gateway, plan = planned
        partition = partition_plan(plan, gateway)
        waves = partition.pool_waves()
        wave_of = {}
        for i, wave in enumerate(waves):
            for group in wave:
                for sid in group:
                    wave_of[sid] = i
        assert set(wave_of) == set(partition.shards)
        for src, dst in partition.cross_edges:
            assert (
                wave_of[partition.shard_of[src]]
                <= wave_of[partition.shard_of[dst]]
            )


# -- interleaved equivalence --------------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    @pytest.mark.parametrize(
        "workload",
        ["web", "micro", "multi", "two_region"],
    )
    def test_byte_identical_to_single_executor(self, strategy, workload):
        source = {
            "web": web_tier(),
            "micro": microservices(),
            "multi": multi_cloud(),
            "two_region": two_region_estate(40),
        }[workload]
        gateway1, plan1 = make_plan(source, seed=11)
        single = STRATEGIES[strategy](gateway1).apply(plan1)
        gateway2, plan2 = make_plan(source, seed=11)
        sharded = ShardedExecutor(gateway2, strategy=strategy).apply(plan2)
        assert sharded.mode == "interleaved"
        assert sharded.ok == single.ok
        assert sharded.makespan_s == single.makespan_s
        assert ops_fingerprint(sharded) == ops_fingerprint(single)
        assert sharded.state.to_json() == single.state.to_json()

    def test_synthetic_estate_equivalence(self):
        source = scale_estate_sharded(210, providers=3, cross_link_every=4)
        gateway1, plan1 = make_plan(source, seed=5, synthetic=3)
        single = CriticalPathExecutor(gateway1).apply(plan1)
        gateway2, plan2 = make_plan(source, seed=5, synthetic=3)
        sharded = ShardedExecutor(gateway2).apply(plan2)
        assert single.ok and sharded.ok
        assert sharded.makespan_s == single.makespan_s
        assert sharded.state.to_json() == single.state.to_json()
        assert sharded.shard_count >= 3

    def test_shard_summaries_account_for_everything(self):
        gateway, plan = make_plan(multi_cloud(), seed=7)
        result = ShardedExecutor(gateway).apply(plan)
        assert result.ok
        total = sum(s.succeeded for s in result.shard_summaries.values())
        assert total == len(result.succeeded)
        assert sum(
            s.changes for s in result.shard_summaries.values()
        ) == len(plan.execution_dag().nodes)


# -- completion ledger fencing ------------------------------------------------


class TestCompletionLedger:
    def test_grant_publish_roundtrip(self):
        ledger = CompletionLedger()
        token = ledger.grant("aws/us-east-1")
        ledger.publish("aws/us-east-1", token, "aws_vpc.a")
        assert ledger.completed("aws_vpc.a")
        assert ledger.published_by("aws/us-east-1") == 1
        assert len(ledger) == 1

    def test_stale_token_fenced(self):
        ledger = CompletionLedger()
        stale = ledger.grant("s")
        fresh = ledger.grant("s")
        with pytest.raises(FencingError):
            ledger.publish("s", stale, "aws_vpc.zombie")
        assert ledger.rejected == 1
        assert not ledger.completed("aws_vpc.zombie")
        ledger.publish("s", fresh, "aws_vpc.live")
        assert ledger.completed("aws_vpc.live")

    def test_duplicate_publish_idempotent(self):
        ledger = CompletionLedger()
        token = ledger.grant("s")
        ledger.publish("s", token, "aws_vpc.a")
        ledger.publish("s", token, "aws_vpc.a")
        assert ledger.published_by("s") == 1

    def test_never_granted_is_fenced(self):
        ledger = CompletionLedger()
        with pytest.raises(FencingError):
            ledger.publish("ghost", 1, "aws_vpc.a")


# -- pool mode ----------------------------------------------------------------


class TestPoolMode:
    SOURCE = None

    @classmethod
    def source(cls):
        if cls.SOURCE is None:
            cls.SOURCE = scale_estate_sharded(140, providers=2)
        return cls.SOURCE

    def run_pool(self):
        gateway, plan = make_plan(self.source(), seed=9, synthetic=2)
        executor = ShardedExecutor(gateway, workers=4)
        return gateway, executor.apply(plan)

    def test_pool_mode_selected_and_ok(self):
        _, result = self.run_pool()
        assert result.mode == "pool"
        assert result.ok
        assert result.waves >= 1

    def test_pool_deterministic_run_to_run(self):
        gateway1, result1 = self.run_pool()
        gateway2, result2 = self.run_pool()
        assert result1.state.to_json() == result2.state.to_json()
        assert ops_fingerprint(result1) == ops_fingerprint(result2)

    def test_pool_wiring_equivalent_to_single(self):
        gateway1, plan1 = make_plan(self.source(), seed=9, synthetic=2)
        single = CriticalPathExecutor(gateway1).apply(plan1)
        gateway2, result = self.run_pool()
        assert single.ok and result.ok
        assert scrubbed_estate(gateway2, result.state) == scrubbed_estate(
            gateway1, single.state
        )

    def test_pool_falls_back_when_health_gated(self):
        gateway, plan = make_plan(self.source(), seed=9, synthetic=2)
        executor = ShardedExecutor(
            gateway, workers=4, health=HealthMonitor(policy=BreakerPolicy())
        )
        result = executor.apply(plan)
        assert result.mode == "interleaved"
        assert result.ok

    def test_pool_content_hash_matches_interleaved(self):
        """BENCH_shard pool regression: identity-keyed id minting makes
        the canonical state hash schedule-independent, so pool workers
        and the interleaved scheduler converge to the same estate."""
        gateway1, plan1 = make_plan(self.source(), seed=9, synthetic=2)
        interleaved = ShardedExecutor(gateway1, workers=1).apply(plan1)
        _, pool = self.run_pool()
        assert interleaved.ok and pool.ok
        assert (
            pool.state.content_hash() == interleaved.state.content_hash()
        )


# -- overlapped pool scheduling ----------------------------------------------


class TestOverlappedPool:
    """Ready-frontier dispatch vs barrier waves: same final estate,
    never a worse simulated makespan, strictly better on a staggered
    provider DAG (a fast unit's successor must not wait on the slow
    units sharing its wave)."""

    @staticmethod
    def staggered_source():
        # syn1 depends on the small syn0; syn2/syn3 are independent and
        # big -- a barrier holds syn1 hostage to syn2/syn3's wave
        return scale_estate_sharded(
            420,
            providers=4,
            cross_link_every=10,
            provider_weights=[1, 3, 3, 3],
            cross_links=[(1, 0)],
        )

    @classmethod
    def run_mode(cls, workers, overlap):
        gateway, plan = make_plan(cls.staggered_source(), seed=9, synthetic=4)
        executor = ShardedExecutor(gateway, workers=workers, overlap=overlap)
        return executor.apply(plan)

    def test_overlapped_flag_and_equivalence(self):
        interleaved = self.run_mode(1, True)
        barrier = self.run_mode(4, False)
        overlapped = self.run_mode(4, True)
        assert interleaved.ok and barrier.ok and overlapped.ok
        assert not barrier.overlapped
        assert overlapped.overlapped and overlapped.mode == "pool"
        hashes = {
            r.state.content_hash()
            for r in (interleaved, barrier, overlapped)
        }
        assert len(hashes) == 1

    def test_overlapped_beats_barrier_makespan_when_staggered(self):
        barrier = self.run_mode(4, False)
        overlapped = self.run_mode(4, True)
        assert overlapped.makespan_s < barrier.makespan_s

    def test_overlapped_deterministic_run_to_run(self):
        r1 = self.run_mode(4, True)
        r2 = self.run_mode(4, True)
        assert r1.state.to_json() == r2.state.to_json()
        assert ops_fingerprint(r1) == ops_fingerprint(r2)

    def test_chain_workload_no_worse_than_barrier(self):
        source = scale_estate_sharded(300, providers=3, cross_link_every=10)

        def run(overlap):
            gateway, plan = make_plan(source, seed=9, synthetic=3)
            return ShardedExecutor(
                gateway, workers=3, overlap=overlap
            ).apply(plan)

        barrier, overlapped = run(False), run(True)
        assert barrier.ok and overlapped.ok
        assert overlapped.makespan_s <= barrier.makespan_s
        assert (
            overlapped.state.content_hash() == barrier.state.content_hash()
        )


# -- quarantine composition (PR 5) -------------------------------------------


class TestDarkShard:
    def test_dark_region_stalls_only_its_shard(self):
        outage = OutageSpec(start_s=0.0, end_s=50000.0, region="westus2")
        source = two_region_estate(42)

        def degraded(factory):
            gateway, plan = make_plan(source, seed=13)
            gateway.inject_outage("azure", outage)
            health = HealthMonitor(policy=BreakerPolicy())
            return factory(gateway, health).apply(plan)

        sharded = degraded(
            lambda gw, h: ShardedExecutor(gw, health=h)
        )
        single = degraded(
            lambda gw, h: CriticalPathExecutor(gw, health=h)
        )
        assert sharded.partial and not sharded.ok
        assert set(sharded.quarantined) == set(single.quarantined)
        for quarantine in sharded.quarantined.values():
            assert quarantine.partition == "azure/westus2"
        assert sorted(sharded.succeeded) == sorted(single.succeeded)
        # the dark shard's summary carries the parked work
        parked = {
            sid: s.quarantined
            for sid, s in sharded.shard_summaries.items()
            if s.quarantined
        }
        assert parked and all("azure" in sid for sid in parked)


# -- incremental re-planning --------------------------------------------------


def _decl_block(source, rtype, name):
    """Extract one resource block from generated source text."""
    pattern = re.compile(
        r'resource "%s" "%s" \{.*?\n\}' % (re.escape(rtype), re.escape(name)),
        re.S,
    )
    match = pattern.search(source)
    assert match, f"{rtype}.{name} not in source"
    return match.group(0)


class TestIncrementalSession:
    def converge(self, source, seed=21):
        gateway, plan = make_plan(source, seed=seed)
        result = CriticalPathExecutor(gateway).apply(plan)
        assert result.ok
        return gateway, result.state

    def test_noop_patch_plans_nothing(self):
        source = scale_estate(70)
        gateway, state = self.converge(source)
        session = IncrementalSession(gateway, source=source)
        patch = _decl_block(source, "aws_vpc", "scale_g0")
        result = session.replan(patch, state)
        assert result.mode == "incremental"
        assert result.dirty == []
        assert result.scope == set()
        assert not result.plan.actionable()

    def test_attr_edit_replans_impact_scope_only(self):
        source = scale_estate(70)
        gateway, state = self.converge(source)
        session = IncrementalSession(gateway, source=source)
        block = _decl_block(source, "aws_virtual_machine", "scale_3_vm")
        patch = block.replace('service = "scale-3"', 'service = "scale-3b"')
        assert patch != block
        result = session.replan(patch, state)
        assert result.mode == "incremental"
        assert result.dirty == [("managed", "aws_virtual_machine", "scale_3_vm")]
        assert result.scope is not None
        assert 0 < result.scope_size < len(session.graph.dag.nodes)
        actions = {
            c.id: c.action.name
            for c in result.plan.actionable()
        }
        assert actions and all(
            "scale_3" in cid or "scale-3" in cid for cid in actions
        )

    def test_incremental_plan_matches_full_pipeline(self):
        source = scale_estate(70)
        gateway, state = self.converge(source)
        block = _decl_block(source, "aws_virtual_machine", "scale_3_vm")
        edited_block = block.replace(
            'service = "scale-3"', 'service = "scale-3b"'
        )
        session = IncrementalSession(gateway, source=source)
        inc = session.replan(edited_block, state)

        full_source = source.replace(block, edited_block)
        graph = build_graph(Configuration.parse(full_source))
        planner = session.planner
        data = read_data_sources(gateway, graph, state)
        full = planner.plan(graph, state.copy(), data_values=data)

        def plan_signature(plan):
            return sorted(
                (c.id, c.action.name, sorted(d.name for d in c.diffs))
                for c in plan.actionable()
            )

        assert plan_signature(inc.plan) == plan_signature(full)

    def test_add_and_remove_decls(self):
        source = scale_estate(70)
        gateway, state = self.converge(source)
        session = IncrementalSession(gateway, source=source)
        patch = """
resource "aws_dns_record" "extra" {
  name  = "extra"
  zone  = "scale.example.com"
  value = aws_load_balancer.scale_2_lb.dns_name
  ttl   = 60
}
"""
        result = session.replan(patch, state)
        assert result.mode == "incremental"
        creates = [
            c for c in result.plan.actionable()
            if c.action.name == "CREATE"
        ]
        assert [c.id for c in creates] == ["aws_dns_record.extra"]

        removal = session.replan(
            "",
            state,
            remove=(
                "aws_dns_record.scale_4_dns",
                "aws_load_balancer.scale_4_lb",
            ),
        )
        assert removal.mode == "incremental"
        deletes = sorted(
            c.id
            for c in removal.plan.actionable()
            if c.action.name == "DELETE"
        )
        assert deletes == [
            "aws_dns_record.scale_4_dns",
            "aws_load_balancer.scale_4_lb",
        ]

    def test_unsupported_patch_falls_back_to_rebuild(self):
        source = scale_estate(70)
        gateway, state = self.converge(source)
        session = IncrementalSession(gateway, source=source)
        patch = """
locals {
  extra_tag = "x"
}
"""
        result = session.replan(patch, state)
        assert result.mode == "rebuild"
        assert session.rebuilds == 1
        # the session still plans correctly after the rebuild
        follow_up = session.replan(
            _decl_block(source, "aws_vpc", "scale_g0"), state
        )
        assert follow_up.mode == "incremental"


# -- perf counters ------------------------------------------------------------


class TestShardCounters:
    def test_sharded_apply_emits_counters(self):
        perf.PERF.enable()
        perf.PERF.reset()
        try:
            gateway, plan = make_plan(multi_cloud(), seed=17)
            result = ShardedExecutor(gateway).apply(plan)
            assert result.ok
            snap = perf.PERF.snapshot()
            counters = snap["counters"]
            assert counters["shard.shards"] >= 2
            assert counters["shard.dispatches"] == len(result.succeeded)
            assert "shard.cross_edges" in counters
            assert "shard.merge_ms" in snap["timers"]
        finally:
            perf.PERF.reset()
            perf.PERF.disable()

    def test_incremental_replan_counts_dirty_nodes(self):
        perf.PERF.enable()
        perf.PERF.reset()
        try:
            source = scale_estate(70)
            clear_analysis_cache()
            gateway = CloudGateway.simulated(seed=21)
            session = IncrementalSession(gateway, source=source)
            state = StateDocument()
            block = _decl_block(source, "aws_virtual_machine", "scale_3_vm")
            patch = block.replace(
                'service = "scale-3"', 'service = "scale-3b"'
            )
            result = session.replan(patch, state)
            counters = perf.PERF.snapshot()["counters"]
            assert (
                counters["shard.dirty_nodes_replanned"]
                == result.scope_size
            )
        finally:
            perf.PERF.reset()
            perf.PERF.disable()


# -- engine / CLI surface -----------------------------------------------------


class TestEngineSharded:
    def test_engine_sharded_executor_equivalent(self):
        source = multi_cloud()
        base = CloudlessEngine(seed=19)
        base_result = base.apply(source)
        assert base_result.ok
        sharded = CloudlessEngine(seed=19, executor="sharded")
        sharded_result = sharded.apply(source)
        assert sharded_result.ok
        assert (
            sharded_result.apply.makespan_s == base_result.apply.makespan_s
        )
        assert sharded.state.to_json() == base.state.to_json()

    def test_cli_parser_accepts_shard_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["apply", "--shards", "4", "--shard-workers", "2"]
        )
        assert args.shards == 4
        assert args.shard_workers == 2
