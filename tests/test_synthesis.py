"""Synthesis: type-guided vs noisy generation, retrieval grounding (E8)."""

import pytest

from repro.core import CloudlessEngine
from repro.lang import Configuration
from repro.synthesis import (
    ErrorRates,
    NoisyGenerator,
    RetrievalCorpus,
    STANDARD_TASKS,
    SynthesisTask,
    TypeGuidedSynthesizer,
    random_task,
)
from repro.synthesis.tasks import ResourceRequest
from repro.validate import LEVEL_RULES, validate
from repro.workloads import web_tier


class TestTypeGuidedSynthesis:
    @pytest.mark.parametrize("task", STANDARD_TASKS, ids=lambda t: t.name)
    def test_every_standard_task_validates(self, task):
        result = TypeGuidedSynthesizer().synthesize(task)
        report = validate(result.sources, level=LEVEL_RULES)
        assert report.ok, f"{task.name}: {report.first_error()}"

    @pytest.mark.parametrize("task", STANDARD_TASKS[:4], ids=lambda t: t.name)
    def test_synthesized_configs_deploy(self, task):
        result = TypeGuidedSynthesizer().synthesize(task)
        engine = CloudlessEngine(seed=80)
        outcome = engine.apply(result.sources["main.clc"])
        assert outcome.ok, outcome.apply.failed if outcome.apply else outcome

    def test_dependency_closure_materialized(self):
        task = SynthesisTask(
            name="t",
            provider="aws",
            requests=[ResourceRequest("aws_virtual_machine")],
        )
        result = TypeGuidedSynthesizer().synthesize(task)
        config = Configuration.parse(result.sources)
        types = config.resource_types()
        # a VM pulls in NIC -> subnet -> VPC
        assert {"aws_virtual_machine", "aws_network_interface", "aws_subnet", "aws_vpc"} <= types

    def test_dedicated_nics_per_vm(self):
        task = SynthesisTask(
            name="t",
            provider="aws",
            requests=[ResourceRequest("aws_virtual_machine", count=3)],
        )
        result = TypeGuidedSynthesizer().synthesize(task)
        config = Configuration.parse(result.sources)
        nics = [d for d in config.managed_resources() if d.type == "aws_network_interface"]
        assert len(nics) == 3

    def test_shared_substrate_reused(self):
        task = SynthesisTask(
            name="t",
            provider="aws",
            requests=[ResourceRequest("aws_virtual_machine", count=3)],
        )
        result = TypeGuidedSynthesizer().synthesize(task)
        config = Configuration.parse(result.sources)
        vpcs = [d for d in config.managed_resources() if d.type == "aws_vpc"]
        assert len(vpcs) == 1

    def test_pinned_attributes_respected(self):
        task = SynthesisTask(
            name="t",
            provider="aws",
            requests=[
                ResourceRequest("aws_database_instance", pinned={"engine": "mysql"})
            ],
        )
        result = TypeGuidedSynthesizer().synthesize(task)
        assert 'engine' in result.main_source and 'mysql' in result.main_source

    def test_region_pinning(self):
        task = SynthesisTask(
            name="t",
            provider="azure",
            requests=[ResourceRequest("azure_storage_account")],
            region="westeurope",
        )
        result = TypeGuidedSynthesizer().synthesize(task)
        assert '"westeurope"' in result.main_source


class TestNoisyGenerator:
    def validity_rate(self, generator, tasks):
        ok = 0
        for task in tasks:
            result = generator.generate(task)
            if validate(result.sources, level=LEVEL_RULES).ok:
                ok += 1
        return ok / len(tasks)

    def sweep_tasks(self, n=30):
        import random

        rng = random.Random(99)
        return [random_task(rng, i) for i in range(n)]

    def test_injected_errors_are_recorded(self):
        generator = NoisyGenerator(
            rates=ErrorRates(hallucinate_attr=1.0), seed=1
        )
        result = generator.generate(STANDARD_TASKS[0])
        assert result.injected_errors

    def test_noisy_output_frequently_invalid(self):
        generator = NoisyGenerator(seed=2)
        rate = self.validity_rate(generator, self.sweep_tasks())
        assert rate < 0.8  # "frequently generate invalid IaC code"

    def test_retrieval_improves_validity(self):
        tasks = self.sweep_tasks()
        base = self.validity_rate(NoisyGenerator(seed=3), tasks)
        corpus = RetrievalCorpus().fit(
            [Configuration.parse(web_tier(name=f"w{i}")) for i in range(3)]
        )
        grounded = self.validity_rate(
            NoisyGenerator(seed=3, retrieval=corpus), tasks
        )
        assert grounded > base

    def test_type_guided_beats_noisy(self):
        tasks = self.sweep_tasks()
        noisy = self.validity_rate(NoisyGenerator(seed=4), tasks)
        guided = 0
        synthesizer = TypeGuidedSynthesizer()
        for task in tasks:
            if validate(synthesizer.synthesize(task).sources, level=LEVEL_RULES).ok:
                guided += 1
        assert guided / len(tasks) == 1.0
        assert noisy < 1.0

    def test_zero_rates_is_always_valid(self):
        generator = NoisyGenerator(rates=ErrorRates(0, 0, 0, 0, 0, 0, 0), seed=5)
        for task in STANDARD_TASKS:
            assert validate(generator.generate(task).sources, level=LEVEL_RULES).ok


class TestRetrievalCorpus:
    def test_learns_dominant_conventions(self):
        sources = [
            web_tier(name=f"w{i}").replace('size    = "small"', 'size    = "medium"')
            for i in range(3)
        ]
        corpus = RetrievalCorpus().fit([Configuration.parse(s) for s in sources])
        conventions = corpus.conventions_for("aws_virtual_machine")
        assert conventions.get("size") == "medium"

    def test_synthesizer_applies_conventions(self):
        sources = [
            web_tier(name=f"w{i}").replace('size    = "small"', 'size    = "medium"')
            for i in range(3)
        ]
        corpus = RetrievalCorpus().fit([Configuration.parse(s) for s in sources])
        task = SynthesisTask(
            name="t",
            provider="aws",
            requests=[ResourceRequest("aws_virtual_machine")],
        )
        result = TypeGuidedSynthesizer(corpus=corpus).synthesize(task)
        assert any("size" in c for c in result.conventions_applied)
        report = validate(result.sources, level=LEVEL_RULES)
        assert report.ok

    def test_minority_values_not_promoted(self):
        sources = [
            web_tier(name="w0"),
            web_tier(name="w1").replace('size    = "small"', 'size    = "large"'),
        ]
        corpus = RetrievalCorpus(min_dominance=0.9).fit(
            [Configuration.parse(s) for s in sources]
        )
        # web VMs are small, app VMs medium, and we flipped one -- no
        # 90%-dominant value exists
        assert "size" not in corpus.conventions_for("aws_virtual_machine")
