"""Multi-tenant control-plane service: admission, isolation, degradation.

Exercises the service tier end to end: typed rejections under every
shed path, per-tenant estate isolation (byte-for-byte vs single-tenant
baselines), weighted-fair scheduling, the degradation ladder, circuit
breakers, lease-fenced zombie sessions, and the kill/preempt/resume
crash cycle.
"""

import asyncio
import math

import pytest

from repro.chaos.invariants import canonical_state
from repro.core.engine import CloudlessEngine
from repro.service import (
    MODE_BROWNOUT,
    MODE_NORMAL,
    MODE_READ_ONLY,
    REJECT_BROWNOUT,
    REJECT_CIRCUIT_OPEN,
    REJECT_DEADLINE,
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    REJECT_READ_ONLY,
    REJECT_STALE_SESSION,
    REJECT_TENANT_QUOTA,
    REJECT_UNKNOWN_OP,
    STATUS_OF,
    CircuitBreaker,
    ControlPlaneService,
    DegradationLadder,
    ServicePolicy,
    SessionFencedError,
    TenantQuota,
    TenantSession,
    WeightedFairQueue,
)
from repro.service.core import _tenant_seed
from repro.workloads import web_tier

SRC = web_tier(web_vms=1, app_vms=0, with_lb=False, with_db=False)
BIGGER = web_tier(web_vms=2, app_vms=1, with_lb=True, with_db=False)


def run(coro):
    return asyncio.run(coro)


def make_service(root, **overrides) -> ControlPlaneService:
    policy = ServicePolicy(apply_pool=2, **overrides)
    return ControlPlaneService(str(root), policy=policy)


class TestRequestLifecycle:
    def test_apply_then_drift_then_stats(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            apply = await svc.request("a", "apply", payload={"sources": SRC})
            drift = await svc.request("a", "drift")
            stats = await svc.request("a", "stats")
            await svc.stop()
            return apply, drift, stats

        apply, drift, stats = run(main())
        assert apply.ok and apply.body["ok"]
        assert drift.ok and drift.body["findings"] == 0
        assert stats.ok and stats.body["resources"] > 0

    def test_unknown_op_is_typed_400(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            response = await svc.request("a", "frobnicate")
            await svc.stop()
            return response

        response = run(main())
        assert response.status == STATUS_OF[REJECT_UNKNOWN_OP] == 400
        assert response.reason == REJECT_UNKNOWN_OP

    def test_submit_before_start_sheds(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            return await (await svc.submit("a", "apply",
                                           payload={"sources": SRC}))

        response = run(main())
        assert response.status == 503 and response.reason == "shutting-down"

    def test_engine_error_is_typed_500(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            response = await svc.request(
                "a", "apply", payload={"sources": "vm { nope"}
            )
            await svc.stop()
            return response

        response = run(main())
        assert response.status == 500
        assert response.reason == "internal-error"


class TestTenantIsolation:
    def test_estates_match_single_tenant_baselines(self, tmp_path):
        """N tenants through one service == N private engines, byte for
        byte; the core zero-bleed property."""

        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            futs = []
            for tenant, sources in (("a", SRC), ("b", BIGGER), ("c", SRC)):
                futs.append(
                    await svc.submit(
                        tenant, "apply", payload={"sources": sources}
                    )
                )
            responses = await asyncio.gather(*futs)
            states = {
                t: canonical_state(svc.sessions[t].engine)
                for t in ("a", "b", "c")
            }
            await svc.stop()
            return responses, states

        responses, states = run(main())
        assert all(r.ok for r in responses)
        for tenant, sources in (("a", SRC), ("b", BIGGER), ("c", SRC)):
            baseline = CloudlessEngine(seed=_tenant_seed(tenant))
            assert baseline.apply(sources).ok
            assert states[tenant] == canonical_state(baseline), tenant

    def test_tenant_homes_are_disjoint(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            await svc.request("a", "apply", payload={"sources": SRC})
            await svc.request("b", "apply", payload={"sources": SRC})
            await svc.stop()

        run(main())
        assert (tmp_path / "tenants" / "a" / "world.json").exists()
        assert (tmp_path / "tenants" / "b" / "world.json").exists()

    def test_one_tenants_failure_does_not_break_another(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            bad = await svc.request(
                "bad", "apply", payload={"sources": "vm {"}
            )
            good = await svc.request(
                "good", "apply", payload={"sources": SRC}
            )
            await svc.stop()
            return bad, good

        bad, good = run(main())
        assert bad.status == 500
        assert good.ok


class TestAdmissionSheds:
    def test_rate_limit_sheds_429(self, tmp_path):
        async def main():
            svc = make_service(
                tmp_path,
                default_quota=TenantQuota(
                    rate_rps=1.0, burst=2.0, max_pending=50
                ),
            )
            await svc.start()
            futs = [
                await svc.submit("a", "stats") for _ in range(10)
            ]
            responses = await asyncio.gather(*futs)
            await svc.stop()
            return responses

        responses = run(main())
        shed = [r for r in responses if r.reason == REJECT_RATE_LIMITED]
        assert shed and all(r.status == 429 for r in shed)

    def test_tenant_quota_sheds_429(self, tmp_path):
        async def main():
            svc = make_service(
                tmp_path,
                default_quota=TenantQuota(
                    rate_rps=1e6, burst=1e6, max_pending=2
                ),
            )
            await svc.start()
            futs = [
                await svc.submit("a", "apply", payload={"sources": SRC})
                for _ in range(8)
            ]
            responses = await asyncio.gather(*futs)
            await svc.stop()
            return responses

        responses = run(main())
        assert any(r.reason == REJECT_TENANT_QUOTA for r in responses)
        assert all(r.ok or r.reason for r in responses)  # all typed

    def test_queue_bound_sheds_429(self, tmp_path):
        async def main():
            svc = make_service(
                tmp_path,
                max_queue_depth=2,
                default_quota=TenantQuota(
                    rate_rps=1e6, burst=1e6, max_pending=100
                ),
            )
            await svc.start()
            # drift is a read op: the ladder never sheds it, so the only
            # shed path left for the overflow is the global queue bound
            futs = [
                await svc.submit(f"t{i}", "drift") for i in range(12)
            ]
            responses = await asyncio.gather(*futs)
            await svc.stop()
            return responses

        responses = run(main())
        assert any(r.reason == REJECT_QUEUE_FULL for r in responses)

    def test_deadline_exceeded_is_typed_504(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            # a deadline that lapses while queued behind the first apply
            first = await svc.submit("a", "apply", payload={"sources": SRC})
            doomed = await svc.submit(
                "a", "apply", payload={"sources": SRC}, deadline_s=0.0
            )
            responses = await asyncio.gather(first, doomed)
            await svc.stop()
            return responses

        first, doomed = run(main())
        assert first.ok
        assert doomed.status == STATUS_OF[REJECT_DEADLINE] == 504
        assert doomed.reason == REJECT_DEADLINE


class TestFairness:
    def test_weighted_fair_queue_shares(self):
        queue = WeightedFairQueue()
        for i in range(30):
            queue.push("hog", f"h{i}", weight=1.0)
        for i in range(3):
            queue.push("mouse", f"m{i}", weight=1.0)
        # with equal weights and both backlogged, dispatch alternates:
        # the mouse's 3 requests all leave within the first 6 pops
        order = [queue.pop()[0] for _ in range(6)]
        assert order.count("mouse") == 3

    def test_weights_scale_shares(self):
        queue = WeightedFairQueue()
        for i in range(40):
            queue.push("big", f"b{i}", weight=3.0)
            queue.push("small", f"s{i}", weight=1.0)
        first = [queue.pop()[0] for _ in range(20)]
        # 3:1 weights -> ~3x dispatches while both stay backlogged
        assert 12 <= first.count("big") <= 18

    def test_late_joiner_does_not_monopolize(self):
        queue = WeightedFairQueue()
        for i in range(10):
            queue.push("old", f"o{i}")
        for _ in range(5):
            queue.pop()
        for i in range(10):
            queue.push("new", f"n{i}")
        window = [queue.pop()[0] for _ in range(6)]
        assert window.count("new") <= 3  # starts at min pass, not zero

    def test_noisy_neighbor_cannot_starve_steady_tenants(self, tmp_path):
        async def main():
            svc = make_service(
                tmp_path,
                default_quota=TenantQuota(
                    rate_rps=1e6, burst=1e6, max_pending=1000
                ),
            )
            await svc.start()
            futs = []
            # the hog floods 30 applies before the steady tenants ask
            for i in range(30):
                futs.append(
                    await svc.submit(
                        "hog", "apply", payload={"sources": SRC}
                    )
                )
            for tenant in ("s1", "s2"):
                for _ in range(3):
                    futs.append(
                        await svc.submit(
                            tenant, "apply", payload={"sources": SRC}
                        )
                    )
            await asyncio.gather(*futs)
            stats = svc.stats()
            await svc.stop()
            return stats

        stats = run(main())
        assert stats["goodput"]["s1"] == 3
        assert stats["goodput"]["s2"] == 3
        # steady tenants' share was served despite the 10x backlog
        assert stats["fairness_ratio"] < math.inf


class TestDegradation:
    def test_ladder_hysteresis(self):
        ladder = DegradationLadder(
            brownout_up=0.7, brownout_down=0.4,
            read_only_up=0.9, read_only_down=0.6,
        )
        assert ladder.update(0.5) == MODE_NORMAL
        assert ladder.update(0.75) == MODE_BROWNOUT
        assert ladder.update(0.5) == MODE_BROWNOUT  # above down-threshold
        assert ladder.update(0.95) == MODE_READ_ONLY
        assert ladder.update(0.7) == MODE_READ_ONLY  # above release
        assert ladder.update(0.55) == MODE_BROWNOUT  # one rung at a time
        assert ladder.update(0.3) == MODE_NORMAL

    def test_ladder_validates_thresholds(self):
        with pytest.raises(ValueError):
            DegradationLadder(brownout_up=0.4, brownout_down=0.7)

    def test_read_only_keeps_drift_up_and_sheds_apply(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            # prime the tenant so drift has an estate to scan
            await svc.request("a", "apply", payload={"sources": SRC})
            svc.ladder.mode = MODE_READ_ONLY
            svc.ladder.read_only_down = 0.0  # pin: never steps down
            apply = await svc.request("a", "apply", payload={"sources": SRC})
            drift = await svc.request("a", "drift")
            await svc.stop()
            return apply, drift

        apply, drift = run(main())
        assert apply.status == STATUS_OF[REJECT_READ_ONLY] == 503
        assert apply.reason == REJECT_READ_ONLY
        assert drift.ok  # the read path stays available

    def test_brownout_sheds_low_priority_only(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            svc.ladder.mode = MODE_BROWNOUT
            svc.ladder.brownout_down = 0.0  # pin
            low = await svc.request(
                "noisy", "apply", payload={"sources": SRC}, priority=0
            )
            normal = await svc.request(
                "steady", "apply", payload={"sources": SRC}, priority=1
            )
            await svc.stop()
            return low, normal

        low, normal = run(main())
        assert low.reason == REJECT_BROWNOUT and low.status == 503
        assert normal.ok


class TestBreakers:
    def test_breaker_state_machine(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.0)
        assert breaker.state == "open"
        assert not breaker.allow(5.0)  # cooling
        assert breaker.allow(11.0)  # half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow(11.5)  # only one probe
        breaker.record_failure(11.5)
        assert breaker.state == "open"
        assert breaker.allow(22.0)
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failing_tenant_trips_its_breaker_only(self, tmp_path):
        async def main():
            svc = make_service(tmp_path, breaker_threshold=2)
            await svc.start()
            for _ in range(2):
                await svc.request("bad", "apply", payload={"sources": "x {"})
            tripped = await svc.request(
                "bad", "apply", payload={"sources": SRC}
            )
            bystander = await svc.request(
                "good", "apply", payload={"sources": SRC}
            )
            await svc.stop()
            return tripped, bystander

        tripped, bystander = run(main())
        assert tripped.reason == REJECT_CIRCUIT_OPEN
        assert tripped.status == 503
        assert bystander.ok


class TestSessionsAndCrash:
    def test_zombie_session_is_fenced(self, tmp_path):
        """A preempted session's mutating ops raise; the service maps
        them to a typed 409."""
        session = TenantSession.open(str(tmp_path), "a", "inst-1", now=0.0)
        usurper = TenantSession.open(
            str(tmp_path), "a", "inst-2", now=1.0, preempt=True
        )
        assert usurper.grant.fencing_token > session.grant.fencing_token
        with pytest.raises(SessionFencedError):
            session.ensure_live(2.0)
        usurper.close(3.0)

    def test_zombie_apply_maps_to_409(self, tmp_path):
        async def main():
            svc = ControlPlaneService(
                str(tmp_path), instance="old",
                policy=ServicePolicy(apply_pool=1),
            )
            await svc.start()
            await svc.request("a", "apply", payload={"sources": SRC})
            # another instance preempts tenant a's session lease
            usurper = TenantSession.open(
                str(tmp_path), "a", "new", now=svc.clock(), preempt=True,
            )
            response = await svc.request(
                "a", "apply", payload={"sources": SRC}
            )
            usurper.close(svc.clock())
            await svc.stop()
            return response

        response = run(main())
        assert response.status == STATUS_OF[REJECT_STALE_SESSION] == 409
        assert response.reason == REJECT_STALE_SESSION

    def test_kill_restart_resume_converges(self, tmp_path):
        from repro.deploy import SimulatedCrash

        class Kill:
            def __init__(self):
                self.seen = 0

            def __call__(self, *a):
                self.seen += 1
                if self.seen >= 2:
                    raise SimulatedCrash("die")

        async def main():
            svc = ControlPlaneService(
                str(tmp_path), instance="A",
                policy=ServicePolicy(apply_pool=2),
            )
            await svc.start()
            crashed = await svc.request(
                "a", "apply",
                payload={"sources": BIGGER, "crash_hook": Kill()},
            )
            survivor = await svc.request(
                "b", "apply", payload={"sources": SRC}
            )
            await svc.kill()

            succ = ControlPlaneService(
                str(tmp_path), instance="B",
                policy=ServicePolicy(apply_pool=2),
            )
            await succ.start()
            resumed = await succ.request(
                "a", "resume", payload={"sources": BIGGER}
            )
            final_a = await succ.request(
                "a", "apply", payload={"sources": BIGGER}
            )
            final_b = await succ.request(
                "b", "apply", payload={"sources": SRC}
            )
            states = {
                "a": canonical_state(succ.sessions["a"].engine),
                "b": canonical_state(succ.sessions["b"].engine),
            }
            await succ.stop()
            return crashed, survivor, resumed, final_a, final_b, states

        crashed, survivor, resumed, final_a, final_b, states = run(main())
        assert crashed.status == 500 and crashed.reason == "crashed"
        assert survivor.ok
        assert resumed.ok
        # the continued applies are pure noops: nothing was duplicated
        assert final_a.body["summary"]["create"] == 0
        assert final_b.body["summary"]["create"] == 0
        for tenant, sources in (("a", BIGGER), ("b", SRC)):
            baseline = CloudlessEngine(seed=_tenant_seed(tenant))
            assert baseline.apply(sources).ok
            assert states[tenant] == canonical_state(baseline), tenant

    def test_kill_answers_queued_requests_typed(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            futs = [
                await svc.submit(f"t{i}", "apply", payload={"sources": SRC})
                for i in range(6)
            ]
            await svc.kill()
            return await asyncio.gather(*futs)

        responses = run(main())
        # every future resolved: executed, crashed out, or typed-shed
        assert all(r.ok or r.reason for r in responses)
        assert any(r.reason == "shutting-down" for r in responses)

    def test_graceful_stop_releases_owner_markers(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            await svc.request("a", "apply", payload={"sources": SRC})
            await svc.stop()

        run(main())
        assert not (
            tmp_path / "tenants" / "a" / "state.json.owner"
        ).exists()

    def test_kill_leaves_owner_marker_debris(self, tmp_path):
        async def main():
            svc = make_service(tmp_path)
            await svc.start()
            await svc.request("a", "apply", payload={"sources": SRC})
            await svc.kill()

        run(main())
        assert (tmp_path / "tenants" / "a" / "state.json.owner").exists()
