"""Synthetic traffic harness: seeded generators and latency accounting.

A load harness that is not deterministic cannot gate CI, and one whose
percentile math is wrong gates the wrong thing. These tests pin both:
arrival schedules are pure functions of their seeds, the open/closed
loop generators have the statistical shape they claim, and histogram
percentiles never under-report the tail.
"""

import math
import statistics

import pytest

from repro.workloads import (
    Arrival,
    LatencyHistogram,
    closed_loop_think_times,
    goodput_fairness_ratio,
    mixed_arrivals,
    open_loop_arrivals,
    tenant_mix,
)


class TestOpenLoop:
    def test_same_seed_same_schedule(self):
        a = open_loop_arrivals(50.0, 2.0, seed=7)
        b = open_loop_arrivals(50.0, 2.0, seed=7)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = open_loop_arrivals(50.0, 2.0, seed=7)
        b = open_loop_arrivals(50.0, 2.0, seed=8)
        assert a != b

    def test_rate_is_roughly_honored(self):
        arrivals = open_loop_arrivals(200.0, 5.0, seed=1)
        # Poisson(1000) stays within +-12% with overwhelming probability
        assert 880 <= len(arrivals) <= 1120

    def test_arrivals_sorted_and_inside_window(self):
        arrivals = open_loop_arrivals(30.0, 3.0, seed=3)
        times = [a.t for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 < t < 3.0 for t in times)

    def test_gaps_are_exponential_not_uniform(self):
        """Open loop means memoryless gaps: the gap distribution's
        coefficient of variation is ~1 (uniform spacing would be ~0)."""
        arrivals = open_loop_arrivals(100.0, 20.0, seed=5)
        gaps = [
            b.t - a.t for a, b in zip(arrivals, arrivals[1:])
        ]
        cv = statistics.pstdev(gaps) / statistics.mean(gaps)
        assert 0.8 < cv < 1.2

    def test_degenerate_inputs_yield_empty(self):
        assert open_loop_arrivals(0.0, 5.0) == []
        assert open_loop_arrivals(10.0, 0.0) == []

    def test_metadata_threads_through(self):
        arrivals = open_loop_arrivals(
            10.0, 1.0, seed=0, tenant="acme", op="drift", priority=0
        )
        assert arrivals
        assert all(
            a.tenant == "acme" and a.op == "drift" and a.priority == 0
            for a in arrivals
        )


class TestClosedLoop:
    def test_deterministic_and_sized(self):
        a = closed_loop_think_times(0.1, 50, seed=2)
        assert a == closed_loop_think_times(0.1, 50, seed=2)
        assert len(a) == 50

    def test_mean_think_time(self):
        draws = closed_loop_think_times(0.5, 5000, seed=9)
        assert statistics.mean(draws) == pytest.approx(0.5, rel=0.1)

    def test_zero_think_means_saturating_client(self):
        assert closed_loop_think_times(0.0, 5) == [0.0] * 5
        assert closed_loop_think_times(1.0, 0) == []


class TestTenantMix:
    def test_mix_shape(self):
        profiles = tenant_mix(
            steady=3, bursty=1, noisy=1, base_rate_rps=10.0,
            noisy_factor=8.0,
        )
        kinds = [p.kind for p in profiles]
        assert kinds == ["steady", "steady", "steady", "bursty", "noisy"]
        noisy = profiles[-1]
        assert noisy.rate_rps == 80.0
        assert noisy.priority == 0  # adversaries ride at low priority
        assert all(p.priority == 1 for p in profiles[:-1])

    def test_mixed_arrivals_deterministic_and_sorted(self):
        profiles = tenant_mix(steady=2, noisy=1, base_rate_rps=30.0)
        a = mixed_arrivals(profiles, duration_s=2.0, seed=4)
        assert a == mixed_arrivals(profiles, duration_s=2.0, seed=4)
        assert [x.t for x in a] == sorted(x.t for x in a)

    def test_adding_a_tenant_never_perturbs_others(self):
        """Per-tenant derived RNGs: tenant t00's schedule is identical
        whether or not t01 exists in the mix."""
        solo = mixed_arrivals(
            tenant_mix(steady=1, base_rate_rps=40.0), 2.0, seed=6
        )
        both = mixed_arrivals(
            tenant_mix(steady=2, base_rate_rps=40.0), 2.0, seed=6
        )
        assert [a for a in both if a.tenant == "t00"] == solo

    def test_bursty_tenants_compress_into_duty_windows(self):
        profiles = tenant_mix(bursty=1, steady=0, base_rate_rps=100.0)
        arrivals = mixed_arrivals(
            profiles, 5.0, seed=1, burst_period_s=1.0, burst_duty=0.25
        )
        assert arrivals
        for arrival in arrivals:
            assert math.fmod(arrival.t, 1.0) <= 0.25 + 1e-9
        # same average rate as a steady tenant, within Poisson noise
        assert len(arrivals) == pytest.approx(500, rel=0.25)


class TestLatencyHistogram:
    def test_bucket_edges_never_underestimate(self):
        """percentile() returns a bucket's upper edge: for any sample
        set, p100 >= true max (within the top-bucket max_s case)."""
        hist = LatencyHistogram()
        samples = [0.001, 0.003, 0.01, 0.2, 1.7]
        for s in samples:
            hist.observe(s)
        assert hist.percentile(1.0) >= max(samples)

    def test_percentiles_against_bucket_oracle(self):
        hist = LatencyHistogram()
        samples = [i / 1000.0 for i in range(1, 1001)]  # 1ms..1s
        for s in samples:
            hist.observe(s)
        for q in (0.5, 0.9, 0.99, 0.999):
            true_value = samples[
                max(0, math.ceil(q * len(samples)) - 1)
            ]
            reported = hist.percentile(q)
            assert reported >= true_value  # never under-reports
            # and overestimates by at most one growth factor
            assert reported <= true_value * hist.growth * (1 + 1e-9)

    def test_merge_equals_single_histogram(self):
        left, right, whole = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for i, s in enumerate(x / 100.0 for x in range(1, 200)):
            (left if i % 2 else right).observe(s)
            whole.observe(s)
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        assert left.p99 == whole.p99
        assert left.max_s == whole.max_s

    def test_merge_rejects_mismatched_grids(self):
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.5).merge(LatencyHistogram(growth=2.0))

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.p50 == 0.0 and hist.p999 == 0.0
        assert hist.mean_s == 0.0

    def test_top_bucket_reports_observed_max(self):
        hist = LatencyHistogram(max_s=1.0)
        hist.observe(500.0)  # beyond the grid
        assert hist.percentile(1.0) == 500.0

    def test_to_dict_round_numbers(self):
        hist = LatencyHistogram()
        hist.observe(0.1)
        d = hist.to_dict()
        assert d["count"] == 1
        assert d["max_s"] == 0.1


class TestFairnessRatio:
    def test_perfectly_fair(self):
        assert goodput_fairness_ratio({"a": 10, "b": 10}) == 1.0

    def test_ratio(self):
        assert goodput_fairness_ratio({"a": 30, "b": 10}) == 3.0

    def test_starvation_is_infinite(self):
        assert goodput_fairness_ratio({"a": 10, "b": 0}) == math.inf

    def test_empty_and_all_starved(self):
        assert goodput_fairness_ratio({}) == 0.0
        assert goodput_fairness_ratio({"a": 0, "b": 0}) == 0.0
