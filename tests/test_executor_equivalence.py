"""Cross-executor equivalence: scheduling must never change semantics.

Whatever order an executor dispatches operations in, the final cloud
estate and state document must be identical -- only the makespan may
differ. Checked over a family of generated workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import CloudGateway
from repro.deploy import (
    BestEffortExecutor,
    CriticalPathExecutor,
    SequentialExecutor,
)
from repro.deploy.incremental import read_data_sources
from repro.graph import Planner, build_graph
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import hub_spoke, microservices, ml_training, web_tier


def apply_with(executor_factory, source, seed):
    gateway = CloudGateway.simulated(seed=seed)
    graph = build_graph(Configuration.parse(source))
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    plan = planner.plan(graph, state, data_values=data)
    result = executor_factory(gateway).apply(plan)
    assert result.ok, result.failed
    return gateway, result.state


def estate_fingerprint(gateway, state):
    """Provider records keyed by name (ids depend on creation order)."""
    cloud = {}
    for record in gateway.all_records():
        attrs = {
            k: v
            for k, v in record.attrs.items()
            if not _is_identity(k, v)
        }
        cloud[(record.type, record.name)] = (record.region, _scrub(attrs))
    addresses = sorted(str(a) for a in state.addresses())
    return cloud, addresses


def _is_identity(key, value):
    return key in ("id", "arn", "private_ip", "public_ip", "ip_address", "fqdn", "endpoint", "dns_name", "resource_uri")


def _scrub(value):
    """Mask resource ids (creation-order dependent) inside attr values,
    including ids embedded in derived strings like dns names."""
    import re

    if isinstance(value, str):
        return re.sub(r"\b[a-z]+-[0-9a-f]{8}\b", "<id>", value)
    if isinstance(value, list):
        return [_scrub(v) for v in value]
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items()}
    return value


WORKLOADS = {
    "web": web_tier(web_vms=3, app_vms=2),
    "micro": microservices(services=3, vms_per_service=2),
    "hub": hub_spoke(spokes=2, vms_per_spoke=1),
    "ml": ml_training(workers=3),
}


class TestExecutorEquivalence:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_executors_converge_to_one_estate(self, name):
        source = WORKLOADS[name]
        fingerprints = []
        for factory in (
            lambda gw: SequentialExecutor(gw),
            lambda gw: BestEffortExecutor(gw, concurrency=7),
            lambda gw: CriticalPathExecutor(gw, concurrency=7),
            lambda gw: CriticalPathExecutor(gw, concurrency=2),
        ):
            gateway, state = apply_with(factory, source, seed=555)
            fingerprints.append(estate_fingerprint(gateway, state))
        first = fingerprints[0]
        for other in fingerprints[1:]:
            assert other[0] == first[0], "cloud estates diverged"
            assert other[1] == first[1], "state addresses diverged"

    @given(
        web=st.integers(1, 4),
        app=st.integers(0, 3),
        concurrency=st.integers(1, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_cp_equals_sequential(self, web, app, concurrency):
        source = web_tier(web_vms=web, app_vms=app, with_lb=web > 1)
        _, seq_state = apply_with(
            lambda gw: SequentialExecutor(gw), source, seed=777
        )
        _, cp_state = apply_with(
            lambda gw: CriticalPathExecutor(gw, concurrency=concurrency),
            source,
            seed=777,
        )
        assert sorted(str(a) for a in seq_state.addresses()) == sorted(
            str(a) for a in cp_state.addresses()
        )
