"""Cross-executor equivalence: scheduling must never change semantics.

Two layers of guarantees:

* *Cross-strategy*: whatever order an executor dispatches operations
  in, the final cloud estate and state document must be identical --
  only the makespan may differ. Checked over a family of generated
  workloads.
* *Cross-implementation*: the optimized heap-based dispatch loop must
  make byte-identical scheduling decisions to the frozen
  pre-optimization loop in ``repro.deploy.reference`` -- same operation
  sequence, same timings, same makespan, same failure/skip sets.
  Checked live on small workloads and against checked-in golden
  fingerprints on a seeded 1k-node random DAG (``tests/golden/``,
  regenerate with ``python tests/golden/generate_golden.py``).
"""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import CloudGateway
from repro.cloud.faults import FaultSpec
from repro.deploy import (
    BestEffortExecutor,
    CriticalPathExecutor,
    SequentialExecutor,
)
from repro.deploy.incremental import read_data_sources
from repro.deploy.reference import REFERENCE_FOR
from repro.graph import Planner, build_graph
from repro.graph.critical_path import clear_analysis_cache
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import (
    hub_spoke,
    microservices,
    ml_training,
    web_tier,
)
from repro.workloads.topologies import random_dag_estate

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def run_apply(executor_factory, source, seed, faults=None):
    """Plan + apply ``source`` on a fresh simulated estate.

    Returns (gateway, ApplyResult) without asserting success, so
    failure-path comparisons can use it too.
    """
    clear_analysis_cache()
    gateway = CloudGateway.simulated(seed=seed)
    if faults:
        for provider, fault in faults:
            gateway.planes[provider].faults.add_rule(fault)
    graph = build_graph(Configuration.parse(source))
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    plan = planner.plan(graph, state, data_values=data)
    result = executor_factory(gateway).apply(plan)
    return gateway, result


def apply_with(executor_factory, source, seed):
    gateway, result = run_apply(executor_factory, source, seed)
    assert result.ok, result.failed
    return gateway, result.state


def result_fingerprint(result):
    """Everything scheduling-relevant about one apply, hashed.

    ``skipped`` is sorted: the pre-optimization loop emitted it in set
    iteration order (hash-seed dependent), so only the *set* is part of
    the contract.
    """
    ops = [
        [
            op.change_id,
            op.operation,
            round(op.t_submit, 6),
            round(op.t_complete, 6),
            op.ok,
            op.error_code,
            op.attempt,
        ]
        for op in result.operations
    ]
    payload = {
        "succeeded": result.succeeded,
        "skipped": sorted(result.skipped),
        "failed": sorted(result.failed),
        "makespan_s": round(result.makespan_s, 6),
        "api_calls": result.api_calls,
        "ops": ops,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def estate_fingerprint(gateway, state):
    """Provider records keyed by name (ids depend on creation order)."""
    cloud = {}
    for record in gateway.all_records():
        attrs = {
            k: v
            for k, v in record.attrs.items()
            if not _is_identity(k, v)
        }
        cloud[(record.type, record.name)] = (record.region, _scrub(attrs))
    addresses = sorted(str(a) for a in state.addresses())
    return cloud, addresses


def _is_identity(key, value):
    return key in ("id", "arn", "private_ip", "public_ip", "ip_address", "fqdn", "endpoint", "dns_name", "resource_uri")


def _scrub(value):
    """Mask resource ids (creation-order dependent) inside attr values,
    including ids embedded in derived strings like dns names."""
    import re

    if isinstance(value, str):
        return re.sub(r"\b[a-z]+-[0-9a-f]{8}\b", "<id>", value)
    if isinstance(value, list):
        return [_scrub(v) for v in value]
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items()}
    return value


WORKLOADS = {
    "web": web_tier(web_vms=3, app_vms=2),
    "micro": microservices(services=3, vms_per_service=2),
    "hub": hub_spoke(spokes=2, vms_per_spoke=1),
    "ml": ml_training(workers=3),
}


class TestExecutorEquivalence:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_executors_converge_to_one_estate(self, name):
        source = WORKLOADS[name]
        fingerprints = []
        for factory in (
            lambda gw: SequentialExecutor(gw),
            lambda gw: BestEffortExecutor(gw, concurrency=7),
            lambda gw: CriticalPathExecutor(gw, concurrency=7),
            lambda gw: CriticalPathExecutor(gw, concurrency=2),
        ):
            gateway, state = apply_with(factory, source, seed=555)
            fingerprints.append(estate_fingerprint(gateway, state))
        first = fingerprints[0]
        for other in fingerprints[1:]:
            assert other[0] == first[0], "cloud estates diverged"
            assert other[1] == first[1], "state addresses diverged"

    @given(
        web=st.integers(1, 4),
        app=st.integers(0, 3),
        concurrency=st.integers(1, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_cp_equals_sequential(self, web, app, concurrency):
        source = web_tier(web_vms=web, app_vms=app, with_lb=web > 1)
        _, seq_state = apply_with(
            lambda gw: SequentialExecutor(gw), source, seed=777
        )
        _, cp_state = apply_with(
            lambda gw: CriticalPathExecutor(gw, concurrency=concurrency),
            source,
            seed=777,
        )
        assert sorted(str(a) for a in seq_state.addresses()) == sorted(
            str(a) for a in cp_state.addresses()
        )


# (display name, optimized class, constructor kwargs). The reference
# twin comes from REFERENCE_FOR, always with the same kwargs.
EXECUTOR_CASES = [
    ("sequential", SequentialExecutor, {}),
    ("best-effort", BestEffortExecutor, {"concurrency": 6}),
    ("critical-path", CriticalPathExecutor, {"concurrency": 6}),
    (
        "critical-path-no-ra",
        CriticalPathExecutor,
        {"concurrency": 3, "rate_aware": False},
    ),
]

GOLDEN_CASES = [
    ("sequential", SequentialExecutor, {}),
    ("best-effort", BestEffortExecutor, {"concurrency": 8}),
    ("critical-path", CriticalPathExecutor, {"concurrency": 8}),
    (
        "critical-path-no-ra",
        CriticalPathExecutor,
        {"concurrency": 8, "rate_aware": False},
    ),
]

GOLDEN_NODES = 1000
GOLDEN_SEED = 42


def _subnet_fault():
    """One hard (non-transient) failure on the first subnet create --
    exercises the failure + descendant-skip propagation path."""
    return [
        (
            "aws",
            FaultSpec(
                error_code="InternalError",
                message="injected hard failure",
                match_type="aws_subnet",
                match_operation="create",
                transient=False,
                max_strikes=1,
            ),
        )
    ]


class TestReferenceEquivalence:
    """Optimized dispatch loop == frozen pre-optimization loop, bit for bit."""

    @pytest.mark.parametrize(
        "case", EXECUTOR_CASES, ids=[c[0] for c in EXECUTOR_CASES]
    )
    @pytest.mark.parametrize(
        "workload", ["web", "hub", "random_dag"], ids=str
    )
    def test_success_paths_identical(self, workload, case):
        _, cls, kwargs = case
        if workload == "random_dag":
            source = random_dag_estate(120, seed=3)
        else:
            source = WORKLOADS[workload]
        _, opt = run_apply(lambda gw: cls(gw, **kwargs), source, seed=99)
        _, ref = run_apply(
            lambda gw: REFERENCE_FOR[cls](gw, **kwargs), source, seed=99
        )
        assert opt.ok and ref.ok
        assert result_fingerprint(opt) == result_fingerprint(ref)

    @pytest.mark.parametrize(
        "case", EXECUTOR_CASES, ids=[c[0] for c in EXECUTOR_CASES]
    )
    def test_failure_skip_propagation_identical(self, case):
        _, cls, kwargs = case
        source = WORKLOADS["web"]
        _, opt = run_apply(
            lambda gw: cls(gw, **kwargs), source, seed=99,
            faults=_subnet_fault(),
        )
        _, ref = run_apply(
            lambda gw: REFERENCE_FOR[cls](gw, **kwargs), source, seed=99,
            faults=_subnet_fault(),
        )
        assert not opt.ok, "fault injection should have failed the apply"
        assert opt.failed and opt.skipped
        assert result_fingerprint(opt) == result_fingerprint(ref)


class TestGoldenRandomDag:
    """Seeded 1k-node random DAG vs fingerprints generated with the
    frozen reference executors (regenerate: python tests/golden/generate_golden.py)."""

    @pytest.fixture(scope="class")
    def golden(self):
        path = os.path.join(GOLDEN_DIR, "random_dag_1k.json")
        with open(path) as handle:
            return json.load(handle)

    @pytest.mark.parametrize(
        "case", GOLDEN_CASES, ids=[c[0] for c in GOLDEN_CASES]
    )
    def test_matches_reference_golden(self, golden, case):
        name, cls, kwargs = case
        assert golden["nodes"] == GOLDEN_NODES
        assert golden["seed"] == GOLDEN_SEED
        source = random_dag_estate(GOLDEN_NODES, seed=GOLDEN_SEED)
        _, result = run_apply(
            lambda gw: cls(gw, **kwargs), source, seed=GOLDEN_SEED
        )
        assert result.ok, result.failed
        expect = golden["executors"][name]
        assert len(result.succeeded) == expect["n_succeeded"]
        assert round(result.makespan_s, 6) == expect["makespan_s"]
        assert result_fingerprint(result) == expect["fingerprint"]
