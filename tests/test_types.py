"""Semantic types: model, checker, inference from corpora."""

import pytest

from repro.lang import Configuration
from repro.types import (
    SchemaRegistry,
    SemanticInferencer,
    SemanticType,
    TypeChecker,
    check_types,
    compatible,
    literal_semantic,
)


class TestSemanticModel:
    def test_literal_classification(self):
        assert literal_semantic("10.0.0.0/16").kind == "cidr"
        assert literal_semantic("hello").kind == "plain"
        assert literal_semantic(5).base == "number"
        assert literal_semantic(True).base == "bool"

    def test_compatibility_matrix(self):
        nic = SemanticType("resource_id", "azure_network_interface")
        subnet = SemanticType("resource_id", "azure_subnet")
        plain_str = SemanticType("plain", base="string")
        any_ = SemanticType("any")
        assert compatible(nic, nic)
        assert not compatible(nic, subnet)
        assert compatible(nic, plain_str)  # hand-written id: allowed
        assert compatible(nic, any_)
        assert compatible(any_, subnet)

    def test_registry_semantics(self, registry):
        produced = registry.produced("aws_subnet", "id")
        assert produced.kind == "resource_id"
        assert produced.detail == "aws_subnet"
        expected = registry.expected("aws_virtual_machine", "nic_ids")
        assert expected.detail == "aws_network_interface"


class TestTypeChecker:
    def check(self, source):
        return check_types(Configuration.parse(source))

    def test_clean_config_passes(self, figure2_source):
        assert not self.check(figure2_source).has_errors()

    def test_unknown_type(self):
        sink = self.check('resource "aws_hoverboard" "h" { name = "x" }\n')
        assert any(d.code == "TYPE001" for d in sink.errors)

    def test_unsupported_attribute(self):
        sink = self.check(
            'resource "aws_s3_bucket" "b" {\n  name = "b"\n  colour = "red"\n}\n'
        )
        assert any(d.code == "TYPE002" for d in sink.errors)

    def test_read_only_attribute(self):
        sink = self.check(
            'resource "aws_s3_bucket" "b" {\n  name = "b"\n  arn = "x"\n}\n'
        )
        assert any(d.code == "TYPE003" for d in sink.errors)

    def test_missing_required(self):
        sink = self.check('resource "aws_vpc" "v" { name = "v" }\n')
        assert any(d.code == "TYPE004" for d in sink.errors)

    def test_wrong_base_type(self):
        sink = self.check(
            'resource "aws_disk" "d" {\n  name = "d"\n  size_gb = "lots"\n}\n'
        )
        assert any(d.code == "TYPE005" for d in sink.errors)

    def test_bad_enum(self):
        sink = self.check(
            'resource "aws_disk" "d" {\n'
            "  name = \"d\"\n  size_gb = 10\n  disk_type = \"quantum\"\n}\n"
        )
        assert any(d.code == "TYPE006" for d in sink.errors)

    def test_invalid_cidr(self):
        sink = self.check(
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/99"\n}\n'
        )
        assert any(d.code == "TYPE007" for d in sink.errors)

    def test_unknown_region(self):
        sink = self.check(
            'resource "azure_resource_group" "r" {\n'
            '  name = "r"\n  location = "atlantis"\n}\n'
        )
        assert any(d.code == "TYPE008" for d in sink.errors)

    def test_wrong_ref_type(self):
        sink = self.check(
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_network_interface" "n" {\n'
            '  name = "n"\n'
            "  subnet_id = aws_vpc.v.id\n"
            "}\n"
        )
        assert any(d.code == "TYPE009" for d in sink.errors)

    def test_ref_list_elements_checked(self):
        sink = self.check(
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_virtual_machine" "m" {\n'
            '  name = "m"\n'
            "  nic_ids = [aws_vpc.v.id]\n"
            "}\n"
        )
        assert any(d.code == "TYPE009" for d in sink.errors)

    def test_ref_through_local(self):
        sink = self.check(
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            "locals { wrong = aws_vpc.v.id }\n"
            'resource "aws_network_interface" "n" {\n'
            '  name = "n"\n'
            "  subnet_id = local.wrong\n"
            "}\n"
        )
        assert any(d.code == "TYPE009" for d in sink.errors)

    def test_cidr_function_result_accepted(self):
        sink = self.check(
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_subnet" "s" {\n'
            '  name = "s"\n'
            "  vpc_id = aws_vpc.v.id\n"
            "  cidr_block = cidrsubnet(aws_vpc.v.cidr_block, 8, 0)\n"
            "}\n"
        )
        assert not sink.has_errors()

    def test_variable_values_not_rejected(self):
        # var values are unknowable statically; must not be flagged
        sink = self.check(
            'variable "subnet" { type = string }\n'
            'resource "aws_network_interface" "n" {\n'
            '  name = "n"\n'
            "  subnet_id = var.subnet\n"
            "}\n"
        )
        assert not sink.has_errors()


class TestInference:
    CORPUS = [
        (
            'resource "custom_widget" "w{i}" {{\n'
            '  name    = "w{i}"\n'
            "  gear_id = custom_gear.g{i}.id\n"
            "}}\n"
            'resource "custom_gear" "g{i}" {{\n'
            '  name = "g{i}"\n'
            "}}\n"
        )
    ]

    def corpus_configs(self, n=3):
        out = []
        for i in range(n):
            out.append(Configuration.parse(self.CORPUS[0].format(i=i)))
        return out

    def test_learns_ref_semantics(self):
        inferencer = SemanticInferencer(min_support=2)
        report = inferencer.infer(self.corpus_configs())
        ann = report.annotation_for("custom_widget", "gear_id")
        assert ann is not None
        assert ann.semantic == "ref:custom_gear"
        assert ann.support >= 2

    def test_below_support_not_promoted(self):
        inferencer = SemanticInferencer(min_support=5)
        report = inferencer.infer(self.corpus_configs(2))
        assert report.annotation_for("custom_widget", "gear_id") is None

    def test_enriched_registry_checks_new_types(self):
        inferencer = SemanticInferencer(min_support=2)
        report = inferencer.infer(self.corpus_configs())
        enriched = inferencer.enrich(SchemaRegistry.default(), report)
        # the new registry now rejects a wrong-typed reference into a
        # resource type it learned only from the corpus
        bad = Configuration.parse(
            'resource "custom_widget" "w" {\n'
            "  gear_id = aws_vpc.v.id\n"
            "}\n"
            'resource "aws_vpc" "v" {\n'
            '  name = "v"\n'
            '  cidr_block = "10.0.0.0/16"\n'
            "}\n"
        )
        sink = TypeChecker(enriched, bad).check()
        assert any(d.code == "TYPE009" for d in sink.errors)

    def test_learned_semantics_do_not_override_catalog(self):
        inferencer = SemanticInferencer(min_support=1)
        # corpus that wires VM nic_ids to subnets (wrongly)
        bad_corpus = [
            Configuration.parse(
                'resource "aws_virtual_machine" "m" {\n'
                "  nic_ids = [aws_subnet.s.id]\n"
                "}\n"
                'resource "aws_subnet" "s" {\n'
                '  name = "s"\n'
                "}\n"
            )
        ]
        report = inferencer.infer(bad_corpus)
        enriched = inferencer.enrich(SchemaRegistry.default(), report)
        expected = enriched.expected("aws_virtual_machine", "nic_ids")
        assert expected.detail == "aws_network_interface"  # unchanged
