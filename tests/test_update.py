"""Concurrent update coordination (E3 machinery)."""

import pytest

from repro.addressing import ResourceAddress
from repro.state import (
    GlobalLockManager,
    ResourceLockManager,
    ResourceState,
    StateDocument,
)
from repro.update import CoordinationResult, UpdateCoordinator, UpdateRequest


def seeded_state(n=10):
    doc = StateDocument()
    for i in range(n):
        doc.set(
            ResourceState(
                address=ResourceAddress.parse(f"aws_s3_bucket.b{i}"),
                resource_id=f"bkt-{i}",
                provider="aws",
                attrs={"name": f"b{i}", "version": 0},
                region="us-east-1",
            )
        )
    return doc


def bump(key):
    def mutate(txn):
        entry = txn.read(ResourceAddress.parse(key))
        assert entry is not None
        entry.attrs["version"] += 1
        txn.set(entry)

    return mutate


def disjoint_requests(teams, duration=60.0):
    return [
        UpdateRequest(
            team=f"team-{i}",
            submitted_at=0.0,
            keys={f"aws_s3_bucket.b{i}"},
            duration_s=duration,
            mutate=bump(f"aws_s3_bucket.b{i}"),
        )
        for i in range(teams)
    ]


class TestGlobalLock:
    def test_disjoint_updates_serialize_anyway(self):
        coordinator = UpdateCoordinator(seeded_state(), GlobalLockManager())
        result = coordinator.run(disjoint_requests(4))
        assert len(result.outcomes) == 4
        # with one big lock, total time is the sum of the work
        assert result.makespan_s == pytest.approx(4 * 60.0)
        assert result.max_wait_s == pytest.approx(3 * 60.0)

    def test_serializable(self):
        coordinator = UpdateCoordinator(seeded_state(), GlobalLockManager())
        result = coordinator.run(disjoint_requests(4))
        assert result.serializable


class TestResourceLocks:
    def test_disjoint_updates_run_in_parallel(self):
        coordinator = UpdateCoordinator(seeded_state(), ResourceLockManager())
        result = coordinator.run(disjoint_requests(4))
        assert result.makespan_s == pytest.approx(60.0)
        assert result.mean_wait_s == pytest.approx(0.0)

    def test_conflicting_updates_still_exclude(self):
        coordinator = UpdateCoordinator(seeded_state(), ResourceLockManager())
        requests = [
            UpdateRequest(
                team=f"t{i}",
                submitted_at=0.0,
                keys={"aws_s3_bucket.b0"},
                duration_s=30.0,
                mutate=bump("aws_s3_bucket.b0"),
            )
            for i in range(3)
        ]
        result = coordinator.run(requests)
        assert result.makespan_s == pytest.approx(90.0)
        assert result.serializable

    def test_mutations_all_applied(self):
        state = seeded_state()
        coordinator = UpdateCoordinator(state, ResourceLockManager())
        requests = [
            UpdateRequest(
                team=f"t{i}",
                submitted_at=float(i),
                keys={"aws_s3_bucket.b0"},
                duration_s=10.0,
                mutate=bump("aws_s3_bucket.b0"),
            )
            for i in range(5)
        ]
        coordinator.run(requests)
        entry = state.get(ResourceAddress.parse("aws_s3_bucket.b0"))
        assert entry.attrs["version"] == 5

    def test_partial_overlap(self):
        # t1 holds {b0,b1}; t2 wants {b1,b2} -> waits; t3 wants {b3} -> free
        coordinator = UpdateCoordinator(seeded_state(), ResourceLockManager())
        requests = [
            UpdateRequest("t1", 0.0, {"aws_s3_bucket.b0", "aws_s3_bucket.b1"}, 50.0),
            UpdateRequest("t2", 1.0, {"aws_s3_bucket.b1", "aws_s3_bucket.b2"}, 50.0),
            UpdateRequest("t3", 1.0, {"aws_s3_bucket.b3"}, 50.0),
        ]
        result = coordinator.run(requests)
        by_team = {o.team: o for o in result.outcomes}
        assert by_team["t3"].wait_s == pytest.approx(0.0)
        assert by_team["t2"].wait_s == pytest.approx(49.0)
        assert by_team["t2"].conflicts_seen >= 1

    def test_throughput_advantage(self):
        """The paper's claim: fine-grained locking enables parallelism."""
        fine = UpdateCoordinator(seeded_state(), ResourceLockManager()).run(
            disjoint_requests(8)
        )
        coarse = UpdateCoordinator(seeded_state(), GlobalLockManager()).run(
            disjoint_requests(8)
        )
        assert fine.throughput_per_hour > coarse.throughput_per_hour * 4
        assert fine.serializable and coarse.serializable

    def test_staggered_submissions(self):
        coordinator = UpdateCoordinator(seeded_state(), ResourceLockManager())
        requests = [
            UpdateRequest("t1", 0.0, {"aws_s3_bucket.b0"}, 10.0),
            UpdateRequest("t2", 100.0, {"aws_s3_bucket.b0"}, 10.0),
        ]
        result = coordinator.run(requests)
        by_team = {o.team: o for o in result.outcomes}
        assert by_team["t2"].wait_s == pytest.approx(0.0)  # lock long free
        assert result.makespan_s == pytest.approx(110.0)


class TestCloudOps:
    """Cloud-side work routed through the coordinator's resilient
    gateway at completion time."""

    def deployed(self, seed=48):
        from repro.core import CloudlessEngine
        from repro.workloads import web_tier

        engine = CloudlessEngine(seed=seed)
        assert engine.apply(web_tier()).ok
        return engine

    def a_vm(self, engine):
        return next(
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        )

    def test_cloud_ops_survive_transient_faults(self):
        from repro.cloud import FaultSpec

        engine = self.deployed()
        vm = self.a_vm(engine)
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalServerError",
                message="retry me",
                match_operation="update",
                transient=True,
                max_strikes=1,
            )
        )
        coordinator = UpdateCoordinator(
            engine.state, ResourceLockManager(), gateway=engine.resilient
        )

        def ops(gw):
            gw.execute(
                "update",
                vm.address.type,
                resource_id=vm.resource_id,
                attrs={"size": "xlarge"},
            )

        result = coordinator.run(
            [
                UpdateRequest(
                    team="t1",
                    submitted_at=engine.clock.now,
                    keys={str(vm.address)},
                    duration_s=60.0,
                    cloud_ops=ops,
                )
            ]
        )
        assert result.errors == []
        assert engine.resilient.stats.retries >= 1
        live = engine.gateway.find_record(vm.resource_id)
        assert live.attrs["size"] == "xlarge"

    def test_failed_cloud_ops_skip_logical_mutate(self):
        from repro.cloud import FaultSpec

        engine = self.deployed(seed=49)
        vm = self.a_vm(engine)
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InvalidParameter",
                message="rejected",
                match_operation="update",
                transient=False,
                max_strikes=1,
            )
        )
        coordinator = UpdateCoordinator(
            engine.state, ResourceLockManager(), gateway=engine.resilient
        )

        def ops(gw):
            gw.execute(
                "update",
                vm.address.type,
                resource_id=vm.resource_id,
                attrs={"size": "xlarge"},
            )

        def mutate(txn):
            raise AssertionError(
                "mutate must not run when cloud work failed"
            )

        result = coordinator.run(
            [
                UpdateRequest(
                    team="t1",
                    submitted_at=engine.clock.now,
                    keys={str(vm.address)},
                    duration_s=60.0,
                    mutate=mutate,
                    cloud_ops=ops,
                )
            ]
        )
        assert len(result.errors) == 1
        assert "InvalidParameter" in result.errors[0]

    def test_cloud_ops_without_gateway_rejected(self):
        coordinator = UpdateCoordinator(seeded_state(), ResourceLockManager())
        with pytest.raises(ValueError):
            coordinator.run(
                [
                    UpdateRequest(
                        team="t1",
                        submitted_at=0.0,
                        keys={"aws_s3_bucket.b0"},
                        duration_s=10.0,
                        cloud_ops=lambda gw: None,
                    )
                ]
            )
