"""State document, stores, snapshots, locks, transactions."""

import pytest

from repro.addressing import ResourceAddress, managed
from repro.state import (
    FileStateStore,
    GlobalLockManager,
    MemoryStateStore,
    ResourceLockManager,
    ResourceState,
    SerializabilityChecker,
    SnapshotHistory,
    StaleStateError,
    StateDatabase,
    StateDocument,
    TransactionError,
)


def entry(addr_text, rid="r-1", attrs=None):
    return ResourceState(
        address=ResourceAddress.parse(addr_text),
        resource_id=rid,
        provider="aws",
        attrs=attrs or {"name": "x"},
        region="us-east-1",
    )


class TestAddressing:
    def test_round_trip(self):
        cases = [
            "aws_vpc.main",
            "aws_vm.web[3]",
            'aws_vm.web["blue"]',
            "data.aws_region.current",
            "module.net.aws_subnet.front[0]",
            "module.a.module.b.azure_disk.d",
        ]
        for text in cases:
            assert str(ResourceAddress.parse(text)) == text

    def test_config_address_strips_key(self):
        addr = managed("aws_vm", "web", 3)
        assert str(addr.config_address) == "aws_vm.web"

    def test_ordering(self):
        a = managed("aws_vm", "web", 1)
        b = managed("aws_vm", "web", 10)
        assert a < b  # numeric, not lexicographic

    def test_invalid(self):
        with pytest.raises(ValueError):
            ResourceAddress.parse("justonepart")


class TestStateDocument:
    def test_set_get_remove(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        assert doc.get(ResourceAddress.parse("aws_vpc.main")) is not None
        assert len(doc) == 1
        doc.remove(ResourceAddress.parse("aws_vpc.main"))
        assert len(doc) == 0

    def test_instances_of(self):
        doc = StateDocument()
        doc.set(entry("aws_vm.web[1]", "r-b"))
        doc.set(entry("aws_vm.web[0]", "r-a"))
        doc.set(entry("aws_vm.other", "r-c"))
        instances = doc.instances_of("aws_vm", "web")
        assert [e.resource_id for e in instances] == ["r-a", "r-b"]

    def test_by_resource_id(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", "vpc-7"))
        assert doc.by_resource_id("vpc-7").address.type == "aws_vpc"
        assert doc.by_resource_id("nope") is None

    def test_by_resource_id_index_tracks_mutations(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", "vpc-1"))
        doc.set(entry("aws_vm.web", "i-1"))
        assert doc.by_resource_id("i-1") is not None  # builds the index
        # overwrite with a new identity (replacement)
        doc.set(doc.get(ResourceAddress.parse("aws_vm.web")).replace(resource_id="i-2"))
        assert doc.by_resource_id("i-1") is None
        assert doc.by_resource_id("i-2").resource_id == "i-2"
        # removal drops the id
        doc.remove(ResourceAddress.parse("aws_vm.web"))
        assert doc.by_resource_id("i-2") is None
        assert doc.by_resource_id("vpc-1") is not None
        # copies answer the same lookups with fresh indexes
        assert doc.copy().by_resource_id("vpc-1").resource_id == "vpc-1"

    def test_by_resource_id_empty_id_falls_back_to_scan(self):
        doc = StateDocument()
        doc.set(entry("aws_vm.a", "i-1"))
        doc.set(entry("aws_vm.b", ""))  # mid-replacement checkpoint shape
        assert doc.by_resource_id("").address.name == "b"
        assert doc.by_resource_id("i-1").address.name == "a"

    def test_instances_of_index_tracks_mutations(self):
        doc = StateDocument()
        doc.set(entry("aws_vm.web[1]", "r-b"))
        doc.set(entry("aws_vm.web[0]", "r-a"))
        assert [e.resource_id for e in doc.instances_of("aws_vm", "web")] == [
            "r-a",
            "r-b",
        ]
        doc.set(entry("aws_vm.web[2]", "r-c"))
        doc.remove(ResourceAddress.parse("aws_vm.web[0]"))
        assert [e.resource_id for e in doc.instances_of("aws_vm", "web")] == [
            "r-b",
            "r-c",
        ]
        assert doc.instances_of("aws_vm", "other") == []

    def test_copy_is_o1_shared_until_write(self):
        doc = StateDocument()
        for i in range(50):
            doc.set(entry(f"aws_vm.v{i}", f"r-{i}"))
        dup = doc.copy()
        # shared entry map, shared (identical) entries
        assert dup.entries_map() is doc.entries_map()
        addr = ResourceAddress.parse("aws_vm.v0")
        assert dup.get(addr) is doc.get(addr)
        # first write on the copy unshares the map, not the entries
        dup.set(entry("aws_vm.new", "r-new"))
        assert dup.entries_map() is not doc.entries_map()
        assert dup.get(addr) is doc.get(addr)
        assert len(doc) == 50 and len(dup) == 51

    def test_json_round_trip(self):
        doc = StateDocument(serial=4)
        doc.set(entry("aws_vm.web[0]", attrs={"name": "w", "n": 2, "l": [1]}))
        doc.outputs["ip"] = "1.2.3.4"
        restored = StateDocument.from_json(doc.to_json())
        assert restored.serial == 4
        assert restored.outputs == {"ip": "1.2.3.4"}
        original = doc.get(ResourceAddress.parse("aws_vm.web[0]"))
        copy = restored.get(ResourceAddress.parse("aws_vm.web[0]"))
        assert copy.attrs == original.attrs

    def test_copies_are_isolated(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", attrs={"tags": {"a": 1}}))
        dup = doc.copy()
        stored = dup.get(ResourceAddress.parse("aws_vpc.main"))
        dup.set(stored.replace(attrs={"tags": {"a": 9}}))
        dup.remove(ResourceAddress.parse("aws_vpc.main")) is not None
        # mutations on the copy never reach the original
        assert doc.get(ResourceAddress.parse("aws_vpc.main")).attrs == {
            "tags": {"a": 1}
        }

    def test_stored_entries_are_sealed(self):
        from repro.state import ImmutableEntryError

        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        stored = doc.get(ResourceAddress.parse("aws_vpc.main"))
        with pytest.raises(ImmutableEntryError):
            stored.attrs = {"name": "mutated"}
        with pytest.raises(ImmutableEntryError):
            stored.resource_id = "other"
        # replace() hands back a mutable successor sharing unchanged fields
        successor = stored.replace(region="eu-west-1")
        assert successor.region == "eu-west-1"
        assert successor.attrs is stored.attrs
        # copy() hands back a private deep copy
        private = stored.copy()
        private.attrs["name"] = "mine"
        assert stored.attrs["name"] == "x"


class TestStores:
    def test_memory_store_round_trip(self):
        store = MemoryStateStore()
        doc = store.read()
        doc.set(entry("aws_vpc.main"))
        doc.bump()
        store.write(doc)
        assert len(store.read()) == 1

    def test_memory_store_rejects_stale(self):
        store = MemoryStateStore()
        doc = store.read()
        doc.bump()
        store.write(doc)
        stale = StateDocument(serial=0)
        with pytest.raises(StaleStateError):
            store.write(stale)

    def test_file_store(self, tmp_path):
        path = str(tmp_path / "state.json")
        store = FileStateStore(path)
        assert len(store.read()) == 0  # missing file -> empty state
        doc = StateDocument(serial=1)
        doc.set(entry("aws_vpc.main"))
        store.write(doc)
        assert len(FileStateStore(path).read()) == 1


class TestSnapshots:
    def test_checkpoint_and_get(self):
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        snap = history.checkpoint(doc, {"main.clc": "x"}, timestamp=1.0)
        assert snap.version == 1
        assert history.latest().version == 1
        assert len(history.get(1).state) == 1

    def test_snapshots_are_isolated(self):
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        history.checkpoint(doc, {}, timestamp=1.0)
        doc.remove(ResourceAddress.parse("aws_vpc.main"))
        assert len(history.get(1).state) == 1

    def test_diff(self):
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        history.checkpoint(doc, {}, timestamp=1.0)
        doc.set(entry("aws_vm.web[0]"))
        vpc = doc.get(ResourceAddress.parse("aws_vpc.main"))
        doc.set(vpc.replace(attrs={"name": "renamed"}))
        history.checkpoint(doc, {}, timestamp=2.0)
        diff = history.diff(1, 2)
        assert diff.added == ["aws_vm.web[0]"]
        assert diff.changed == ["aws_vpc.main"]
        assert diff.removed == []

    def test_diff_sees_replacement_with_identical_attrs(self):
        # a delete->create replacement lands the same attrs under a new
        # resource_id; the diff must report it as changed, not empty
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vm.web", rid="i-old", attrs={"name": "x"}))
        history.checkpoint(doc, {}, timestamp=1.0)
        doc.remove(ResourceAddress.parse("aws_vm.web"))
        doc.set(entry("aws_vm.web", rid="i-new", attrs={"name": "x"}))
        history.checkpoint(doc, {}, timestamp=2.0)
        diff = history.diff(1, 2)
        assert diff.changed == ["aws_vm.web"]
        assert not diff.is_empty

    def test_config_hash_stability(self):
        history = SnapshotHistory()
        s1 = history.checkpoint(StateDocument(), {"a": "x"}, timestamp=0.0)
        s2 = history.checkpoint(StateDocument(), {"a": "x"}, timestamp=1.0)
        s3 = history.checkpoint(StateDocument(), {"a": "y"}, timestamp=2.0)
        assert s1.config_hash == s2.config_hash != s3.config_hash

    def test_missing_version(self):
        with pytest.raises(KeyError):
            SnapshotHistory().get(1)
        history = SnapshotHistory()
        history.checkpoint(StateDocument(), {}, timestamp=0.0)
        with pytest.raises(KeyError):
            history.diff(1, 2)

    def test_checkout_is_mutable_working_copy(self):
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", "vpc-1"))
        history.checkpoint(doc, {}, timestamp=1.0)
        working = history.checkout(1)
        working.remove(ResourceAddress.parse("aws_vpc.main"))
        # the snapshot itself is untouched
        assert len(history.get(1).state) == 1
        assert len(history.checkout(1)) == 1

    def test_delta_chain_reconstruction_across_keyframes(self):
        history = SnapshotHistory(keyframe_interval=3)
        doc = StateDocument()
        expected = []
        for i in range(10):
            doc.set(entry(f"aws_vm.v{i}", f"r-{i}", attrs={"step": i}))
            if i >= 3:
                doc.remove(ResourceAddress.parse(f"aws_vm.v{i - 3}"))
            doc.bump()
            history.checkpoint(doc, {}, timestamp=float(i))
            expected.append(doc.to_json())
        # drop the materialisation cache to force true delta replay
        history._docs = {}
        for i in range(10):
            assert history.checkout(i + 1).to_json() == expected[i], f"v{i + 1}"

    def test_export_import_records_round_trip(self):
        history = SnapshotHistory(keyframe_interval=3)
        doc = StateDocument()
        for i in range(8):
            doc.set(entry(f"aws_vm.v{i}", f"r-{i}"))
            doc.outputs["last"] = i
            doc.bump()
            history.checkpoint(doc, {"main.clc": f"v{i}"}, timestamp=float(i))
        data = history.export_records()
        # deltas really are deltas: only keyframes carry full documents
        keyframes = [item for item in data if "state" in item]
        deltas = [item for item in data if "delta" in item]
        assert keyframes and deltas
        assert all(len(d["delta"]["set"]) <= 2 for d in deltas)
        restored = SnapshotHistory.import_records(data)
        assert restored.versions() == history.versions()
        for v in history.versions():
            assert restored.checkout(v).to_json() == history.checkout(v).to_json()
            assert restored.get(v).config_sources == history.get(v).config_sources


class TestJournalStore:
    def _doc(self, n=3, serial=1):
        doc = StateDocument(serial=serial)
        for i in range(n):
            doc.set(entry(f"aws_vm.v{i}", f"r-{i}"))
        return doc

    def test_round_trip_and_journal_growth(self, tmp_path):
        from repro.state import JournalStateStore

        path = str(tmp_path / "state.json")
        store = JournalStateStore(path, compact_threshold=100)
        assert len(store.read()) == 0
        doc = self._doc(3, serial=1)
        store.write(doc)
        doc = doc.copy()
        doc.set(entry("aws_vm.v3", "r-3"))
        doc.bump()
        store.write(doc)
        # two appended deltas, no keyframe written yet
        journal = (tmp_path / "state.json.journal").read_text().splitlines()
        assert len(journal) == 2
        assert not (tmp_path / "state.json").exists()
        # a fresh store replays the journal
        fresh = JournalStateStore(path)
        assert fresh.read().to_json() == doc.to_json()

    def test_compaction_folds_journal_into_keyframe(self, tmp_path):
        from repro.state import JournalStateStore

        path = str(tmp_path / "state.json")
        store = JournalStateStore(path, compact_threshold=3)
        doc = StateDocument()
        for i in range(7):
            doc = doc.copy()
            doc.set(entry(f"aws_vm.v{i}", f"r-{i}"))
            doc.bump()
            store.write(doc)
        journal = (tmp_path / "state.json.journal").read_text().splitlines()
        assert len(journal) == 1  # 7 writes, compacted at 3 and 6
        assert (tmp_path / "state.json").exists()
        assert JournalStateStore(path).read().to_json() == doc.to_json()

    def test_stale_journal_replay_is_idempotent(self, tmp_path):
        # crash between keyframe replace and journal truncate: replaying
        # the already-folded journal over the new keyframe is a no-op
        from repro.state import JournalStateStore

        path = str(tmp_path / "state.json")
        store = JournalStateStore(path, compact_threshold=100)
        doc = self._doc(4, serial=2)
        store.write(doc)
        stale_journal = (tmp_path / "state.json.journal").read_text()
        store.compact()
        (tmp_path / "state.json.journal").write_text(stale_journal)
        assert JournalStateStore(path).read().to_json() == doc.to_json()

    def test_rejects_stale_serial(self, tmp_path):
        from repro.state import JournalStateStore

        path = str(tmp_path / "state.json")
        store = JournalStateStore(path)
        store.write(self._doc(1, serial=5))
        with pytest.raises(StaleStateError):
            store.write(self._doc(1, serial=4))


class TestLockManagers:
    def test_global_lock_excludes_everyone(self):
        locks = GlobalLockManager()
        assert locks.try_acquire("t1", {"a"}, 0.0)
        assert not locks.try_acquire("t2", {"b"}, 0.0)  # disjoint but blocked
        locks.release("t1")
        assert locks.try_acquire("t2", {"b"}, 0.0)

    def test_resource_locks_allow_disjoint(self):
        locks = ResourceLockManager()
        assert locks.try_acquire("t1", {"a", "b"}, 0.0)
        assert locks.try_acquire("t2", {"c"}, 0.0)
        assert not locks.try_acquire("t3", {"b", "c"}, 0.0)  # overlaps both

    def test_all_or_nothing(self):
        locks = ResourceLockManager()
        locks.try_acquire("t1", {"a"}, 0.0)
        assert not locks.try_acquire("t2", {"a", "b"}, 0.0)
        # b must not be held after the failed acquisition
        assert locks.try_acquire("t3", {"b"}, 0.0)

    def test_conflicts_with(self):
        locks = ResourceLockManager()
        locks.try_acquire("t1", {"a"}, 0.0)
        assert locks.conflicts_with({"a", "z"}) == {"t1"}
        assert locks.conflicts_with({"z"}) == set()

    def test_double_acquire_rejected(self):
        locks = ResourceLockManager()
        locks.try_acquire("t1", {"a"}, 0.0)
        with pytest.raises(RuntimeError):
            locks.try_acquire("t1", {"b"}, 0.0)


class TestTransactions:
    def make_db(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", "vpc-1"))
        return StateDatabase(doc, ResourceLockManager())

    def test_commit_applies(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vpc.main", "aws_vm.web"}, now=0.0)
        txn.set(entry("aws_vm.web", "i-1"))
        txn.commit(now=1.0)
        assert db.document.get(ResourceAddress.parse("aws_vm.web")) is not None
        assert db.locks.holders() == []

    def test_abort_discards(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vm.web"}, now=0.0)
        txn.set(entry("aws_vm.web", "i-1"))
        txn.abort()
        assert db.document.get(ResourceAddress.parse("aws_vm.web")) is None

    def test_touching_unlocked_key_rejected(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vm.web"}, now=0.0)
        with pytest.raises(TransactionError):
            txn.set(entry("aws_vpc.main"))

    def test_conflicting_begin_returns_none(self):
        db = self.make_db()
        db.begin("t1", {"aws_vpc.main"}, now=0.0)
        assert db.begin("t2", {"aws_vpc.main"}, now=0.0) is None

    def test_reads_are_copies(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vpc.main"}, now=0.0)
        got = txn.read(ResourceAddress.parse("aws_vpc.main"))
        got.attrs["name"] = "mutated"
        assert (
            db.document.get(ResourceAddress.parse("aws_vpc.main")).attrs["name"]
            == "x"
        )
        txn.abort()

    def test_history_recorded(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vpc.main"}, now=0.0)
        txn.read(ResourceAddress.parse("aws_vpc.main"))
        txn.remove(ResourceAddress.parse("aws_vpc.main"))
        txn.commit(now=2.0)
        assert len(db.history) == 1
        assert db.history[0].read_set == {"aws_vpc.main"}
        assert db.history[0].write_set == {"aws_vpc.main"}


class TestSerializability:
    def test_disjoint_history_serializable(self):
        db = StateDatabase(StateDocument(), ResourceLockManager())
        t1 = db.begin("t1", {"a.b"}, now=0.0)
        t1.set(entry("a.b"))
        t1.commit(now=1.0)
        t2 = db.begin("t2", {"c.d"}, now=0.5)
        t2.set(entry("c.d"))
        t2.commit(now=1.5)
        assert SerializabilityChecker.is_serializable(db.history)

    def test_two_phase_locked_history_serializable(self):
        db = StateDatabase(StateDocument(), ResourceLockManager())
        for i in range(5):
            txn = db.begin(f"t{i}", {"shared.key"}, now=float(i))
            txn.set(entry("shared.key", f"r-{i}"))
            txn.commit(now=float(i) + 0.5)
        assert SerializabilityChecker.is_serializable(db.history)

    @pytest.mark.parametrize("seed", [0, 1, 2, 17])
    def test_500_txn_history_matches_reference(self, seed):
        """Key-indexed checker agrees with the frozen all-pairs oracle.

        Random 500-transaction histories with overlapping intervals and
        contended keys.
        """
        import random

        from repro.state.transactions import CommittedTransaction

        rng = random.Random(seed)
        keys = [f"k{i}.r" for i in range(40)]
        history = []
        for i in range(500):
            begin = rng.uniform(0, 1000)
            wset = set(rng.sample(keys, rng.randrange(0, 3)))
            rset = set(rng.sample(keys, rng.randrange(0, 4))) | wset
            history.append(
                CommittedTransaction(
                    txn_id=f"t{i}",
                    read_set=rset,
                    write_set=wset,
                    begin_at=begin,
                    commit_at=begin + rng.uniform(0.01, 50),
                )
            )
        got = SerializabilityChecker.is_serializable(history)
        want = SerializabilityChecker.is_serializable_reference(history)
        assert got == want

    def test_cyclic_history_rejected_by_both(self):
        # With sane clocks (begin < commit) the precedence relation
        # follows wall time and can never cycle. Skewed clocks break
        # that invariant: each txn here "commits" before the other
        # "begins", producing t1 -> t2 -> t1. Both checkers must reject.
        from repro.state.transactions import CommittedTransaction

        history = [
            CommittedTransaction(
                "t1", {"a.r"}, {"a.r"}, begin_at=5.0, commit_at=0.0
            ),
            CommittedTransaction(
                "t2", {"a.r"}, {"a.r"}, begin_at=1.0, commit_at=2.0
            ),
        ]
        assert not SerializabilityChecker.is_serializable(history)
        assert not SerializabilityChecker.is_serializable_reference(history)

    def test_500_txn_lock_manager_history_serializable(self):
        # a real 2PL-produced history over 500 txns must pass the fast
        # checker (near-linear: disjoint keys never pair up)
        db = StateDatabase(StateDocument(), ResourceLockManager())
        for i in range(500):
            key = f"slot{i % 25}.r"
            txn = db.begin(f"t{i}", {key}, now=float(i))
            txn.set(entry(key, f"r-{i}"))
            txn.commit(now=float(i) + 0.5)
        assert len(db.history) == 500
        assert SerializabilityChecker.is_serializable(db.history)
        assert SerializabilityChecker.is_serializable_reference(db.history)
