"""State document, stores, snapshots, locks, transactions."""

import pytest

from repro.addressing import ResourceAddress, managed
from repro.state import (
    FileStateStore,
    GlobalLockManager,
    MemoryStateStore,
    ResourceLockManager,
    ResourceState,
    SerializabilityChecker,
    SnapshotHistory,
    StaleStateError,
    StateDatabase,
    StateDocument,
    TransactionError,
)


def entry(addr_text, rid="r-1", attrs=None):
    return ResourceState(
        address=ResourceAddress.parse(addr_text),
        resource_id=rid,
        provider="aws",
        attrs=attrs or {"name": "x"},
        region="us-east-1",
    )


class TestAddressing:
    def test_round_trip(self):
        cases = [
            "aws_vpc.main",
            "aws_vm.web[3]",
            'aws_vm.web["blue"]',
            "data.aws_region.current",
            "module.net.aws_subnet.front[0]",
            "module.a.module.b.azure_disk.d",
        ]
        for text in cases:
            assert str(ResourceAddress.parse(text)) == text

    def test_config_address_strips_key(self):
        addr = managed("aws_vm", "web", 3)
        assert str(addr.config_address) == "aws_vm.web"

    def test_ordering(self):
        a = managed("aws_vm", "web", 1)
        b = managed("aws_vm", "web", 10)
        assert a < b  # numeric, not lexicographic

    def test_invalid(self):
        with pytest.raises(ValueError):
            ResourceAddress.parse("justonepart")


class TestStateDocument:
    def test_set_get_remove(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        assert doc.get(ResourceAddress.parse("aws_vpc.main")) is not None
        assert len(doc) == 1
        doc.remove(ResourceAddress.parse("aws_vpc.main"))
        assert len(doc) == 0

    def test_instances_of(self):
        doc = StateDocument()
        doc.set(entry("aws_vm.web[1]", "r-b"))
        doc.set(entry("aws_vm.web[0]", "r-a"))
        doc.set(entry("aws_vm.other", "r-c"))
        instances = doc.instances_of("aws_vm", "web")
        assert [e.resource_id for e in instances] == ["r-a", "r-b"]

    def test_by_resource_id(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", "vpc-7"))
        assert doc.by_resource_id("vpc-7").address.type == "aws_vpc"
        assert doc.by_resource_id("nope") is None

    def test_json_round_trip(self):
        doc = StateDocument(serial=4)
        doc.set(entry("aws_vm.web[0]", attrs={"name": "w", "n": 2, "l": [1]}))
        doc.outputs["ip"] = "1.2.3.4"
        restored = StateDocument.from_json(doc.to_json())
        assert restored.serial == 4
        assert restored.outputs == {"ip": "1.2.3.4"}
        original = doc.get(ResourceAddress.parse("aws_vm.web[0]"))
        copy = restored.get(ResourceAddress.parse("aws_vm.web[0]"))
        assert copy.attrs == original.attrs

    def test_copy_is_deep(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", attrs={"tags": {"a": 1}}))
        dup = doc.copy()
        dup.get(ResourceAddress.parse("aws_vpc.main")).attrs["tags"]["a"] = 9
        assert doc.get(ResourceAddress.parse("aws_vpc.main")).attrs["tags"]["a"] == 1


class TestStores:
    def test_memory_store_round_trip(self):
        store = MemoryStateStore()
        doc = store.read()
        doc.set(entry("aws_vpc.main"))
        doc.bump()
        store.write(doc)
        assert len(store.read()) == 1

    def test_memory_store_rejects_stale(self):
        store = MemoryStateStore()
        doc = store.read()
        doc.bump()
        store.write(doc)
        stale = StateDocument(serial=0)
        with pytest.raises(StaleStateError):
            store.write(stale)

    def test_file_store(self, tmp_path):
        path = str(tmp_path / "state.json")
        store = FileStateStore(path)
        assert len(store.read()) == 0  # missing file -> empty state
        doc = StateDocument(serial=1)
        doc.set(entry("aws_vpc.main"))
        store.write(doc)
        assert len(FileStateStore(path).read()) == 1


class TestSnapshots:
    def test_checkpoint_and_get(self):
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        snap = history.checkpoint(doc, {"main.clc": "x"}, timestamp=1.0)
        assert snap.version == 1
        assert history.latest().version == 1
        assert len(history.get(1).state) == 1

    def test_snapshots_are_isolated(self):
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        history.checkpoint(doc, {}, timestamp=1.0)
        doc.remove(ResourceAddress.parse("aws_vpc.main"))
        assert len(history.get(1).state) == 1

    def test_diff(self):
        history = SnapshotHistory()
        doc = StateDocument()
        doc.set(entry("aws_vpc.main"))
        history.checkpoint(doc, {}, timestamp=1.0)
        doc.set(entry("aws_vm.web[0]"))
        doc.get(ResourceAddress.parse("aws_vpc.main")).attrs["name"] = "renamed"
        history.checkpoint(doc, {}, timestamp=2.0)
        diff = history.diff(1, 2)
        assert diff.added == ["aws_vm.web[0]"]
        assert diff.changed == ["aws_vpc.main"]
        assert diff.removed == []

    def test_config_hash_stability(self):
        history = SnapshotHistory()
        s1 = history.checkpoint(StateDocument(), {"a": "x"}, timestamp=0.0)
        s2 = history.checkpoint(StateDocument(), {"a": "x"}, timestamp=1.0)
        s3 = history.checkpoint(StateDocument(), {"a": "y"}, timestamp=2.0)
        assert s1.config_hash == s2.config_hash != s3.config_hash

    def test_missing_version(self):
        with pytest.raises(KeyError):
            SnapshotHistory().get(1)


class TestLockManagers:
    def test_global_lock_excludes_everyone(self):
        locks = GlobalLockManager()
        assert locks.try_acquire("t1", {"a"}, 0.0)
        assert not locks.try_acquire("t2", {"b"}, 0.0)  # disjoint but blocked
        locks.release("t1")
        assert locks.try_acquire("t2", {"b"}, 0.0)

    def test_resource_locks_allow_disjoint(self):
        locks = ResourceLockManager()
        assert locks.try_acquire("t1", {"a", "b"}, 0.0)
        assert locks.try_acquire("t2", {"c"}, 0.0)
        assert not locks.try_acquire("t3", {"b", "c"}, 0.0)  # overlaps both

    def test_all_or_nothing(self):
        locks = ResourceLockManager()
        locks.try_acquire("t1", {"a"}, 0.0)
        assert not locks.try_acquire("t2", {"a", "b"}, 0.0)
        # b must not be held after the failed acquisition
        assert locks.try_acquire("t3", {"b"}, 0.0)

    def test_conflicts_with(self):
        locks = ResourceLockManager()
        locks.try_acquire("t1", {"a"}, 0.0)
        assert locks.conflicts_with({"a", "z"}) == {"t1"}
        assert locks.conflicts_with({"z"}) == set()

    def test_double_acquire_rejected(self):
        locks = ResourceLockManager()
        locks.try_acquire("t1", {"a"}, 0.0)
        with pytest.raises(RuntimeError):
            locks.try_acquire("t1", {"b"}, 0.0)


class TestTransactions:
    def make_db(self):
        doc = StateDocument()
        doc.set(entry("aws_vpc.main", "vpc-1"))
        return StateDatabase(doc, ResourceLockManager())

    def test_commit_applies(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vpc.main", "aws_vm.web"}, now=0.0)
        txn.set(entry("aws_vm.web", "i-1"))
        txn.commit(now=1.0)
        assert db.document.get(ResourceAddress.parse("aws_vm.web")) is not None
        assert db.locks.holders() == []

    def test_abort_discards(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vm.web"}, now=0.0)
        txn.set(entry("aws_vm.web", "i-1"))
        txn.abort()
        assert db.document.get(ResourceAddress.parse("aws_vm.web")) is None

    def test_touching_unlocked_key_rejected(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vm.web"}, now=0.0)
        with pytest.raises(TransactionError):
            txn.set(entry("aws_vpc.main"))

    def test_conflicting_begin_returns_none(self):
        db = self.make_db()
        db.begin("t1", {"aws_vpc.main"}, now=0.0)
        assert db.begin("t2", {"aws_vpc.main"}, now=0.0) is None

    def test_reads_are_copies(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vpc.main"}, now=0.0)
        got = txn.read(ResourceAddress.parse("aws_vpc.main"))
        got.attrs["name"] = "mutated"
        assert (
            db.document.get(ResourceAddress.parse("aws_vpc.main")).attrs["name"]
            == "x"
        )
        txn.abort()

    def test_history_recorded(self):
        db = self.make_db()
        txn = db.begin("t1", {"aws_vpc.main"}, now=0.0)
        txn.read(ResourceAddress.parse("aws_vpc.main"))
        txn.remove(ResourceAddress.parse("aws_vpc.main"))
        txn.commit(now=2.0)
        assert len(db.history) == 1
        assert db.history[0].read_set == {"aws_vpc.main"}
        assert db.history[0].write_set == {"aws_vpc.main"}


class TestSerializability:
    def test_disjoint_history_serializable(self):
        db = StateDatabase(StateDocument(), ResourceLockManager())
        t1 = db.begin("t1", {"a.b"}, now=0.0)
        t1.set(entry("a.b"))
        t1.commit(now=1.0)
        t2 = db.begin("t2", {"c.d"}, now=0.5)
        t2.set(entry("c.d"))
        t2.commit(now=1.5)
        assert SerializabilityChecker.is_serializable(db.history)

    def test_two_phase_locked_history_serializable(self):
        db = StateDatabase(StateDocument(), ResourceLockManager())
        for i in range(5):
            txn = db.begin(f"t{i}", {"shared.key"}, now=float(i))
            txn.set(entry("shared.key", f"r-{i}"))
            txn.commit(now=float(i) + 0.5)
        assert SerializabilityChecker.is_serializable(db.history)
