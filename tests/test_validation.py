"""Validation pipeline: levels, provider rules, specification mining."""

import pytest

from repro.lang import Configuration
from repro.validate import (
    DeploymentExample,
    LEVEL_RULES,
    LEVEL_SYNTAX,
    LEVEL_TYPES,
    RuleEngine,
    SpecificationMiner,
    ValidationContext,
    ValidationPipeline,
    validate,
)
from repro.workloads import ConfigMutator, hub_spoke, web_tier

AZURE_STACK = """
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "eastus"
}
resource "azure_virtual_network" "v" {
  name              = "v"
  resource_group_id = azure_resource_group.rg.id
  location          = "eastus"
  address_spaces    = ["10.0.0.0/16"]
}
resource "azure_subnet" "sn" {
  name           = "sn"
  vnet_id        = azure_virtual_network.v.id
  address_prefix = "10.0.1.0/24"
}
resource "azure_network_interface" "n1" {
  name      = "n1"
  subnet_id = azure_subnet.sn.id
  location  = "eastus"
}
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "eastus"
  nic_ids  = [azure_network_interface.n1.id]
}
"""


class TestLevels:
    def test_valid_config_passes_all_levels(self):
        for level in (LEVEL_SYNTAX, LEVEL_TYPES, LEVEL_RULES):
            assert validate(AZURE_STACK, level=level).ok

    def test_syntax_error_caught_at_syntax(self):
        report = validate("resource { broken", level=LEVEL_SYNTAX)
        assert not report.ok

    def test_region_mismatch_needs_rules_level(self):
        bad = AZURE_STACK.replace(
            'location = "eastus"\n  nic_ids', 'location = "westus2"\n  nic_ids'
        )
        assert validate(bad, level=LEVEL_SYNTAX).ok
        assert validate(bad, level=LEVEL_TYPES).ok
        report = validate(bad, level=LEVEL_RULES)
        assert not report.ok
        assert any(d.code == "AZR001" for d in report.errors)

    def test_stage_errors_attribution(self):
        bad = AZURE_STACK.replace(
            'location = "eastus"\n  nic_ids', 'location = "westus2"\n  nic_ids'
        )
        report = validate(bad, level=LEVEL_RULES)
        assert report.stage_errors["syntax"] == 0
        assert report.stage_errors["types"] == 0
        assert report.stage_errors["rules"] == 1


class TestProviderRules:
    def run_rules(self, source):
        return validate(source, level=LEVEL_RULES)

    def test_password_rule(self):
        bad = AZURE_STACK.replace(
            'nic_ids  = [azure_network_interface.n1.id]',
            'nic_ids  = [azure_network_interface.n1.id]\n'
            '  admin_password = "hunter2!"',
        )
        report = self.run_rules(bad)
        assert any(d.code == "AZR002" for d in report.errors)

    def test_subnet_outside_vnet(self):
        bad = AZURE_STACK.replace('"10.0.1.0/24"', '"192.168.1.0/24"')
        report = self.run_rules(bad)
        assert any(d.code == "AZR003" for d in report.errors)

    def test_sibling_subnet_overlap(self):
        bad = AZURE_STACK + (
            'resource "azure_subnet" "sn2" {\n'
            '  name           = "sn2"\n'
            "  vnet_id        = azure_virtual_network.v.id\n"
            '  address_prefix = "10.0.1.0/25"\n'
            "}\n"
        )
        report = self.run_rules(bad)
        assert any(d.code == "AZR003" for d in report.errors)

    def test_peering_overlap(self):
        bad = AZURE_STACK + (
            'resource "azure_virtual_network" "v2" {\n'
            '  name              = "v2"\n'
            "  resource_group_id = azure_resource_group.rg.id\n"
            '  location          = "eastus"\n'
            '  address_spaces    = ["10.0.0.0/20"]\n'
            "}\n"
            'resource "azure_vnet_peering" "p" {\n'
            '  name      = "p"\n'
            "  vnet_a_id = azure_virtual_network.v.id\n"
            "  vnet_b_id = azure_virtual_network.v2.id\n"
            "}\n"
        )
        report = self.run_rules(bad)
        assert any(d.code == "AZR004" for d in report.errors)

    def test_aws_subnet_rules(self):
        report = self.run_rules(
            web_tier(web_vms=1, app_vms=1).replace(
                "cidrsubnet(aws_vpc.web.cidr_block, 8, 1)", '"172.16.0.0/24"'
            )
        )
        assert any(d.code == "AWS001" for d in report.errors)

    def test_duplicate_name_rule(self):
        report = self.run_rules(
            'resource "aws_s3_bucket" "a" { name = "same" }\n'
            'resource "aws_s3_bucket" "b" { name = "same" }\n'
        )
        assert any(d.code == "GEN001" for d in report.errors)

    def test_dangling_reference_rule(self):
        report = self.run_rules(
            'resource "aws_network_interface" "n" {\n'
            '  name      = "n"\n'
            "  subnet_id = aws_subnet.ghost.id\n"
            "}\n"
        )
        assert not report.ok

    def test_healthy_workloads_pass(self):
        for source in (web_tier(), hub_spoke()):
            report = validate(source, level=LEVEL_RULES)
            assert report.ok, str(report)


class TestMutatorsAreCaught:
    """Every planted mutation is caught at (or before) its labeled level."""

    @pytest.mark.parametrize(
        "kind",
        [
            "unknown_attr",
            "bad_enum",
            "wrong_ref_type",
            "drop_required",
            "invalid_cidr",
            "bad_region",
            "region_mismatch",
            "cidr_outside_parent",
            "password_rule",
        ],
    )
    def test_mutation_caught(self, kind):
        source = web_tier() + hub_spoke(name="hub2")
        mutator = ConfigMutator(seed=3)
        config = Configuration.parse(source)
        mutation = mutator.apply_kind(config, kind)
        report = ValidationPipeline(level=mutation.catchable_at).validate(config)
        assert not report.ok, f"{kind} escaped validation"

    @pytest.mark.parametrize(
        "kind", ["region_mismatch", "cidr_outside_parent", "password_rule"]
    )
    def test_rule_level_mutations_pass_type_level(self, kind):
        """The ablation: cross-resource bugs slip past type checking."""
        source = web_tier() + hub_spoke(name="hub2")
        config = Configuration.parse(source)
        ConfigMutator(seed=3).apply_kind(config, kind)
        assert ValidationPipeline(level=LEVEL_TYPES).validate(config).ok


class TestSpecificationMining:
    def healthy_examples(self, n=4):
        examples = []
        for i in range(n):
            config = Configuration.parse(hub_spoke(spokes=1, name=f"h{i}"))
            examples.append(DeploymentExample.from_config(config))
        return examples

    def test_mines_location_equality(self):
        miner = SpecificationMiner(min_support=3)
        rules = miner.mine(self.healthy_examples())
        descriptions = [r.info.description for r in rules]
        assert any(
            "azure_virtual_machine.location" in d and "nic_ids" in d
            for d in descriptions
        )

    def test_mined_rules_catch_region_mismatch(self):
        miner = SpecificationMiner(min_support=3)
        rules = miner.mine(self.healthy_examples())
        bad = AZURE_STACK.replace(
            'location = "eastus"\n  nic_ids', 'location = "westus2"\n  nic_ids'
        )
        ctx = ValidationContext.build(Configuration.parse(bad))
        sink = RuleEngine(rules).run(ctx)
        assert sink.has_errors()

    def test_mined_rules_accept_healthy_config(self):
        miner = SpecificationMiner(min_support=3)
        rules = miner.mine(self.healthy_examples())
        ctx = ValidationContext.build(Configuration.parse(AZURE_STACK))
        sink = RuleEngine(rules).run(ctx)
        assert not sink.has_errors()

    def test_insufficient_support_yields_nothing(self):
        miner = SpecificationMiner(min_support=100)
        assert miner.mine(self.healthy_examples()) == []
