"""Tests for later additions: variable validation blocks, DOT export,
and the importer-fidelity property."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import CloudGateway
from repro.core import CloudlessEngine
from repro.lang import CLCEvalError, Configuration, ModuleContext
from repro.porting import StructuredImporter, verify_fidelity
from repro.workloads import web_tier

VALIDATED = """
variable "n" {
  type    = number
  default = 3
  validation {
    condition     = var.n > 0 && var.n <= 10
    error_message = "n must be between 1 and 10"
  }
}
variable "env" {
  type    = string
  default = "dev"
  validation {
    condition     = contains(["dev", "staging", "prod"], var.env)
    error_message = "env must be dev, staging, or prod"
  }
}
"""


class TestVariableValidation:
    def test_default_passes(self):
        ModuleContext(Configuration.parse(VALIDATED))

    def test_good_values_pass(self):
        ModuleContext(
            Configuration.parse(VALIDATED), variables={"n": 10, "env": "prod"}
        )

    def test_bad_number_rejected_with_message(self):
        with pytest.raises(CLCEvalError) as err:
            ModuleContext(Configuration.parse(VALIDATED), variables={"n": 99})
        assert "between 1 and 10" in str(err.value)

    def test_bad_enum_rejected(self):
        with pytest.raises(CLCEvalError) as err:
            ModuleContext(
                Configuration.parse(VALIDATED), variables={"env": "yolo"}
            )
        assert "env must be" in str(err.value)

    def test_validation_can_reference_other_variables(self):
        cfg = Configuration.parse(
            'variable "lo" { default = 1 }\n'
            'variable "hi" {\n'
            "  default = 5\n"
            "  validation {\n"
            "    condition     = var.hi > var.lo\n"
            '    error_message = "hi must exceed lo"\n'
            "  }\n"
            "}\n"
        )
        ModuleContext(cfg)
        with pytest.raises(CLCEvalError):
            ModuleContext(cfg, variables={"lo": 9, "hi": 5})

    def test_missing_condition_is_config_error(self):
        cfg = Configuration.parse(
            'variable "x" {\n  validation {\n    error_message = "?"\n  }\n}\n'
        )
        assert cfg.diagnostics.has_errors()

    def test_engine_surfaces_validation_as_engine_error(self):
        from repro.core import EngineError

        engine = CloudlessEngine(seed=40)
        with pytest.raises(EngineError) as err:
            engine.apply(
                VALIDATED + 'resource "aws_s3_bucket" "b" { name = "x" }\n',
                variables={"n": 50},
                validate_first=False,
                admit=False,
            )
        assert "between 1 and 10" in str(err.value)
        assert engine.gateway.total_api_calls() == 0  # nothing reached the cloud


class TestDotExport:
    def test_plan_dot_contains_nodes_edges_and_colors(self):
        engine = CloudlessEngine(seed=41)
        plan = engine.plan(web_tier(web_vms=1, app_vms=1))
        dot = plan.to_dot()
        assert dot.startswith('digraph "plan"')
        assert '"aws_vpc.web"' in dot
        assert '"aws_vpc.web" -> "aws_subnet.web_front"' in dot
        assert 'color="green"' in dot  # everything is a create

    def test_delete_nodes_included(self):
        engine = CloudlessEngine(seed=42)
        assert engine.apply('resource "aws_s3_bucket" "b" { name = "x" }\n').ok
        plan = engine.plan("")
        dot = plan.to_dot()
        assert '"aws_s3_bucket.b"' in dot

    def test_dag_dot_custom_labels(self):
        from repro.graph import Dag

        dag = Dag()
        dag.add_edge("a", "b")
        dot = dag.to_dot(label=lambda n: n.upper())
        assert 'label="A"' in dot


class TestImporterFidelityProperty:
    """Property: whatever estate exists, the structured import plans as
    a no-op against its own generated state."""

    @given(
        buckets=st.integers(0, 4),
        ladder=st.integers(0, 4),
        named=st.lists(
            st.sampled_from(["api", "worker", "cron", "batch", "edge"]),
            unique=True,
            max_size=4,
        ),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_estates_round_trip(self, buckets, ladder, named, seed):
        gateway = CloudGateway.simulated(seed=1000 + seed)
        plane = gateway.planes["aws"]
        for i in range(buckets):
            plane.external_create(
                "aws_s3_bucket", {"name": f"bkt-{i}"}, "us-east-1"
            )
        if ladder:
            vpc = plane.external_create(
                "aws_vpc", {"name": "net", "cidr_block": "10.0.0.0/16"}, "us-east-1"
            )
            for i in range(ladder):
                plane.external_create(
                    "aws_subnet",
                    {
                        "name": f"sub-{i}",
                        "vpc_id": vpc,
                        "cidr_block": f"10.0.{i}.0/24",
                    },
                    "us-east-1",
                )
        for env in named:
            plane.external_create(
                "aws_iam_role", {"name": f"role-{env}"}, "us-east-1"
            )
        project = StructuredImporter().import_estate(gateway)
        if len(gateway.all_records()) == 0:
            return
        result = verify_fidelity(project)
        assert result.ok, (result.error, project.main_source)
