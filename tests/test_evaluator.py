"""Expression evaluator unit tests."""

import pytest

from repro.lang.diagnostics import CLCEvalError
from repro.lang.evaluator import Evaluator, Scope
from repro.lang.parser import parse_expression_source
from repro.lang.values import UNKNOWN, Unknown


def ev(source, bindings=None):
    scope = Scope(bindings=bindings or {})
    return Evaluator(scope).evaluate(parse_expression_source(source))


class TestArithmetic:
    def test_basic_math(self):
        assert ev("1 + 2") == 3
        assert ev("10 - 4") == 6
        assert ev("3 * 4") == 12
        assert ev("10 / 4") == 2.5
        assert ev("10 % 3") == 1

    def test_division_by_zero(self):
        with pytest.raises(CLCEvalError):
            ev("1 / 0")

    def test_unary_minus(self):
        assert ev("-(2 + 3)") == -5

    def test_arithmetic_rejects_strings(self):
        with pytest.raises(CLCEvalError):
            ev('"a" + "b"')

    def test_int_preservation(self):
        assert ev("2 * 3") == 6
        assert isinstance(ev("2 * 3"), int)


class TestComparisonAndLogic:
    def test_comparisons(self):
        assert ev("1 < 2") is True
        assert ev("2 <= 2") is True
        assert ev("3 > 4") is False
        assert ev("1 >= 1") is True

    def test_equality_across_number_types(self):
        assert ev("1 == 1.0") is True
        assert ev('1 == "1"') is False
        assert ev("true == 1") is False

    def test_logic(self):
        assert ev("true && false") is False
        assert ev("true || false") is True
        assert ev("!true") is False

    def test_short_circuit(self):
        # the right side would error if evaluated
        assert ev("false && (1 / 0 == 0)") is False
        assert ev("true || (1 / 0 == 0)") is True

    def test_logic_requires_bools(self):
        with pytest.raises(CLCEvalError):
            ev("1 && 2")


class TestConditionals:
    def test_branches(self):
        assert ev("true ? 1 : 2") == 1
        assert ev("false ? 1 : 2") == 2

    def test_condition_must_be_bool(self):
        with pytest.raises(CLCEvalError):
            ev('"yes" ? 1 : 2')

    def test_lazy_branches(self):
        assert ev("true ? 1 : 1 / 0") == 1


class TestCollections:
    def test_list_and_index(self):
        assert ev("[1, 2, 3][1]") == 2

    def test_index_out_of_range(self):
        with pytest.raises(CLCEvalError):
            ev("[1][5]")

    def test_object_and_key(self):
        assert ev('{ a = 1 }["a"]') == 1

    def test_missing_key(self):
        with pytest.raises(CLCEvalError):
            ev('{ a = 1 }["b"]')

    def test_attr_access_on_map(self):
        assert ev("{ a = 41 }.a") == 41

    def test_splat(self):
        scope = {"vms": [{"id": "a"}, {"id": "b"}]}
        assert ev("vms[*].id", scope) == ["a", "b"]

    def test_splat_on_single_value(self):
        assert ev("vm[*].id", {"vm": {"id": "x"}}) == ["x"]

    def test_splat_on_null(self):
        assert ev("vm[*]", {"vm": None}) == []


class TestForExpressions:
    def test_list_comprehension(self):
        assert ev("[for x in [1, 2, 3] : x * 10]") == [10, 20, 30]

    def test_list_with_condition(self):
        assert ev("[for x in [1, 2, 3, 4] : x if x % 2 == 0]") == [2, 4]

    def test_list_with_index(self):
        assert ev('[for i, x in ["a", "b"] : "${i}-${x}"]') == ["0-a", "1-b"]

    def test_map_comprehension(self):
        result = ev('{ for x in ["a", "b"] : x => upper(x) }')
        assert result == {"a": "A", "b": "B"}

    def test_map_over_map(self):
        result = ev("{ for k, v in { x = 1, y = 2 } : k => v * 2 }")
        assert result == {"x": 2, "y": 4}

    def test_duplicate_key_rejected(self):
        with pytest.raises(CLCEvalError):
            ev('{ for x in ["a", "a"] : x => 1 }')

    def test_grouping(self):
        result = ev('{ for x in ["a", "a", "b"] : x => x... }')
        assert result == {"a": ["a", "a"], "b": ["b"]}


class TestTemplates:
    def test_interpolation(self):
        assert ev('"n-${1 + 1}"') == "n-2"

    def test_bool_rendering(self):
        assert ev('"${true}"') == "true"

    def test_null_renders_empty(self):
        assert ev('"${x}"', {"x": None}) == ""


class TestUnknownPropagation:
    def test_unknown_through_arithmetic(self):
        assert isinstance(ev("x + 1", {"x": UNKNOWN}), Unknown)

    def test_unknown_through_template(self):
        assert isinstance(ev('"a-${x}"', {"x": UNKNOWN}), Unknown)

    def test_unknown_origin_preserved_in_template(self):
        u = Unknown("aws_vpc.main")
        result = ev('"a-${x}"', {"x": u})
        assert result.origin == "aws_vpc.main"

    def test_unknown_through_function(self):
        assert isinstance(ev("upper(x)", {"x": UNKNOWN}), Unknown)

    def test_unknown_through_conditional(self):
        assert isinstance(ev("x ? 1 : 2", {"x": UNKNOWN}), Unknown)

    def test_unknown_through_attr_access(self):
        assert isinstance(ev("x.name", {"x": UNKNOWN}), Unknown)

    def test_known_logic_dominates_unknown(self):
        assert ev("false && x", {"x": UNKNOWN}) is False
        assert ev("true || x", {"x": UNKNOWN}) is True


class TestScopes:
    def test_child_scope_overlay(self):
        base = Scope(bindings={"a": 1, "b": 2})
        child = base.child({"a": 10})
        assert child.resolve_root("a") == 10
        assert child.resolve_root("b") == 2

    def test_unknown_identifier(self):
        with pytest.raises(CLCEvalError):
            ev("nope")
