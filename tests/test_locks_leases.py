"""Lease-fenced locks: TTL expiry, heartbeats, fencing tokens, zombies."""

import math
import random
import threading

import pytest

from repro.cloud import CloudAPIError
from repro.cloud.gateway import CloudGateway
from repro.state import (
    GlobalLockManager,
    ResourceLockManager,
    StaleLeaseError,
    StateDatabase,
    StateDocument,
)
from repro.update import UpdateCoordinator, UpdateRequest
from repro.update.coordinator import FencedGateway


class TestLeases:
    def test_no_ttl_never_expires(self):
        locks = ResourceLockManager()
        grant = locks.try_acquire("a", {"k"}, now=0.0)
        assert grant is not None
        assert grant.expires_at == math.inf
        assert locks.conflicts_with({"k"}, now=1e12) == {"a"}

    def test_expired_lease_frees_keys(self):
        locks = ResourceLockManager()
        assert locks.try_acquire("a", {"k"}, now=0.0, ttl=30.0) is not None
        # before expiry the keys are held
        assert locks.try_acquire("b", {"k"}, now=29.0, ttl=30.0) is None
        # at/after expiry the grant lapses and the next acquirer wins
        grant = locks.try_acquire("b", {"k"}, now=30.0, ttl=30.0)
        assert grant is not None and grant.holder == "b"
        assert locks.holders() == ["b"]

    def test_renew_extends_lease(self):
        locks = ResourceLockManager()
        locks.try_acquire("a", {"k"}, now=0.0, ttl=30.0)
        assert locks.renew("a", now=20.0, ttl=30.0) is not None
        # the heartbeat pushed expiry to t=50; t=40 still conflicts
        assert locks.try_acquire("b", {"k"}, now=40.0) is None

    def test_renew_after_expiry_does_not_resurrect(self):
        locks = ResourceLockManager()
        locks.try_acquire("a", {"k"}, now=0.0, ttl=30.0)
        assert locks.renew("a", now=31.0, ttl=30.0) is None
        grant = locks.try_acquire("b", {"k"}, now=31.0)
        assert grant is not None and grant.holder == "b"

    def test_fencing_tokens_are_monotonic(self):
        locks = ResourceLockManager()
        first = locks.try_acquire("a", {"k"}, now=0.0, ttl=10.0)
        second = locks.try_acquire("b", {"k"}, now=10.0, ttl=10.0)
        assert second.fencing_token > first.fencing_token

    def test_check_fence_rejects_zombie(self):
        locks = ResourceLockManager()
        old = locks.try_acquire("a", {"k"}, now=0.0, ttl=10.0)
        # lease lapses; "a" is a zombie that still believes it holds k
        assert locks.check_fence("a", old.fencing_token, now=10.0) is False
        new = locks.try_acquire("b", {"k"}, now=10.0, ttl=10.0)
        assert locks.check_fence("b", new.fencing_token, now=15.0) is True
        assert locks.check_fence("a", old.fencing_token, now=15.0) is False

    def test_global_lock_leases(self):
        locks = GlobalLockManager()
        assert locks.try_acquire("a", {"x"}, now=0.0, ttl=5.0) is not None
        assert locks.try_acquire("b", {"y"}, now=1.0) is None  # one big lock
        grant = locks.try_acquire("b", {"y"}, now=5.0)
        assert grant is not None and grant.holder == "b"


class TestReleaseNoOp:
    """Satellite: ``release()`` is a no-op for unknown/expired holders."""

    @pytest.mark.parametrize("cls", [GlobalLockManager, ResourceLockManager])
    def test_release_unknown_holder(self, cls):
        locks = cls()
        locks.release("ghost")  # must not raise
        locks.try_acquire("a", {"k"}, now=0.0)
        locks.release("ghost")
        assert locks.holders() == ["a"]

    @pytest.mark.parametrize("cls", [GlobalLockManager, ResourceLockManager])
    def test_release_with_stale_fence_is_ignored(self, cls):
        locks = cls()
        old = locks.try_acquire("a", {"k"}, now=0.0, ttl=10.0)
        # lease lapsed; "b" takes over under a fresh fence
        new = locks.try_acquire("b", {"k"}, now=10.0, ttl=10.0)
        assert new is not None
        # the zombie tries to release with its stale token (same holder
        # name scenario needs the same holder -- use b's name, a's token)
        locks.release("b", fencing_token=old.fencing_token)
        assert locks.holders() == ["b"]  # still held
        locks.release("b", fencing_token=new.fencing_token)
        assert locks.holders() == []

    def test_release_after_expiry_is_noop(self):
        locks = ResourceLockManager()
        locks.try_acquire("a", {"k"}, now=0.0, ttl=10.0)
        new = locks.try_acquire("b", {"k"}, now=10.0)  # sweeps "a"
        assert new is not None
        locks.release("a")  # expired holder: nothing to do, no raise
        assert locks.holders() == ["b"]
        assert locks.held_keys("b") == frozenset({"k"})


class TestDatabaseFencing:
    def test_commit_with_lapsed_lease_raises_stale(self):
        doc = StateDocument()
        db = StateDatabase(doc, ResourceLockManager(), lease_ttl=30.0)
        txn = db.begin("t1", {"aws_vpc.main"}, now=0.0)
        assert txn is not None
        with pytest.raises(StaleLeaseError):
            txn.commit(100.0)  # lease long gone
        assert txn.status == "aborted"

    def test_renewed_transaction_commits(self):
        doc = StateDocument()
        db = StateDatabase(doc, ResourceLockManager(), lease_ttl=30.0)
        txn = db.begin("t1", {"aws_vpc.main"}, now=0.0)
        assert db.renew("t1", now=20.0)
        txn.commit(40.0)  # within the renewed window
        assert txn.status == "committed"

    def test_no_ttl_keeps_legacy_semantics(self):
        doc = StateDocument()
        db = StateDatabase(doc, ResourceLockManager())
        txn = db.begin("t1", {"aws_vpc.main"}, now=0.0)
        txn.commit(1e9)
        assert txn.status == "committed"
        assert db.renew("whatever", 0.0) is True


class TestFencedGateway:
    def test_zombie_write_rejected_with_412(self):
        gateway = CloudGateway.simulated(seed=0)
        locks = ResourceLockManager()
        grant = locks.try_acquire("team-a", {"k"}, now=0.0, ttl=10.0)
        fenced = FencedGateway(
            gateway, locks, "team-a", grant.fencing_token, gateway.clock
        )
        # live lease: write passes through
        fenced.execute(
            "create", "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        gateway.clock.advance_to(11.0)  # lease lapses mid-update
        with pytest.raises(CloudAPIError) as err:
            fenced.execute(
                "create", "aws_vpc",
                attrs={"name": "net2", "cidr_block": "10.1.0.0/16"},
                region="us-east-1",
            )
        assert err.value.http_status == 412
        assert err.value.code == "StaleLeaseFence"
        # reads still pass (fencing guards mutations only)
        assert fenced.execute("list", "aws_vpc")["items"]


class TestCoordinatorWithLeases:
    def _request(self, team, clock, keys, crashes=False, cloud_ops=None):
        return UpdateRequest(
            team=team,
            submitted_at=clock,
            keys=keys,
            duration_s=60.0,
            cloud_ops=cloud_ops,
            crashes=crashes,
        )

    def test_crashed_holder_no_longer_deadlocks(self):
        gateway = CloudGateway.simulated(seed=0)
        response = gateway.execute(
            "create", "aws_vpc",
            attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
            region="us-east-1",
        )
        doc = StateDocument()
        coordinator = UpdateCoordinator(
            doc,
            ResourceLockManager(),
            clock=gateway.clock,
            gateway=gateway,
            lease_ttl=120.0,
        )

        def retag(gw):
            gw.execute(
                "update", "aws_vpc",
                resource_id=response["id"],
                attrs={"name": "net-v2"},
            )

        crasher = self._request(
            "team-dead", gateway.clock.now, {"aws_vpc.main"}, crashes=True
        )
        waiter = self._request(
            "team-live",
            gateway.clock.now + 1.0,
            {"aws_vpc.main"},
            cloud_ops=retag,
        )
        result = coordinator.run([crasher, waiter])
        # the dead team's lease expired and the waiter proceeded
        teams = [o.team for o in result.outcomes]
        assert teams == ["team-live"]
        assert any("team-dead" in e for e in result.errors)
        assert any("lease expired" in e for e in result.errors)
        # the waiter's cloud work landed
        record = gateway.find_record(response["id"])
        assert record.attrs["name"] == "net-v2"

    def test_without_leases_crash_deadlocks_forever(self):
        """The pre-lease failure mode the TTL removes: a crashed holder
        without a lease blocks every waiter until force-unlock."""
        gateway = CloudGateway.simulated(seed=0)
        doc = StateDocument()
        coordinator = UpdateCoordinator(
            doc,
            ResourceLockManager(),
            clock=gateway.clock,
            gateway=gateway,
        )
        crasher = self._request(
            "team-dead", gateway.clock.now, {"aws_vpc.main"}, crashes=True
        )
        waiter = self._request(
            "team-live", gateway.clock.now + 1.0, {"aws_vpc.main"}
        )
        result = coordinator.run([crasher, waiter])
        assert [o.team for o in result.outcomes] == []
        assert any("deadlock" in e or "crashed" in e for e in result.errors)

    def test_lease_ttl_none_preserves_event_stream(self):
        """Leases off == historical behavior, event for event."""
        outcomes = []
        for lease_ttl in (None,):
            gateway = CloudGateway.simulated(seed=0)
            doc = StateDocument()
            coordinator = UpdateCoordinator(
                doc,
                ResourceLockManager(),
                clock=gateway.clock,
                gateway=gateway,
                lease_ttl=lease_ttl,
            )
            result = coordinator.run(
                [
                    self._request("a", 0.0, {"x"}),
                    self._request("b", 1.0, {"x"}),
                    self._request("c", 2.0, {"y"}),
                ]
            )
            outcomes.append(
                [(o.team, o.acquired_at, o.completed_at) for o in result.outcomes]
            )
            assert result.serializable
        assert outcomes[0] == [
            ("a", 0.0, 60.0),
            ("b", 60.0, 120.0),
            ("c", 2.0, 62.0),
        ]

class TestCommitFenceRace:
    """Regression tests for the renewal/commit race.

    The bug class: a holder's lease lapses between its last fencing
    check and the commit write, the keys get re-granted to another
    holder, and the zombie's commit lands anyway (or the outcome
    depends on which observer swept the lapsed grant first). The
    commit-side fence validates-and-releases atomically, so the result
    is a deterministic function of (ttl, commit time) alone.
    """

    def test_commit_at_exact_expiry_is_stale(self):
        # a lease granted [0, ttl) is dead AT ttl, not merely after it
        locks = ResourceLockManager()
        grant = locks.try_acquire("t1", {"k"}, now=0.0, ttl=30.0)
        assert locks.commit_fence("t1", grant.fencing_token, now=30.0) is False
        assert locks.holders() == []

    def test_commit_just_inside_ttl_wins_and_releases(self):
        locks = ResourceLockManager()
        grant = locks.try_acquire("t1", {"k"}, now=0.0, ttl=30.0)
        assert locks.commit_fence("t1", grant.fencing_token, now=29.999)
        # the fence surrendered the grant: the keys are free immediately
        regrant = locks.try_acquire("t2", {"k"}, now=29.999, ttl=30.0)
        assert regrant is not None
        assert regrant.fencing_token > grant.fencing_token

    def test_zombie_commit_after_regrant_cannot_win(self):
        locks = ResourceLockManager()
        old = locks.try_acquire("t1", {"k"}, now=0.0, ttl=10.0)
        new = locks.try_acquire("t2", {"k"}, now=20.0, ttl=10.0)
        assert new is not None
        # the zombie presents its (valid-looking) token; the fence says no
        assert locks.commit_fence("t1", old.fencing_token, now=21.0) is False
        # and the live holder is untouched by the zombie's failed commit
        assert locks.commit_fence("t2", new.fencing_token, now=22.0) is True

    def test_lapsed_grant_dropped_regardless_of_observer_order(self):
        """Eager expiry: whichever path observes a lapsed grant first
        drops it, so the outcome never depends on sweep scheduling."""
        for observer in ("commit", "check", "acquire", "conflicts"):
            locks = ResourceLockManager()
            grant = locks.try_acquire("t1", {"k"}, now=0.0, ttl=10.0)
            if observer == "commit":
                assert not locks.commit_fence("t1", grant.fencing_token, 11.0)
            elif observer == "check":
                assert not locks.check_fence("t1", grant.fencing_token, 11.0)
            elif observer == "acquire":
                assert locks.try_acquire("t2", {"k"}, now=11.0) is not None
            else:
                assert locks.conflicts_with({"k"}, now=11.0) == set()
            # in every ordering the zombie's grant is gone afterwards
            assert "t1" not in locks.holders(), observer

    def test_seeded_interleavings_are_deterministic(self):
        """200 seeded (ttl, commit-time) pairs: the commit outcome is
        exactly `commit < expiry`, and no grants survive either way."""
        rng = random.Random(1234)
        for trial in range(200):
            ttl = rng.uniform(1.0, 60.0)
            t_commit = rng.uniform(0.0, 90.0)
            locks = ResourceLockManager()
            grant = locks.try_acquire(
                f"t{trial}", {"k"}, now=0.0, ttl=ttl
            )
            ok = locks.commit_fence(
                f"t{trial}", grant.fencing_token, now=t_commit
            )
            assert ok == (t_commit < ttl), (trial, ttl, t_commit)
            assert locks.holders() == [], (trial, ttl, t_commit)

    def test_threaded_commits_straddling_expiry(self):
        """Many threads race commits around the expiry boundary through
        the full StateDatabase path: each either commits cleanly or gets
        a deterministic StaleLeaseError -- never a silent zombie write
        -- and the lock table ends empty."""
        doc = StateDocument()
        db = StateDatabase(doc, ResourceLockManager(), lease_ttl=10.0)
        rng = random.Random(99)
        plans = [
            (f"txn-{i}", rng.uniform(5.0, 15.0)) for i in range(24)
        ]
        outcomes = {}

        def run_one(txn_id, commit_at):
            txn = db.begin(txn_id, {f"aws_vpc.{txn_id}"}, now=0.0)
            assert txn is not None
            try:
                txn.commit(commit_at)
                outcomes[txn_id] = "committed"
            except StaleLeaseError:
                outcomes[txn_id] = "stale"

        threads = [
            threading.Thread(target=run_one, args=plan) for plan in plans
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for txn_id, commit_at in plans:
            expected = "committed" if commit_at < 10.0 else "stale"
            assert outcomes[txn_id] == expected, (txn_id, commit_at)
        assert db.locks.holders() == []
