"""End-to-end lifecycle through the CloudlessEngine facade (Figure 1b)."""

import pytest

from repro.core import CloudlessEngine, EngineError
from repro.graph.plan import Action
from repro.policy import budget_policy
from repro.porting import verify_fidelity
from repro.workloads import hub_spoke, vpn_site, web_tier


class TestApplyLifecycle:
    def test_validate_plan_apply(self, engine, figure2_source):
        report = engine.validate(figure2_source)
        assert report.ok
        plan = engine.plan(figure2_source)
        assert plan.summary()["create"] == 4
        result = engine.apply(figure2_source)
        assert result.ok
        assert len(engine.state) == 4
        assert result.snapshot_version == 1

    def test_invalid_config_never_reaches_cloud(self, engine):
        bad = 'resource "azure_virtual_machine" "vm" {\n  name = "v"\n}\n'
        result = engine.apply(bad)
        assert not result.ok
        assert result.validation is not None and not result.validation.ok
        assert result.apply is None
        assert engine.gateway.total_api_calls() == 0

    def test_idempotent_reapply(self, engine):
        source = web_tier(web_vms=2, app_vms=1)
        first = engine.apply(source)
        calls_after_first = engine.gateway.total_api_calls()
        second = engine.apply(source)
        assert second.ok
        assert second.plan.is_empty
        # the no-op re-apply issued zero additional write calls
        assert engine.gateway.total_api_calls() == calls_after_first

    def test_grow_and_shrink(self, engine):
        engine.apply(web_tier(web_vms=2))
        grow = engine.apply(web_tier(web_vms=5))
        assert grow.ok
        assert grow.plan.summary()["create"] == 6  # 3 VMs + 3 NICs
        shrink = engine.apply(web_tier(web_vms=1))
        assert shrink.ok
        assert shrink.plan.summary()["delete"] == 8

    def test_destroy(self, engine):
        engine.apply(web_tier())
        result = engine.destroy()
        assert result.ok
        assert len(engine.state) == 0
        assert engine.gateway.planes["aws"].count() == 0

    def test_multi_cloud_apply(self, engine):
        result = engine.apply(web_tier(web_vms=1, app_vms=1) + hub_spoke(spokes=1, with_gateway=False))
        assert result.ok
        assert engine.gateway.planes["aws"].count() > 0
        assert engine.gateway.planes["azure"].count() > 0

    def test_variables_flow_through(self, engine):
        result = engine.apply(vpn_site(), variables={"tunnel_count": 3})
        assert result.ok
        assert engine.gateway.planes["aws"].count("aws_vpn_tunnel") == 3

    def test_executor_selection(self):
        for name in ("sequential", "best-effort", "critical-path"):
            engine = CloudlessEngine(seed=90, executor=name)
            assert engine.apply(web_tier(web_vms=1, app_vms=0, with_lb=False, with_db=False)).ok
        with pytest.raises(EngineError):
            CloudlessEngine(seed=90, executor="quantum").apply(web_tier())


class TestLifecycleIntegration:
    def test_full_story(self):
        """develop -> validate -> deploy -> drift -> repair -> rollback."""
        engine = CloudlessEngine(seed=91)
        engine.controller.register(budget_policy(max_monthly_usd=1e6))

        # deploy v1
        v1 = engine.apply(web_tier(web_vms=2))
        assert v1.ok

        # out-of-band change appears in the watch loop
        vm = next(
            e
            for e in engine.state.resources()
            if e.address.type == "aws_virtual_machine"
        )
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "xlarge"}, actor="intern"
        )
        run = engine.watch()
        assert [f.kind for f in run.findings] == ["modified"]

        # reconcile back to golden state
        report = engine.reconcile(run.findings)
        assert all(a.ok for a in report.actions)

        # scale up, then roll back via the time machine
        v2 = engine.apply(web_tier(web_vms=4))
        assert v2.ok
        rollback = engine.rollback(v1.snapshot_version)
        assert rollback.ok
        assert (
            engine.gateway.planes["aws"].count("aws_virtual_machine") == 4
        )  # 2 web + 2 app (web_tier's default app tier)

    def test_import_then_manage(self):
        """The 3.1 porting path: ClickOps estate adopted into IaC."""
        engine = CloudlessEngine(seed=92)
        plane = engine.gateway.planes["aws"]
        vpc_id = plane.external_create(
            "aws_vpc", {"name": "legacy", "cidr_block": "10.0.0.0/16"}, "us-east-1"
        )
        for i in range(3):
            plane.external_create(
                "aws_subnet",
                {
                    "name": f"legacy-{i}",
                    "vpc_id": vpc_id,
                    "cidr_block": f"10.0.{i}.0/24",
                },
                "us-east-1",
            )
        project = engine.import_estate(adopt=True)
        assert len(engine.state) == 4
        assert verify_fidelity(project).ok
        # the imported program plans clean against the adopted state
        plan = engine.plan(project.sources)
        assert plan.is_empty

    def test_failure_produces_diagnoses(self):
        engine = CloudlessEngine(seed=93)
        bad = (
            'resource "azure_resource_group" "rg" {\n'
            '  name = "rg"\n  location = "eastus"\n}\n'
            'resource "azure_virtual_network" "v" {\n'
            '  name = "v"\n'
            "  resource_group_id = azure_resource_group.rg.id\n"
            '  location = "eastus"\n'
            '  address_spaces = ["10.0.0.0/16"]\n'
            "}\n"
            'resource "azure_subnet" "s" {\n'
            '  name = "s"\n'
            "  vnet_id = azure_virtual_network.v.id\n"
            '  address_prefix = "10.0.1.0/24"\n'
            "}\n"
            'resource "azure_network_interface" "n" {\n'
            '  name = "n"\n'
            "  subnet_id = azure_subnet.s.id\n"
            '  location = "westeurope"\n'
            "}\n"
            'resource "azure_virtual_machine" "vm" {\n'
            '  name = "vm"\n'
            '  location = "eastus"\n'
            "  nic_ids = [azure_network_interface.n.id]\n"
            "}\n"
        )
        result = engine.apply(bad, validate_first=False)
        assert not result.ok
        assert result.diagnoses
        assert result.diagnoses[0].confidence > 0.5

    def test_history_accumulates(self):
        engine = CloudlessEngine(seed=94)
        engine.apply(web_tier(web_vms=1))
        engine.apply(web_tier(web_vms=2))
        engine.apply(web_tier(web_vms=3))
        assert engine.history.versions() == [1, 2, 3]
        diff = engine.history.diff(1, 3)
        assert len(diff.added) == 4  # 2 VMs + 2 NICs
