"""Value-model unit tests (coercion, unknowns, equality)."""

import pytest

from repro.lang.values import (
    UNKNOWN,
    Unknown,
    coerce_to_type,
    collect_unknown_origins,
    deep_copy_value,
    is_unknown,
    to_string,
    type_name,
    values_equal,
)


class TestUnknowns:
    def test_identity_by_origin(self):
        assert Unknown("a") == Unknown("a")
        assert Unknown("a") != Unknown("b")
        assert hash(Unknown("a")) == hash(Unknown("a"))

    def test_is_unknown_nested(self):
        assert is_unknown(UNKNOWN)
        assert is_unknown([1, UNKNOWN])
        assert is_unknown({"a": {"b": UNKNOWN}}) is False or True  # dicts
        assert is_unknown({"a": UNKNOWN})
        assert not is_unknown([1, "x", {"a": 2}])

    def test_collect_origins(self):
        value = {"a": Unknown("x"), "b": [Unknown("y"), 1], "c": "z"}
        assert collect_unknown_origins(value) == {"x", "y"}

    def test_anonymous_unknown_contributes_no_origin(self):
        assert collect_unknown_origins([UNKNOWN]) == set()


class TestTypeNames:
    def test_names(self):
        assert type_name(None) == "null"
        assert type_name(True) == "bool"
        assert type_name(1) == "number"
        assert type_name(1.5) == "number"
        assert type_name("x") == "string"
        assert type_name([]) == "list"
        assert type_name({}) == "map"
        assert type_name(UNKNOWN) == "unknown"


class TestToString:
    def test_rendering(self):
        assert to_string(None) == ""
        assert to_string(True) == "true"
        assert to_string(False) == "false"
        assert to_string(3.0) == "3"
        assert to_string(3.5) == "3.5"
        assert to_string(UNKNOWN) == "(known after apply)"


class TestCoercion:
    def test_string_coercions(self):
        assert coerce_to_type(5, "string") == "5"
        assert coerce_to_type(True, "string") == "true"
        with pytest.raises(TypeError):
            coerce_to_type([1], "string")

    def test_number_coercions(self):
        assert coerce_to_type("42", "number") == 42
        assert coerce_to_type("4.5", "number") == 4.5
        with pytest.raises(TypeError):
            coerce_to_type(True, "number")
        with pytest.raises(TypeError):
            coerce_to_type("abc", "number")

    def test_bool_coercions(self):
        assert coerce_to_type("true", "bool") is True
        with pytest.raises(TypeError):
            coerce_to_type("yep", "bool")

    def test_container_coercions(self):
        assert coerce_to_type(["1", "2"], "list(number)") == [1, 2]
        assert coerce_to_type({"a": 1}, "map(string)") == {"a": "1"}
        with pytest.raises(TypeError):
            coerce_to_type("not-a-list", "list")
        with pytest.raises(TypeError):
            coerce_to_type([1], "map")

    def test_any_passthrough(self):
        sentinel = object()
        assert coerce_to_type(sentinel, "any") is sentinel

    def test_unknown_passthrough(self):
        assert coerce_to_type(UNKNOWN, "number") is UNKNOWN

    def test_unknown_constraint(self):
        with pytest.raises(TypeError):
            coerce_to_type(1, "quaternion")


class TestEquality:
    def test_number_coercion(self):
        assert values_equal(1, 1.0)
        assert not values_equal(1, True)
        assert not values_equal(0, False)

    def test_deep_structures(self):
        assert values_equal({"a": [1, 2.0]}, {"a": [1.0, 2]})
        assert not values_equal({"a": 1}, {"a": 1, "b": 2})
        assert not values_equal([1, 2], [2, 1])

    def test_deep_copy_isolation(self):
        original = {"a": [1, {"b": 2}]}
        copy = deep_copy_value(original)
        copy["a"][1]["b"] = 9
        assert original["a"][1]["b"] == 2
