"""Parser unit tests."""

import pytest

from repro.lang.ast_nodes import (
    AttrAccess,
    BinaryOp,
    Conditional,
    ForExpr,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ScopeRef,
    SplatExpr,
    TemplateExpr,
    UnaryOp,
)
from repro.lang.diagnostics import CLCSyntaxError
from repro.lang.parser import parse_expression_source, parse_file


def expr(source):
    return parse_expression_source(source)


class TestExpressions:
    def test_literals(self):
        assert expr("42").value == 42
        assert expr('"hi"').value == "hi"
        assert expr("true").value is True
        assert expr("false").value is False
        assert expr("null").value is None

    def test_traversal(self):
        node = expr("aws_vpc.main.id")
        assert isinstance(node, AttrAccess)
        assert node.name == "id"
        assert isinstance(node.obj, AttrAccess)
        assert isinstance(node.obj.obj, ScopeRef)
        assert node.obj.obj.name == "aws_vpc"

    def test_index_access(self):
        node = expr("items[3]")
        assert isinstance(node, IndexAccess)
        assert node.index.value == 3

    def test_legacy_numeric_traversal(self):
        node = expr("list.0")
        assert isinstance(node, IndexAccess)
        assert node.index.value == 0

    def test_splat(self):
        node = expr("aws_vm.web[*].id")
        assert isinstance(node, SplatExpr)
        assert node.attrs == ["id"]

    def test_attr_splat(self):
        node = expr("aws_vm.web.*.id")
        assert isinstance(node, SplatExpr)
        assert node.attrs == ["id"]

    def test_precedence(self):
        node = expr("1 + 2 * 3")
        assert isinstance(node, BinaryOp)
        assert node.op == "+"
        assert isinstance(node.right, BinaryOp)
        assert node.right.op == "*"

    def test_comparison_and_logic(self):
        node = expr("a > 1 && b < 2 || c == 3")
        assert isinstance(node, BinaryOp)
        assert node.op == "||"
        assert node.left.op == "&&"

    def test_unary(self):
        node = expr("!x")
        assert isinstance(node, UnaryOp)
        node = expr("-5")
        assert isinstance(node, UnaryOp)
        assert node.op == "-"

    def test_conditional(self):
        node = expr("x ? 1 : 2")
        assert isinstance(node, Conditional)
        assert node.then.value == 1
        assert node.otherwise.value == 2

    def test_nested_conditional(self):
        node = expr("a ? b ? 1 : 2 : 3")
        assert isinstance(node, Conditional)
        assert isinstance(node.then, Conditional)

    def test_parentheses(self):
        node = expr("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_function_call(self):
        node = expr("max(1, 2, 3)")
        assert isinstance(node, FunctionCall)
        assert node.name == "max"
        assert len(node.args) == 3

    def test_function_call_with_expansion(self):
        node = expr("min(items...)")
        assert node.expand_final is True

    def test_list_literal(self):
        node = expr("[1, 2, 3]")
        assert isinstance(node, ListExpr)
        assert len(node.items) == 3

    def test_empty_list(self):
        assert expr("[]").items == []

    def test_object_literal(self):
        node = expr('{ a = 1, b = "x" }')
        assert isinstance(node, ObjectExpr)
        assert len(node.entries) == 2
        assert node.entries[0][0].value == "a"

    def test_object_colon_separator(self):
        node = expr("{ a : 1 }")
        assert node.entries[0][1].value == 1

    def test_object_computed_key(self):
        node = expr("{ (var.key) = 1 }")
        key = node.entries[0][0]
        assert isinstance(key, AttrAccess)

    def test_template(self):
        node = expr('"a-${var.x}-b"')
        assert isinstance(node, TemplateExpr)
        assert len(node.parts) == 3

    def test_for_list(self):
        node = expr("[for x in items : x * 2]")
        assert isinstance(node, ForExpr)
        assert node.value_var == "x"
        assert not node.is_object

    def test_for_list_with_key(self):
        node = expr("[for i, x in items : x if i > 0]")
        assert node.key_var == "i"
        assert node.condition is not None

    def test_for_object(self):
        node = expr('{ for k, v in m : k => v }')
        assert node.is_object
        assert node.result_key is not None

    def test_for_object_grouping(self):
        node = expr("{ for x in items : x.key => x.value... }")
        assert node.grouping is True

    def test_error_on_garbage(self):
        with pytest.raises(CLCSyntaxError):
            expr("1 +")

    def test_error_on_trailing_tokens(self):
        with pytest.raises(CLCSyntaxError):
            expr("1 2")


class TestFileStructure:
    def test_attribute(self):
        f = parse_file("x = 1\n")
        assert f.body.attributes["x"].expr.value == 1

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(CLCSyntaxError):
            parse_file("x = 1\nx = 2\n")

    def test_block_with_labels(self):
        f = parse_file('resource "aws_vpc" "main" {\n  name = "x"\n}\n')
        block = f.body.blocks[0]
        assert block.type == "resource"
        assert block.labels == ["aws_vpc", "main"]
        assert block.body.attributes["name"].expr.value == "x"

    def test_empty_block(self):
        f = parse_file('data "aws_region" "current" {}\n')
        assert f.body.blocks[0].type == "data"

    def test_nested_blocks(self):
        f = parse_file(
            'resource "t" "n" {\n  lifecycle {\n    prevent_destroy = true\n  }\n}\n'
        )
        inner = f.body.blocks[0].body.blocks[0]
        assert inner.type == "lifecycle"

    def test_block_without_labels(self):
        f = parse_file("locals {\n  a = 1\n}\n")
        assert f.body.blocks[0].type == "locals"
        assert f.body.blocks[0].labels == []

    def test_unclosed_block(self):
        with pytest.raises(CLCSyntaxError):
            parse_file('resource "a" "b" {\n  x = 1\n')

    def test_multiline_list_attribute(self):
        f = parse_file('xs = [\n  1,\n  2,\n]\n')
        assert len(f.body.attributes["xs"].expr.items) == 2

    def test_figure2_shape(self, figure2_source):
        f = parse_file(figure2_source)
        types = [b.type for b in f.body.blocks]
        assert types.count("resource") == 4
        assert "data" in types
        assert "variable" in types

    def test_adjacent_attrs_without_newline_rejected(self):
        with pytest.raises(CLCSyntaxError):
            parse_file('a = 1 b = 2\n')
