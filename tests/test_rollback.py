"""Rollback: reversibility analysis, cascades, convergence (E4)."""

import pytest

from repro.core import CloudlessEngine
from repro.update import (
    NaiveRollback,
    ReversibilityAwareRollback,
    RollbackKind,
    measure_divergence,
)
from repro.workloads import web_tier


def deployed_engine(seed=40, **kwargs):
    engine = CloudlessEngine(seed=seed)
    result = engine.apply(web_tier(**kwargs))
    assert result.ok
    return engine, result.snapshot_version


def first_vm(engine):
    return next(
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    )


class TestPlanning:
    def test_clean_state_plans_nothing(self):
        engine, v1 = deployed_engine()
        planner = ReversibilityAwareRollback(engine.gateway)
        plan = planner.plan(engine.history.get(v1), engine.state)
        assert len(plan) == 0

    def test_updatable_drift_plans_update(self):
        engine, v1 = deployed_engine()
        vm = first_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"size": "xlarge"}
        )
        plan = ReversibilityAwareRollback(engine.gateway).plan(
            engine.history.get(v1), engine.state
        )
        kinds = {str(a.address): a.kind for a in plan.actions}
        assert kinds[str(vm.address)] is RollbackKind.UPDATE
        assert plan.redeployments == 0

    def test_shadow_drift_plans_replace(self):
        engine, v1 = deployed_engine()
        vm = first_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"network_settings": "custom-routes"}
        )
        plan = ReversibilityAwareRollback(engine.gateway).plan(
            engine.history.get(v1), engine.state
        )
        kinds = {str(a.address): a.kind for a in plan.actions}
        assert kinds[str(vm.address)] is RollbackKind.REPLACE
        assert any("out-of-band" in r for a in plan.actions for r in a.reasons)

    def test_immutable_drift_plans_replace(self):
        engine, v1 = deployed_engine()
        vm = first_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"image": "win-2022"}
        )
        plan = ReversibilityAwareRollback(engine.gateway).plan(
            engine.history.get(v1), engine.state
        )
        kinds = {str(a.address): a.kind for a in plan.actions}
        assert kinds[str(vm.address)] is RollbackKind.REPLACE

    def test_deleted_resource_plans_recreate(self):
        engine, v1 = deployed_engine()
        vm = first_vm(engine)
        engine.gateway.planes["aws"].external_delete(vm.resource_id)
        plan = ReversibilityAwareRollback(engine.gateway).plan(
            engine.history.get(v1), engine.state
        )
        kinds = {str(a.address): a.kind for a in plan.actions}
        assert kinds[str(vm.address)] is RollbackKind.RECREATE

    def test_new_resources_plan_delete(self):
        engine, v1 = deployed_engine(web_vms=2)
        engine.apply(web_tier(web_vms=4))
        plan = ReversibilityAwareRollback(engine.gateway).plan(
            engine.history.get(v1), engine.state
        )
        deletes = [a for a in plan.actions if a.kind is RollbackKind.DELETE]
        assert len(deletes) == 4  # 2 extra VMs + their 2 NICs

    def test_cascade_through_dependents(self):
        engine, v1 = deployed_engine()
        # shadow-modify a NIC: replacing it forces replacing its VM
        nic = next(
            e
            for e in engine.state.resources()
            if e.address.type == "aws_network_interface"
        )
        engine.gateway.planes["aws"].external_update(
            nic.resource_id, {"network_settings": "hacked"}
        )
        plan = ReversibilityAwareRollback(engine.gateway).plan(
            engine.history.get(v1), engine.state
        )
        cascaded = [a for a in plan.actions if a.cascaded]
        assert cascaded, "dependents of a replaced NIC must cascade"
        assert any(
            a.address.type == "aws_virtual_machine" for a in cascaded
        )


class TestConvergence:
    def scenario(self, seed):
        engine, v1 = deployed_engine(seed=seed)
        vm = first_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"network_settings": "custom"}
        )
        engine.apply(web_tier(web_vms=5))
        return engine, engine.history.get(v1)

    def test_aware_rollback_converges(self):
        engine, snapshot = self.scenario(seed=41)
        planner = ReversibilityAwareRollback(engine.gateway)
        plan = planner.plan(snapshot, engine.state)
        result = planner.execute(plan, engine.state)
        assert result.errors == []
        assert measure_divergence(engine.gateway, snapshot, engine.state) == 0

    def test_naive_rollback_leaves_divergence(self):
        engine, snapshot = self.scenario(seed=42)
        planner = NaiveRollback(engine.gateway)
        plan = planner.plan(snapshot, engine.state)
        planner.execute(plan, engine.state)
        assert measure_divergence(engine.gateway, snapshot, engine.state) > 0

    def test_aware_redeploys_only_what_it_must(self):
        engine, snapshot = self.scenario(seed=43)
        planner = ReversibilityAwareRollback(engine.gateway)
        plan = planner.plan(snapshot, engine.state)
        # only the shadow-drifted VM is redeployed (it has no dependents)
        assert plan.redeployments <= 2

    def test_engine_rollback_verb(self):
        engine, v1 = deployed_engine(seed=44)
        engine.apply(web_tier(web_vms=4))
        result = engine.rollback(v1)
        assert result.ok
        snapshot = engine.history.get(v1)
        assert measure_divergence(engine.gateway, snapshot, engine.state) == 0
        # rollback itself is checkpointed (the time machine grows)
        assert len(engine.history) >= 3


class TestCrashConsistency:
    """Faults mid-rollback must never corrupt state or duplicate
    resources; interrupted work surfaces as a resumable remainder."""

    def renamed_shadow_scenario(self, seed):
        """Shadow drift that also renamed the live VM -- the case where
        a rebuild whose destroy half fails would, without the guard,
        recreate the snapshot twin alongside the still-live original."""
        engine, v1 = deployed_engine(seed=seed)
        vm = first_vm(engine)
        engine.gateway.planes["aws"].external_update(
            vm.resource_id,
            {"name": "renamed-out-of-band", "network_settings": "custom"},
        )
        return engine, engine.history.get(v1), vm

    def vm_count(self, engine):
        return sum(
            1
            for r in engine.gateway.all_records()
            if r.type == "aws_virtual_machine"
        )

    def test_failed_destroy_skips_recreate(self):
        from repro.cloud import FaultSpec

        engine, snapshot, vm = self.renamed_shadow_scenario(seed=45)
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="DependencyViolation",
                message="resource is in use",
                match_type="aws_virtual_machine",
                match_operation="delete",
                transient=False,
                max_strikes=1,
            )
        )
        before = self.vm_count(engine)
        planner = ReversibilityAwareRollback(engine.gateway)
        plan = planner.plan(snapshot, engine.state)
        result = planner.execute(plan, engine.state)
        # regression: no duplicate twin under the same address
        assert self.vm_count(engine) == before
        assert str(vm.address) in result.remainder
        assert any("recreate skipped" in e for e in result.errors)
        # state still points at the live (undeleted) resource
        entry = engine.state.get(vm.address)
        assert engine.gateway.find_record(entry.resource_id) is not None

    def test_interrupted_recreate_checkpoints_and_resumes(self):
        from repro.cloud import FaultSpec

        engine, snapshot, vm = self.renamed_shadow_scenario(seed=46)
        engine.gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InsufficientCapacity",
                message="no capacity",
                match_type="aws_virtual_machine",
                match_operation="create",
                transient=False,
                max_strikes=1,
            )
        )
        planner = ReversibilityAwareRollback(engine.gateway)
        plan = planner.plan(snapshot, engine.state)
        result = planner.execute(plan, engine.state)
        assert str(vm.address) in result.remainder
        entry = engine.state.get(vm.address)
        # checkpoint: the destroy half landed, state must say so
        assert entry is not None and entry.resource_id == ""
        assert engine.gateway.find_record(vm.resource_id) is None
        # resume: re-plan against the same snapshot and run to done
        plan2 = planner.plan(snapshot, engine.state)
        result2 = planner.execute(plan2, engine.state)
        assert result2.errors == []
        assert result2.remainder == []
        assert measure_divergence(engine.gateway, snapshot, engine.state) == 0

    def test_transient_faults_absorbed_by_retry(self):
        from repro.cloud import FaultSpec

        engine, snapshot, vm = self.renamed_shadow_scenario(seed=47)
        for operation in ("delete", "create"):
            engine.gateway.planes["aws"].faults.add_rule(
                FaultSpec(
                    error_code="InternalServerError",
                    message="retry me",
                    match_type="aws_virtual_machine",
                    match_operation=operation,
                    transient=True,
                    max_strikes=1,
                )
            )
        planner = ReversibilityAwareRollback(engine.gateway)
        plan = planner.plan(snapshot, engine.state)
        result = planner.execute(plan, engine.state)
        assert result.errors == []
        assert result.remainder == []
        assert planner.gateway.stats.retries >= 2
        assert measure_divergence(engine.gateway, snapshot, engine.state) == 0
