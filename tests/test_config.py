"""Configuration-model tests (block classification, meta-arguments)."""

import pytest

from repro.lang.config import Configuration
from repro.lang.references import Reference


class TestVariables:
    def test_variable_with_type_and_default(self):
        cfg = Configuration.parse(
            'variable "n" {\n  type = number\n  default = 3\n}\n'
        )
        decl = cfg.variables["n"]
        assert decl.type_constraint == "number"
        assert decl.default.value == 3

    def test_variable_compound_type(self):
        cfg = Configuration.parse(
            'variable "xs" {\n  type = list(string)\n}\n'
        )
        assert cfg.variables["xs"].type_constraint == "list(string)"

    def test_duplicate_variable_is_error(self):
        cfg = Configuration.parse('variable "a" {}\nvariable "a" {}\n')
        assert cfg.diagnostics.has_errors()

    def test_invalid_type_constraint(self):
        cfg = Configuration.parse('variable "a" {\n  type = wibble\n}\n')
        assert cfg.diagnostics.has_errors()


class TestOutputsAndLocals:
    def test_output(self):
        cfg = Configuration.parse('output "x" {\n  value = 1\n}\n')
        assert "x" in cfg.outputs

    def test_output_requires_value(self):
        cfg = Configuration.parse('output "x" {}\n')
        assert cfg.diagnostics.has_errors()

    def test_locals(self):
        cfg = Configuration.parse("locals {\n  a = 1\n  b = 2\n}\n")
        assert set(cfg.locals) == {"a", "b"}

    def test_locals_merge_across_blocks(self):
        cfg = Configuration.parse(
            "locals {\n  a = 1\n}\nlocals {\n  b = 2\n}\n"
        )
        assert set(cfg.locals) == {"a", "b"}


class TestResources:
    def test_resource_classification(self):
        cfg = Configuration.parse(
            'resource "aws_vpc" "main" {\n  name = "x"\n  cidr_block = "10.0.0.0/16"\n}\n'
        )
        decl = cfg.resource("aws_vpc", "main")
        assert decl is not None
        assert decl.mode == "managed"
        assert "name" in decl.body.attributes

    def test_data_classification(self):
        cfg = Configuration.parse('data "aws_region" "r" {}\n')
        assert cfg.resource("aws_region", "r", mode="data") is not None

    def test_count_extracted(self):
        cfg = Configuration.parse(
            'resource "t" "n" {\n  count = 3\n  name = "x"\n}\n'
        )
        decl = cfg.resource("t", "n")
        assert decl.count is not None
        assert "count" not in decl.body.attributes

    def test_count_and_for_each_exclusive(self):
        cfg = Configuration.parse(
            'resource "t" "n" {\n  count = 1\n  for_each = ["a"]\n}\n'
        )
        assert cfg.diagnostics.has_errors()

    def test_depends_on(self):
        cfg = Configuration.parse(
            'resource "t" "n" {\n  depends_on = [aws_vpc.main]\n}\n'
        )
        decl = cfg.resource("t", "n")
        assert Reference("resource", "aws_vpc", "main") in decl.depends_on

    def test_lifecycle_options(self):
        cfg = Configuration.parse(
            'resource "t" "n" {\n'
            "  lifecycle {\n"
            "    prevent_destroy = true\n"
            '    ignore_changes = [tags]\n'
            "  }\n"
            "}\n"
        )
        decl = cfg.resource("t", "n")
        assert decl.lifecycle.prevent_destroy is True
        assert decl.lifecycle.ignore_changes == ["tags"]

    def test_provider_meta(self):
        cfg = Configuration.parse(
            'resource "t" "n" {\n  provider = aws.west\n}\n'
        )
        assert cfg.resource("t", "n").provider == "aws.west"

    def test_references_include_body_and_meta(self):
        cfg = Configuration.parse(
            'resource "t" "n" {\n'
            "  count = var.n\n"
            "  name  = local.prefix\n"
            "  vpc   = aws_vpc.main.id\n"
            "}\n"
        )
        refs = {str(r) for r in cfg.resource("t", "n").references()}
        assert refs == {"var.n", "local.prefix", "aws_vpc.main"}


class TestModulesAndProviders:
    def test_module_call(self):
        cfg = Configuration.parse(
            'module "net" {\n  source = "./net"\n  cidr = "10.0.0.0/16"\n}\n'
        )
        call = cfg.module_calls["net"]
        assert call.source == "./net"
        assert "cidr" in call.body.attributes
        assert "source" not in call.body.attributes

    def test_module_requires_literal_source(self):
        cfg = Configuration.parse('module "m" {\n  source = var.s\n}\n')
        assert cfg.diagnostics.has_errors()

    def test_provider_block_with_alias(self):
        cfg = Configuration.parse(
            'provider "aws" {\n  alias = "west"\n  region = "us-west-2"\n}\n'
        )
        assert "aws.west" in cfg.providers

    def test_unknown_block_type(self):
        cfg = Configuration.parse("gizmo {\n}\n")
        assert cfg.diagnostics.has_errors()

    def test_terraform_block_tolerated(self):
        cfg = Configuration.parse("terraform {\n  required_version = \"1.0\"\n}\n")
        assert not cfg.diagnostics.has_errors()


class TestMultiFile:
    def test_files_merge(self):
        cfg = Configuration.parse(
            {
                "a.clc": 'variable "x" { default = 1 }\n',
                "b.clc": 'resource "t" "n" {\n  v = var.x\n}\n',
            }
        )
        assert "x" in cfg.variables
        assert cfg.resource("t", "n") is not None
