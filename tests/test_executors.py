"""Executor tests: scheduling strategies, retries, failure handling."""

import pytest

from repro.cloud import CloudGateway, FaultSpec, SimClock
from repro.deploy import (
    BestEffortExecutor,
    CriticalPathExecutor,
    RetryPolicy,
    SequentialExecutor,
)
from repro.deploy.incremental import read_data_sources
from repro.graph import Planner, build_graph
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import microservices, web_tier


def plan_on(gateway, source, state=None):
    graph = build_graph(Configuration.parse(source))
    state = state if state is not None else StateDocument()
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    data = read_data_sources(gateway, graph, state)
    return planner.plan(graph, state, data_values=data)


class TestBasicApply:
    def test_creates_everything(self):
        gateway = CloudGateway.simulated(seed=1)
        plan = plan_on(gateway, web_tier(web_vms=2, app_vms=1))
        result = CriticalPathExecutor(gateway).apply(plan)
        assert result.ok
        assert len(result.state) == len(result.succeeded)
        assert gateway.planes["aws"].count("aws_virtual_machine") == 3

    def test_state_entries_carry_identity(self):
        gateway = CloudGateway.simulated(seed=1)
        plan = plan_on(gateway, web_tier(web_vms=1, app_vms=1, with_lb=False, with_db=False))
        result = CriticalPathExecutor(gateway).apply(plan)
        for entry in result.state.resources():
            assert entry.resource_id
            assert entry.provider == "aws"
            assert entry.attrs["id"] == entry.resource_id

    def test_dependencies_recorded_in_state(self):
        gateway = CloudGateway.simulated(seed=1)
        plan = plan_on(gateway, web_tier(web_vms=1, app_vms=1, with_lb=False, with_db=False))
        result = CriticalPathExecutor(gateway).apply(plan)
        from repro.addressing import ResourceAddress

        subnet = result.state.get(ResourceAddress.parse("aws_subnet.web_front"))
        assert "aws_vpc.web" in subnet.dependencies

    def test_second_apply_noop(self):
        gateway = CloudGateway.simulated(seed=1)
        src = web_tier(web_vms=2, app_vms=1)
        plan = plan_on(gateway, src)
        result = CriticalPathExecutor(gateway).apply(plan)
        plan2 = plan_on(gateway, src, result.state)
        assert plan2.is_empty

    def test_update_path(self):
        gateway = CloudGateway.simulated(seed=1)
        src = web_tier(web_vms=1, app_vms=1, with_lb=False, with_db=False)
        result = CriticalPathExecutor(gateway).apply(plan_on(gateway, src))
        bumped = src.replace('size    = "small"', 'size    = "large"')
        plan2 = plan_on(gateway, bumped, result.state)
        result2 = CriticalPathExecutor(gateway).apply(plan2)
        assert result2.ok
        vm = gateway.planes["aws"].find_by_name("aws_virtual_machine", "web-web-0")
        assert vm.attrs["size"] == "large"

    def test_delete_path(self):
        gateway = CloudGateway.simulated(seed=1)
        result = CriticalPathExecutor(gateway).apply(
            plan_on(gateway, web_tier(web_vms=1, app_vms=1))
        )
        plan2 = plan_on(gateway, "", result.state)
        result2 = CriticalPathExecutor(gateway).apply(plan2)
        assert result2.ok
        assert len(result2.state) == 0
        assert gateway.planes["aws"].count() == 0


class TestSchedulingStrategies:
    def test_parallel_beats_sequential(self):
        src = microservices(services=4, vms_per_service=2)
        g1 = CloudGateway.simulated(seed=3)
        seq = SequentialExecutor(g1).apply(plan_on(g1, src))
        g2 = CloudGateway.simulated(seed=3)
        cp = CriticalPathExecutor(g2).apply(plan_on(g2, src))
        assert seq.ok and cp.ok
        assert cp.makespan_s < seq.makespan_s / 2

    def test_critical_path_not_worse_than_best_effort(self):
        src = microservices(services=5, vms_per_service=2)
        g1 = CloudGateway.simulated(seed=4)
        be = BestEffortExecutor(g1, concurrency=4).apply(plan_on(g1, src))
        g2 = CloudGateway.simulated(seed=4)
        cp = CriticalPathExecutor(g2, concurrency=4).apply(plan_on(g2, src))
        assert be.ok and cp.ok
        assert cp.makespan_s <= be.makespan_s * 1.05

    def test_concurrency_limit_respected(self):
        gateway = CloudGateway.simulated(seed=5)
        plan = plan_on(gateway, microservices(services=4, vms_per_service=1))
        executor = BestEffortExecutor(gateway, concurrency=2)
        result = executor.apply(plan)
        # reconstruct max overlap from the operation records
        events = []
        for op in result.operations:
            events.append((op.t_submit, 1))
            events.append((op.t_complete, -1))
        events.sort()
        peak = cur = 0
        for _, delta in events:
            cur += delta
            peak = max(peak, cur)
        assert peak <= 2


class TestFailures:
    def test_permanent_failure_skips_descendants(self):
        gateway = CloudGateway.simulated(seed=6)
        gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InsufficientCapacity",
                message="no capacity",
                match_type="aws_subnet",
                transient=False,
                max_strikes=99,
            )
        )
        plan = plan_on(
            gateway, web_tier(web_vms=1, app_vms=1, with_lb=False, with_db=False)
        )
        result = CriticalPathExecutor(gateway).apply(plan)
        assert not result.ok
        assert any("aws_subnet" in k for k in result.failed)
        assert any("aws_virtual_machine" in k for k in result.skipped)
        # the VPC itself deployed fine
        assert "aws_vpc.web" in result.succeeded

    def test_transient_failure_retried(self):
        gateway = CloudGateway.simulated(seed=7)
        gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalError",
                message="retry me",
                match_type="aws_vpc",
                transient=True,
                max_strikes=2,
            )
        )
        plan = plan_on(gateway, 'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n')
        result = CriticalPathExecutor(
            gateway, retry=RetryPolicy(max_attempts=4, base_backoff_s=1.0)
        ).apply(plan)
        assert result.ok
        attempts = [op.attempt for op in result.operations if op.change_id == "aws_vpc.v"]
        assert max(attempts) == 3  # two faults then success

    def test_retries_exhausted(self):
        gateway = CloudGateway.simulated(seed=8)
        gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="InternalError",
                message="always",
                match_type="aws_vpc",
                transient=True,
                max_strikes=-1 if False else 99,
            )
        )
        plan = plan_on(gateway, 'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n')
        result = CriticalPathExecutor(
            gateway, retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0)
        ).apply(plan)
        assert not result.ok
        assert "aws_vpc.v" in result.failed

    def test_failed_apply_keeps_partial_state(self):
        gateway = CloudGateway.simulated(seed=9)
        gateway.planes["aws"].faults.add_rule(
            FaultSpec(
                error_code="Bad",
                message="nope",
                match_type="aws_virtual_machine",
                transient=False,
                max_strikes=99,
            )
        )
        plan = plan_on(
            gateway, web_tier(web_vms=1, app_vms=0, with_lb=False, with_db=False)
        )
        result = CriticalPathExecutor(gateway).apply(plan)
        assert not result.ok
        # networking survived in state even though the VM failed
        assert any(
            e.address.type == "aws_subnet" for e in result.state.resources()
        )


class TestReplace:
    def test_replace_destroys_then_creates(self):
        gateway = CloudGateway.simulated(seed=10)
        src = 'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
        result = CriticalPathExecutor(gateway).apply(plan_on(gateway, src))
        old_id = result.state.resources()[0].resource_id
        src2 = src.replace("10.0.0.0/16", "10.7.0.0/16")
        result2 = CriticalPathExecutor(gateway).apply(
            plan_on(gateway, src2, result.state)
        )
        assert result2.ok
        new_entry = result2.state.resources()[0]
        assert new_entry.resource_id != old_id
        assert new_entry.attrs["cidr_block"] == "10.7.0.0/16"
        assert gateway.planes["aws"].count("aws_vpc") == 1
