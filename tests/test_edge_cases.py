"""Edge cases across the stack: azure update rules, module depends_on,
aliased providers, heredocs in configs, deep module nesting."""

import pytest

from repro.cloud import CloudAPIError
from repro.core import CloudlessEngine
from repro.graph import build_graph
from repro.lang import Configuration, DictModuleLoader


class TestAzureUpdateRules:
    def make_vm(self, engine):
        src = """
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "eastus"
}
resource "azure_virtual_network" "v" {
  name              = "v"
  resource_group_id = azure_resource_group.rg.id
  location          = "eastus"
  address_spaces    = ["10.0.0.0/16"]
}
resource "azure_subnet" "sn" {
  name           = "sn"
  vnet_id        = azure_virtual_network.v.id
  address_prefix = "10.0.1.0/24"
}
resource "azure_network_interface" "n" {
  name      = "n"
  subnet_id = azure_subnet.sn.id
  location  = "eastus"
}
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "eastus"
  nic_ids  = [azure_network_interface.n.id]
}
"""
        assert engine.apply(src).ok
        return next(
            e
            for e in engine.state.resources()
            if e.address.type == "azure_virtual_machine"
        )

    def test_update_password_without_flag_rejected(self):
        engine = CloudlessEngine(seed=70)
        vm = self.make_vm(engine)
        with pytest.raises(CloudAPIError) as err:
            engine.gateway.execute(
                "update",
                "azure_virtual_machine",
                resource_id=vm.resource_id,
                attrs={"admin_password": "oops!"},
            )
        assert "disablePasswordAuthentication" in err.value.message

    def test_update_password_with_flag_accepted(self):
        engine = CloudlessEngine(seed=71)
        vm = self.make_vm(engine)
        response = engine.gateway.execute(
            "update",
            "azure_virtual_machine",
            resource_id=vm.resource_id,
            attrs={"admin_password": "ok!", "disable_password_auth": False},
        )
        assert response["admin_password"] == "ok!"


class TestModuleEdgeCases:
    def test_deeply_nested_modules(self):
        loader = DictModuleLoader(
            {
                "./outer": (
                    'module "inner" {\n  source = "./inner"\n}\n'
                    'output "leaf_id" { value = module.inner.leaf_id }\n'
                ),
                "./inner": (
                    'resource "aws_s3_bucket" "leaf" {\n  name = "deep"\n}\n'
                    'output "leaf_id" { value = aws_s3_bucket.leaf.id }\n'
                ),
            }
        )
        source = (
            'module "outer" {\n  source = "./outer"\n}\n'
            'resource "aws_dns_record" "d" {\n'
            '  name  = "r"\n'
            '  zone  = "z"\n'
            "  value = module.outer.leaf_id\n"
            "}\n"
        )
        graph = build_graph(Configuration.parse(source), loader=loader)
        assert "module.outer.module.inner.aws_s3_bucket.leaf" in graph.nodes
        assert "aws_dns_record.d" in graph.dag.successors(
            "module.outer.module.inner.aws_s3_bucket.leaf"
        )

    def test_nested_module_deploys_end_to_end(self):
        loader = DictModuleLoader(
            {
                "./stack": (
                    'variable "prefix" { type = string }\n'
                    'resource "aws_s3_bucket" "b" {\n'
                    '  name = "${var.prefix}-bucket"\n'
                    "}\n"
                    'output "bucket_name" { value = aws_s3_bucket.b.name }\n'
                )
            }
        )
        engine = CloudlessEngine(seed=72, loader=loader)
        result = engine.apply(
            'module "a" {\n  source = "./stack"\n  prefix = "alpha"\n}\n'
            'module "b" {\n  source = "./stack"\n  prefix = "beta"\n}\n'
            'output "all" { value = [module.a.bucket_name, module.b.bucket_name] }\n'
        )
        assert result.ok
        assert engine.state.outputs["all"] == ["alpha-bucket", "beta-bucket"]
        assert engine.gateway.planes["aws"].count("aws_s3_bucket") == 2
        # re-plan is a no-op including module internals
        assert engine.plan(
            'module "a" {\n  source = "./stack"\n  prefix = "alpha"\n}\n'
            'module "b" {\n  source = "./stack"\n  prefix = "beta"\n}\n'
            'output "all" { value = [module.a.bucket_name, module.b.bucket_name] }\n'
        ).is_empty

    def test_module_count_rejected_with_clear_error(self):
        loader = DictModuleLoader({"./m": 'resource "aws_s3_bucket" "b" { name = "x" }\n'})
        from repro.graph.builder import GraphBuildError

        with pytest.raises(GraphBuildError) as err:
            build_graph(
                Configuration.parse(
                    'module "m" {\n  source = "./m"\n  count = 2\n}\n'
                ),
                loader=loader,
            )
        assert "count/for_each on modules" in str(err.value)


class TestHeredocsInConfigs:
    def test_heredoc_user_data_deploys(self):
        engine = CloudlessEngine(seed=73)
        src = (
            'resource "aws_vpc" "v" {\n  name = "v"\n  cidr_block = "10.0.0.0/16"\n}\n'
            'resource "aws_subnet" "s" {\n'
            '  name = "s"\n  vpc_id = aws_vpc.v.id\n  cidr_block = "10.0.1.0/24"\n}\n'
            'resource "aws_network_interface" "n" {\n'
            '  name = "n"\n  subnet_id = aws_subnet.s.id\n}\n'
            'resource "aws_virtual_machine" "vm" {\n'
            '  name      = "vm"\n'
            "  nic_ids   = [aws_network_interface.n.id]\n"
            "  user_data = <<-EOF\n"
            "    #!/bin/sh\n"
            "    echo hello\n"
            "  EOF\n"
            "}\n"
        )
        result = engine.apply(src)
        assert result.ok
        vm = engine.gateway.planes["aws"].find_by_name("aws_virtual_machine", "vm")
        assert vm.attrs["user_data"] == "#!/bin/sh\necho hello\n"


class TestAliasedProviders:
    def test_aliased_provider_region(self):
        engine = CloudlessEngine(seed=74)
        result = engine.apply(
            'provider "aws" {\n  region = "us-east-1"\n}\n'
            'provider "aws" {\n  alias  = "west"\n  region = "us-west-2"\n}\n'
            'resource "aws_s3_bucket" "east" { name = "e" }\n'
            'resource "aws_s3_bucket" "west" {\n'
            '  name     = "w"\n'
            "  provider = aws.west\n"
            "}\n"
        )
        assert result.ok
        plane = engine.gateway.planes["aws"]
        assert plane.find_by_name("aws_s3_bucket", "e").region == "us-east-1"
        assert plane.find_by_name("aws_s3_bucket", "w").region == "us-west-2"


class TestDependsOnAcrossResources:
    def test_depends_on_orders_execution(self):
        engine = CloudlessEngine(seed=75)
        result = engine.apply(
            'resource "aws_s3_bucket" "first" { name = "a" }\n'
            'resource "aws_s3_bucket" "second" {\n'
            '  name       = "b"\n'
            "  depends_on = [aws_s3_bucket.first]\n"
            "}\n"
        )
        assert result.ok
        ops = {
            op.change_id: op for op in result.apply.operations
        }
        assert (
            ops["aws_s3_bucket.second"].t_submit
            >= ops["aws_s3_bucket.first"].t_complete
        )
