"""The cloudless engine facade (paper Figure 1b)."""

from .engine import (
    CloudlessEngine,
    EngineApplyResult,
    EngineError,
    EXECUTORS,
)

__all__ = [
    "CloudlessEngine",
    "EngineApplyResult",
    "EngineError",
    "EXECUTORS",
]
