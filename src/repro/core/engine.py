"""The cloudless engine: the whole lifecycle behind one facade.

Figure 1(b) of the paper: Developing -> Validating -> Deploying ->
Updating -> Diagnosing, policed throughout by the infrastructure
controller. :class:`CloudlessEngine` wires every subsystem together and
exposes the lifecycle verbs: ``validate``, ``plan``, ``apply``,
``watch``, ``reconcile``, ``rollback``, ``import_estate``, ``destroy``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Union

from ..cloud.gateway import CloudGateway
from ..cloud.resilience import BreakerPolicy, HealthMonitor, ResilientGateway
from ..debug.correlate import Diagnosis, IaCDebugger
from ..deploy.executor import (
    ApplyResult,
    BestEffortExecutor,
    CriticalPathExecutor,
    PlanExecutor,
    RetryPolicy,
    SequentialExecutor,
)
from ..deploy.incremental import read_data_sources
from ..deploy.recovery import CrashRecovery, RecoveryReport
from ..deploy.wal import IntentJournal
from ..drift.detector import DetectionRun, DriftFinding, LogWatchDetector
from ..drift.reconcile import Reconciler, ReconcileReport
from ..drift.watcher import DriftWatcher, WatchCycle
from ..graph.builder import ResourceGraph, build_graph
from ..graph.plan import Plan, Planner
from ..lang.config import Configuration
from ..lang.module_loader import ModuleLoader
from ..policy.controller import AdmissionDecision, InfrastructureController
from ..policy.cost import CostEstimator
from ..porting.importer import PortedProject, StructuredImporter
from ..state.document import StateDocument
from ..state.snapshots import Snapshot, SnapshotHistory
from ..types.schema import SchemaRegistry
from ..update.rollback import ReversibilityAwareRollback, RollbackResult
from ..validate.pipeline import (
    LEVEL_RULES,
    ValidationPipeline,
    ValidationReport,
)

EXECUTORS = {
    "sequential": SequentialExecutor,
    "best-effort": BestEffortExecutor,
    "critical-path": CriticalPathExecutor,
}

Sources = Union[str, Dict[str, str], Configuration]


def _fingerprint_json(blob: str) -> str:
    import hashlib

    return hashlib.sha256(blob.encode()).hexdigest()


def _fingerprint_data(data_values: Dict[str, Any]) -> str:
    import hashlib
    import json

    blob = json.dumps(data_values, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


#: fingerprint of an empty data-read set. A cached plan carrying this
#: fingerprint was computed against a graph with no data sources, so a
#: warm exact hit can skip ``read_data_sources`` (which would need the
#: materialized graph) entirely.
_EMPTY_DATA_FP = _fingerprint_data({})


class EngineError(RuntimeError):
    """Lifecycle-level failures (validation denied, admission denied)."""


@dataclasses.dataclass
class _CacheContext:
    """Ties a coerced Configuration back to its artifact lookup."""

    config: Configuration
    texts: Dict[str, str]
    variables_fp: str
    schema_fp: str
    lookup: Optional[Any]  # compilecache.CacheLookup, None on miss


class _LazyConfiguration(Configuration):
    """A Configuration served from an exact artifact hit, materialized
    on first attribute access.

    The warm plan path never touches the parsed AST -- the expanded
    graph and plan are journaled alongside it -- so an unchanged
    re-run should not pay the O(estate) unpickle just to carry a
    Configuration-shaped token through the call graph. Any real use
    (validate iterating resources, a partial reuse reading the
    chunk-AST table) falls through ``__getattribute__`` and unpickles
    the payload once.
    """

    def __init__(self, lookup: Any):
        object.__setattr__(self, "_clc_lookup", lookup)

    def _clc_materialize(self) -> Configuration:
        return object.__getattribute__(self, "_clc_lookup").config

    def __getattribute__(self, name: str):
        if name.startswith("_clc_") or name.startswith("__"):
            return object.__getattribute__(self, name)
        return getattr(
            object.__getattribute__(self, "_clc_materialize")(), name
        )

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(self._clc_materialize(), name, value)


class _LazyArtifactPlan(Plan):
    """A Plan served from an exact artifact hit whose state/data
    fingerprints matched.

    ``render()`` replays the journaled plan text (byte-identical to
    the cold run) straight from the artifact meta; everything else --
    ``changes``, ``execution_dag()``, the executors' node access --
    materializes the payload's object web on first touch. The plan
    verb therefore costs O(changed) == O(1) on an unchanged estate,
    while apply still gets the full plan for free semantics.
    """

    def __init__(self, lookup: Any):
        object.__setattr__(self, "_clc_lookup", lookup)

    def _clc_materialize(self) -> Plan:
        return object.__getattribute__(self, "_clc_lookup").plan

    def render(self) -> str:
        text = object.__getattribute__(self, "_clc_lookup").plan_render
        if text is not None:
            return text
        return object.__getattribute__(self, "_clc_materialize")().render()

    def __getattribute__(self, name: str):
        if (
            name.startswith("_clc_")
            or name.startswith("__")
            or name == "render"
        ):
            return object.__getattribute__(self, name)
        return getattr(
            object.__getattribute__(self, "_clc_materialize")(), name
        )

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(self._clc_materialize(), name, value)


@dataclasses.dataclass
class EngineApplyResult:
    """Everything one ``apply`` produced."""

    validation: Optional[ValidationReport]
    admission: Optional[AdmissionDecision]
    plan: Optional[Plan]
    apply: Optional[ApplyResult]
    diagnoses: List[Diagnosis]
    snapshot_version: Optional[int] = None

    @property
    def ok(self) -> bool:
        if self.validation is not None and not self.validation.ok:
            return False
        if self.admission is not None and not self.admission.allowed:
            return False
        return self.apply is not None and self.apply.ok

    @property
    def partial(self) -> bool:
        """Degraded-mode completion: the reachable subgraph converged
        and the rest is quarantined behind unreachable partitions."""
        return self.apply is not None and self.apply.partial

    @property
    def quarantined(self) -> Dict[str, Any]:
        return self.apply.quarantined if self.apply is not None else {}


@dataclasses.dataclass
class EngineResumeResult:
    """Outcome of a crash-recovery resume: repairs + the continued apply."""

    recovery: Optional[RecoveryReport]
    result: EngineApplyResult

    @property
    def ok(self) -> bool:
        return self.result.ok


class CloudlessEngine:
    """One tenant's cloudless control plane."""

    def __init__(
        self,
        gateway: Optional[CloudGateway] = None,
        registry: Optional[SchemaRegistry] = None,
        loader: Optional[ModuleLoader] = None,
        executor: str = "critical-path",
        validation_level: str = LEVEL_RULES,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
        wal_path: Optional[str] = None,
        health: Optional[HealthMonitor] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        shards: Optional[int] = None,
        shard_workers: int = 1,
        cache_dir: Optional[str] = None,
    ):
        self.seed = seed
        #: when set, every apply journals its intents here and
        #: :meth:`resume` can recover a crashed run from it
        self.wal_path = wal_path
        self.gateway = gateway or CloudGateway.simulated(seed=seed)
        #: one partition-health ledger shared by every layer: the
        #: executors gate dispatch on it, the resilient wrapper fails
        #: fast on it, and drift detection skips partitions it marks
        #: unreachable
        self.health = health or HealthMonitor(policy=breaker_policy)
        # one shared resilience wrapper for the synchronous lifecycle
        # verbs (watch/reconcile/rollback/import/data reads); the deploy
        # executors keep the raw gateway -- their event-loop retry must
        # stay byte-identical to the golden reference
        self.resilient = ResilientGateway.wrap(self.gateway, health=self.health)
        self.registry = registry or SchemaRegistry.default()
        self.loader = loader
        self.executor_name = executor
        self.concurrency = concurrency
        self.retry = retry
        #: sharded apply: cap on shard count (None = one per
        #: (provider, region) partition) and pool-worker count
        self.shards = shards
        self.shard_workers = shard_workers
        self.state = StateDocument()
        self.history = SnapshotHistory()
        self.controller = InfrastructureController()
        self.cost = CostEstimator()
        self.debugger = IaCDebugger(self.registry)
        self.watcher = LogWatchDetector(self.resilient)
        #: lazily-built continuous-reconciliation loop (see
        #: :meth:`watch_continuously`); shares ``self.watcher``'s cursors
        self.continuous_watcher: Optional[DriftWatcher] = None
        self.validation = ValidationPipeline(
            registry=self.registry, level=validation_level
        )
        self.planner = Planner(
            spec_lookup=self.gateway.try_spec,
            region_lookup=self.gateway.region_for,
            provider_lookup=self.gateway.provider_of,
        )
        self.last_sources: Dict[str, str] = {}
        self.last_variables: Dict[str, Any] = {}
        #: persistent compiled-artifact cache (``cache_dir=None`` keeps
        #: every compile cold); see :mod:`repro.compilecache`
        self.compile_cache = None
        if cache_dir:
            from ..compilecache import CompileCache

            self.compile_cache = CompileCache(cache_dir)
        # cache context for the most recent _coerce_sources call, so
        # plan() can tell whether the Configuration it received came
        # from an exact artifact hit (graph reusable) or a fresh parse
        self._cache_ctx: Optional[_CacheContext] = None

    # -- helpers ------------------------------------------------------------

    @property
    def clock(self):
        return self.gateway.clock

    def _coerce_sources(
        self, sources: Sources, variables: Optional[Dict[str, Any]] = None
    ) -> tuple:
        if isinstance(sources, Configuration):
            if isinstance(sources, _LazyConfiguration):
                # do not touch attributes: listing files would
                # materialize the payload the lazy hit is avoiding
                return sources, {}
            return sources, {
                f.filename: "" for f in sources.files
            }  # originals unavailable
        if isinstance(sources, str):
            sources = {"main.clc": sources}
        texts = dict(sources)
        cache = self.compile_cache
        if cache is None:
            return Configuration.parse_streaming(texts), texts
        from ..compilecache import schema_fingerprint, variables_fingerprint

        vfp = variables_fingerprint(variables)
        sfp = schema_fingerprint(self.gateway)
        lookup = cache.load(texts, vfp, sfp)
        if lookup is not None and lookup.exact:
            # serve a lazy facade: if the plan fingerprints also match,
            # the whole warm run finishes without unpickling the
            # artifact's object web (O(changed), not O(estate))
            config = _LazyConfiguration(lookup)
        else:
            # partial hit: unchanged chunks skip lex+parse via the
            # artifact's resident chunk-AST table
            config = Configuration.parse_streaming(
                texts, reuse=lookup.config if lookup is not None else None
            )
        self._cache_ctx = _CacheContext(
            config=config, texts=texts, variables_fp=vfp, schema_fp=sfp,
            lookup=lookup,
        )
        return config, texts

    def _executor(self) -> PlanExecutor:
        if self.executor_name == "sharded":
            from ..deploy.sharded import ShardedExecutor

            return ShardedExecutor(
                self.gateway,
                concurrency=self.concurrency,
                retry=self.retry,
                health=self.health,
                max_shards=self.shards,
                workers=self.shard_workers,
            )
        cls = EXECUTORS.get(self.executor_name)
        if cls is None:
            raise EngineError(f"unknown executor {self.executor_name!r}")
        if cls is SequentialExecutor:
            return cls(self.gateway, retry=self.retry, health=self.health)
        return cls(
            self.gateway,
            concurrency=self.concurrency,
            retry=self.retry,
            health=self.health,
        )

    # -- lifecycle verbs ---------------------------------------------------------

    def validate(
        self, sources: Sources, variables: Optional[Dict[str, Any]] = None
    ) -> ValidationReport:
        config, _ = self._coerce_sources(sources, variables)
        return self.validation.validate(
            config, variables=variables, loader=self.loader
        )

    def plan(
        self,
        sources: Sources,
        variables: Optional[Dict[str, Any]] = None,
        state: Optional[StateDocument] = None,
    ) -> Plan:
        from ..graph.builder import GraphBuildError
        from ..lang.diagnostics import CLCError

        config, _ = self._coerce_sources(sources, variables)
        ctx = self._cache_ctx
        if ctx is None or ctx.config is not config:
            ctx = None
        lookup = ctx.lookup if ctx is not None else None
        exact = lookup is not None and lookup.exact
        working = (state if state is not None else self.state).copy()
        if exact:
            # the cached Plan is only as good as the state and data
            # reads it was computed against; fingerprint both before
            # serving it. A plan journaled with the empty-data
            # fingerprint was computed against a graph with no data
            # sources, so nothing about it can have moved -- serve the
            # lazy facade without materializing graph or plan at all.
            state_fp = _fingerprint_json(working.to_json())
            if (
                lookup.plan_render is not None
                and lookup.plan_state_fp == state_fp
                and lookup.plan_data_fp == _EMPTY_DATA_FP
            ):
                return _LazyArtifactPlan(lookup)
            # exact artifact hit: the expanded graph replays as-is
            graph = lookup.graph
        else:
            try:
                graph = build_graph(
                    config, variables=variables, loader=self.loader
                )
            except (GraphBuildError, CLCError) as exc:
                raise EngineError(str(exc))
        data_values = read_data_sources(self.resilient, graph, working)
        if ctx is None:
            return self.planner.plan(graph, working, data_values=data_values)
        state_fp = _fingerprint_json(working.to_json())
        data_fp = _fingerprint_data(data_values)
        if (
            exact
            and lookup.plan is not None
            and lookup.plan_state_fp == state_fp
            and lookup.plan_data_fp == data_fp
        ):
            return lookup.plan
        plan = self.planner.plan(graph, working, data_values=data_values)
        assert self.compile_cache is not None
        self.compile_cache.store(
            ctx.texts,
            ctx.variables_fp,
            ctx.schema_fp,
            lookup.config if exact else config,
            graph,
            plan=plan,
            plan_state_fp=state_fp,
            plan_data_fp=data_fp,
        )
        return plan

    def apply(
        self,
        sources: Sources,
        variables: Optional[Dict[str, Any]] = None,
        validate_first: bool = True,
        admit: bool = True,
        checkpoint: bool = True,
        crash_hook: Optional[Any] = None,
        _journal: Optional[IntentJournal] = None,
    ) -> EngineApplyResult:
        config, source_texts = self._coerce_sources(sources, variables)
        validation: Optional[ValidationReport] = None
        if validate_first:
            validation = self.validation.validate(
                config, variables=variables, loader=self.loader
            )
            if not validation.ok:
                return EngineApplyResult(
                    validation=validation,
                    admission=None,
                    plan=None,
                    apply=None,
                    diagnoses=[],
                )
        plan = self.plan(config, variables=variables)
        admission: Optional[AdmissionDecision] = None
        if admit:
            admission = self.controller.admit(
                plan, self.state, cost_estimator=self.cost, variables=variables
            )
            if not admission.allowed:
                return EngineApplyResult(
                    validation=validation,
                    admission=admission,
                    plan=plan,
                    apply=None,
                    diagnoses=[],
                )
        journal = _journal
        if journal is None and self.wal_path:
            journal = IntentJournal(self.wal_path)
            journal.begin_run()
        if journal is not None or crash_hook is not None:
            result = self._executor().apply(
                plan, wal=journal, crash_hook=crash_hook
            )
        else:
            # no WAL, no crash hook: the historical call, byte-identical
            # scheduling to the golden reference
            result = self._executor().apply(plan)
        if journal is not None and result.ok:
            journal.mark_clean()
            journal.close()
        elif journal is not None and result.partial:
            # degraded-mode completion: keep the journal's contents (the
            # quarantined intents are the resume's work list) but close
            # the handle so an in-process resume re-reads a flushed file
            journal.close()
        assert result.state is not None
        self.state = result.state
        self._store_outputs(plan, result)
        self.last_sources = source_texts
        self.last_variables = dict(variables or {})
        diagnoses = (
            self.debugger.diagnose_apply(plan, result) if result.failed else []
        )
        snapshot_version: Optional[int] = None
        if checkpoint and result.ok:
            snap = self.history.checkpoint(
                self.state,
                source_texts,
                timestamp=self.clock.now,
                description=f"apply ({plan.summary()})",
            )
            snapshot_version = snap.version
        return EngineApplyResult(
            validation=validation,
            admission=admission,
            plan=plan,
            apply=result,
            diagnoses=diagnoses,
            snapshot_version=snapshot_version,
        )

    def _store_outputs(self, plan: Plan, result: ApplyResult) -> None:
        """Evaluate root-module outputs post-apply into state.outputs."""
        if not result.ok or plan.graph.root_context is None:
            return
        try:
            outputs = plan.graph.root_context.output_values()
        except Exception:
            return
        from ..lang.values import is_unknown

        self.state.outputs = {
            name: value
            for name, value in outputs.items()
            if not is_unknown(value)
        }

    def destroy(self) -> EngineApplyResult:
        """Tear down everything the state manages."""
        return self.apply("", validate_first=False, admit=False, checkpoint=False)

    # -- crash recovery -----------------------------------------------------

    def resume(
        self,
        sources: Optional[Sources] = None,
        variables: Optional[Dict[str, Any]] = None,
        validate_first: bool = True,
        admit: bool = True,
        checkpoint: bool = True,
    ) -> "EngineResumeResult":
        """Recover a crashed apply from the intent journal and continue.

        Replays the WAL at ``wal_path``, classifies every intent against
        the live control planes (adopting orphaned creates and noting
        landed deletes -- see :mod:`repro.deploy.recovery`), then
        re-plans and applies the same configuration. The continued apply
        reuses the crashed run's journal and run id, so re-sent creates
        carry the *same* idempotency tokens and cannot duplicate
        resources the crashed run already provisioned.
        """
        if not self.wal_path:
            raise EngineError("resume requires an engine wal_path")
        journal = IntentJournal.resume(self.wal_path)
        recovery: Optional[RecoveryReport] = None
        if journal.run_id is not None and journal.records():
            recovery = CrashRecovery(self.gateway, journal).recover(self.state)
        if sources is None:
            sources = self.last_sources
        if variables is None:
            variables = dict(self.last_variables)
        result = self.apply(
            sources,
            variables=variables,
            validate_first=validate_first,
            admit=admit,
            checkpoint=checkpoint,
            _journal=journal if journal.run_id is not None else None,
        )
        if result.plan is not None:
            self._refresh_dependencies(result.plan)
        return EngineResumeResult(recovery=recovery, result=result)

    def _refresh_dependencies(self, plan: Plan) -> None:
        """Backfill state dependencies for adopted (recovered) entries.

        ``_commit_step`` records each entry's managed predecessors at
        commit time; entries adopted by crash recovery never ran a
        commit, so they carry empty dependency lists. Recompute them
        from the plan graph with the same rule so a recovered state
        document matches an uninterrupted run's byte for byte.
        """
        changed = False
        for cid, node in plan.graph.nodes.items():
            if node is None or node.address.mode != "managed":
                continue
            entry = self.state.get(node.address)
            if entry is None:
                continue
            deps = sorted(
                p
                for p in plan.graph.dag.predecessors(cid)
                if plan.graph.nodes.get(p) is not None
                and plan.graph.nodes[p].address.mode == "managed"
            )
            if deps and list(entry.dependencies) != deps:
                self.state.set(entry.replace(dependencies=deps))
                changed = True
        if changed:
            self.state.bump()

    # -- observe / repair -------------------------------------------------------------

    def watch(self) -> DetectionRun:
        """One drift-detection poll over the activity logs."""
        run = self.watcher.poll(self.state)
        if run.findings:
            self.controller.evaluate_drift(run.findings, self.state, self.clock.now)
        return run

    def watch_continuously(
        self,
        cycles: int = 1,
        interval_s: float = 60.0,
        policy: Optional[Dict[str, str]] = None,
        cursor_path: Optional[str] = None,
        max_lag_s: float = 900.0,
        auto_reconcile: bool = True,
    ) -> List[WatchCycle]:
        """Event-driven continuous reconciliation (see
        :class:`~repro.drift.watcher.DriftWatcher`).

        The watcher is cached across calls so deferred/pending repairs
        survive between invocations; it shares the engine's
        :class:`LogWatchDetector` (one set of cursors, whether you
        ``watch`` once or watch continuously) and partition-health
        ledger."""
        watcher = self.continuous_watcher
        if watcher is None:
            watcher = self.continuous_watcher = DriftWatcher(
                self.resilient,
                health=self.health,
                policy=policy,
                cursor_path=cursor_path,
                max_lag_s=max_lag_s,
                auto_reconcile=auto_reconcile,
                detector=self.watcher,
            )
        else:
            watcher.max_lag_s = max_lag_s
            watcher.auto_reconcile = auto_reconcile
            if policy:
                watcher.reconciler.policy.update(policy)
        out = watcher.run(self.state, cycles=cycles, interval_s=interval_s)
        for cycle in out:
            if cycle.run.findings:
                self.controller.evaluate_drift(
                    cycle.run.findings, self.state, self.clock.now
                )
        return out

    def reconcile(
        self,
        findings: List[DriftFinding],
        policy: Optional[Dict[str, str]] = None,
    ) -> ReconcileReport:
        reconciler = Reconciler(self.resilient, policy=policy)
        return reconciler.reconcile(findings, self.state)

    def rollback(self, version: int) -> RollbackResult:
        """Reversibility-aware rollback to a snapshot version."""
        snapshot = self.history.get(version)
        planner = ReversibilityAwareRollback(self.resilient)
        plan = planner.plan(snapshot, self.state)
        result = planner.execute(plan, self.state)
        self.last_sources = dict(snapshot.config_sources)
        self.history.checkpoint(
            self.state,
            snapshot.config_sources,
            timestamp=self.clock.now,
            description=f"rollback to v{version}",
        )
        return result

    def learn_validation_rules(self, min_support: int = 3) -> int:
        """Mine validation rules from this engine's own deploy history.

        3.2's knowledge-base loop closed: every checkpointed (healthy)
        configuration is a specification-mining example; invariants that
        held across all of them become compile-time checks on future
        changes. Returns how many rules were added.
        """
        from ..validate.mining import DeploymentExample, SpecificationMiner

        examples = []
        for version in self.history.versions():
            snap = self.history.get(version)
            sources = {k: v for k, v in snap.config_sources.items() if v}
            if not sources:
                continue
            try:
                config = Configuration.parse(sources)
                if config.diagnostics.has_errors():
                    continue
                examples.append(
                    DeploymentExample.from_config(config, self.registry)
                )
            except Exception:
                continue
        if not examples:
            return 0
        rules = SpecificationMiner(min_support=min_support).mine(examples)
        existing = {r.info.rule_id for r in self.validation.engine.rules}
        added = 0
        for rule in rules:
            if rule.info.rule_id not in existing:
                self.validation.engine.rules.append(rule)
                added += 1
        return added

    # -- develop ------------------------------------------------------------------------

    def import_estate(
        self, adopt: bool = True, via_api: bool = False
    ) -> PortedProject:
        """Port the live (non-IaC) estate into a structured program.

        ``via_api=True`` enumerates the estate through the paginated
        list API behind the resilience layer instead of the in-memory
        shortcut."""
        project = StructuredImporter(self.registry).import_estate(
            self.resilient, via_api=via_api
        )
        if adopt:
            self.state = project.state.copy()
            self.last_sources = dict(project.sources)
            self.history.checkpoint(
                self.state,
                project.sources,
                timestamp=self.clock.now,
                description="imported existing estate",
            )
        return project

    # -- state surgery (refactor support) ------------------------------------

    def state_move(self, src: str, dst: str) -> None:
        """Rename a resource's address in state without touching the
        cloud -- what lets a config refactor (rename, move into a
        module, adopt count) proceed without destroy/recreate."""
        from ..addressing import ResourceAddress

        src_addr = ResourceAddress.parse(src)
        dst_addr = ResourceAddress.parse(dst)
        entry = self.state.get(src_addr)
        if entry is None:
            raise EngineError(f"no state entry at {src}")
        if self.state.get(dst_addr) is not None:
            raise EngineError(f"destination {dst} already exists in state")
        self.state.remove(src_addr)
        self.state.set(entry.replace(address=dst_addr))
        for other in self.state.resources():
            if src in other.dependencies:
                self.state.set(
                    other.replace(
                        dependencies=[
                            dst if dep == src else dep
                            for dep in other.dependencies
                        ]
                    )
                )
        self.state.bump()

    def state_forget(self, address: str) -> bool:
        """Drop a resource from state (the cloud resource survives,
        unmanaged). Returns whether anything was removed."""
        from ..addressing import ResourceAddress

        removed = self.state.remove(ResourceAddress.parse(address))
        if removed is not None:
            self.state.bump()
        return removed is not None

    def regenerate_config(self, adopt: bool = True) -> PortedProject:
        """Regenerate the program from the managed estate's live values.

        The other half of 3.5's reconciliation: after drift is adopted
        (or repairs landed out of band), re-emit a program that matches
        what is actually deployed, so config and cloud agree again.
        Only resources the state already manages are included.
        """
        managed_ids = {entry.resource_id for entry in self.state.resources()}
        project = StructuredImporter(self.registry).import_estate(
            self.resilient, only_ids=managed_ids
        )
        if adopt:
            self.state = project.state.copy()
            self.last_sources = dict(project.sources)
            self.history.checkpoint(
                self.state,
                project.sources,
                timestamp=self.clock.now,
                description="regenerated program from live estate",
            )
        return project
