"""Critical-path analysis over execution plans (3.3).

Computes per-change priorities (longest remaining path, weighted by
estimated provisioning latency), the critical path itself, and the
theoretical lower bound on makespan -- the numbers the cloudless
scheduler uses and the E1 benchmark reports.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from .dag import Dag
from .plan import Action, Plan, PlannedChange


@dataclasses.dataclass
class CriticalPathAnalysis:
    """Result bundle for one plan."""

    priorities: Dict[str, float]  # change id -> longest path to sink
    critical_path: List[str]
    critical_length_s: float
    total_work_s: float
    max_width: int

    @property
    def parallelism_bound(self) -> float:
        """Best possible speedup over sequential (work / span)."""
        if self.critical_length_s <= 0:
            return 1.0
        return self.total_work_s / self.critical_length_s


def estimate_change_duration(
    change: PlannedChange, mean_latency: Callable[[str, str], float]
) -> float:
    """Expected execution time of one planned change."""
    rtype = change.rtype
    if change.action is Action.CREATE:
        return mean_latency(rtype, "create")
    if change.action is Action.UPDATE:
        return mean_latency(rtype, "update")
    if change.action is Action.DELETE:
        return mean_latency(rtype, "delete")
    if change.action is Action.REPLACE:
        return mean_latency(rtype, "delete") + mean_latency(rtype, "create")
    if change.action is Action.READ:
        return mean_latency(rtype, "read")
    return 0.0


def analyze(
    plan: Plan,
    mean_latency: Callable[[str, str], float],
    execution_dag: Optional[Dag] = None,
) -> CriticalPathAnalysis:
    """Critical-path analysis of a plan's execution DAG."""
    dag = execution_dag if execution_dag is not None else plan.execution_dag()
    durations = {
        cid: estimate_change_duration(plan.changes[cid], mean_latency)
        for cid in dag.nodes
    }
    if not dag.nodes:
        return CriticalPathAnalysis({}, [], 0.0, 0.0, 0)
    priorities = dag.longest_path_to_sink(lambda n: durations[n])
    length, path = dag.critical_path(lambda n: durations[n])
    return CriticalPathAnalysis(
        priorities=priorities,
        critical_path=path,
        critical_length_s=length,
        total_work_s=sum(durations.values()),
        max_width=dag.max_width(),
    )
