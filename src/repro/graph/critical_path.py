"""Critical-path analysis over execution plans (3.3).

Computes per-change priorities (longest remaining path, weighted by
estimated provisioning latency), the critical path itself, and the
theoretical lower bound on makespan -- the numbers the cloudless
scheduler uses and the E1 benchmark reports.

Scale notes: :func:`analyze` runs exactly one topological sort and
reuses it for the priorities, the critical path, and the width profile
(previously each recomputed its own sort). Results are additionally
memoized content-addressed -- keyed by the DAG's edge set and the
estimated durations -- so re-running an executor over the same plan, or
replanning an unchanged subgraph, hits the cache instead of recomputing
(see ``docs/performance.md``).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..perf import PERF
from .dag import Dag
from .plan import Action, Plan, PlannedChange


@dataclasses.dataclass
class CriticalPathAnalysis:
    """Result bundle for one plan.

    Instances may be shared through the analysis cache -- treat every
    field as read-only.
    """

    priorities: Dict[str, float]  # change id -> longest path to sink
    critical_path: List[str]
    critical_length_s: float
    total_work_s: float
    max_width: int

    @property
    def parallelism_bound(self) -> float:
        """Best possible speedup over sequential (work / span)."""
        if self.critical_length_s <= 0:
            return 1.0
        return self.total_work_s / self.critical_length_s


def estimate_change_duration(
    change: PlannedChange, mean_latency: Callable[[str, str], float]
) -> float:
    """Expected execution time of one planned change."""
    rtype = change.rtype
    if change.action is Action.CREATE:
        return mean_latency(rtype, "create")
    if change.action is Action.UPDATE:
        return mean_latency(rtype, "update")
    if change.action is Action.DELETE:
        return mean_latency(rtype, "delete")
    if change.action is Action.REPLACE:
        return mean_latency(rtype, "delete") + mean_latency(rtype, "create")
    if change.action is Action.READ:
        return mean_latency(rtype, "read")
    return 0.0


#: cache key: (edge set, per-change durations) -- fully content-addressed,
#: so no invalidation hooks are needed anywhere.
_CacheKey = Tuple[FrozenSet[Tuple[str, str]], FrozenSet[Tuple[str, float]]]

#: process-wide LRU over recent analyses (replans of unchanged subgraphs
#: across *different* Plan objects still hit).
_ANALYSIS_CACHE: "OrderedDict[_CacheKey, CriticalPathAnalysis]" = OrderedDict()
_ANALYSIS_CACHE_MAX = 8


def clear_analysis_cache() -> None:
    _ANALYSIS_CACHE.clear()


def analyze(
    plan: Plan,
    mean_latency: Callable[[str, str], float],
    execution_dag: Optional[Dag] = None,
    use_cache: bool = True,
) -> CriticalPathAnalysis:
    """Critical-path analysis of a plan's execution DAG."""
    dag = execution_dag if execution_dag is not None else plan.execution_dag()
    if not dag.nodes:
        return CriticalPathAnalysis({}, [], 0.0, 0.0, 0)
    durations = {
        cid: estimate_change_duration(plan.changes[cid], mean_latency)
        for cid in dag.nodes
    }

    key: Optional[_CacheKey] = None
    if use_cache:
        key = (frozenset(dag.iter_edges()), frozenset(durations.items()))
        plan_cache = getattr(plan, "analysis_cache", None)
        cached = None
        if plan_cache is not None:
            cached = plan_cache.get(key)
        if cached is None:
            cached = _ANALYSIS_CACHE.get(key)
        if cached is not None:
            PERF.count("analyze.cache_hits")
            if plan_cache is not None:
                plan_cache[key] = cached
            return cached
        PERF.count("analyze.cache_misses")

    order = dag.topological_order()
    weight = durations.__getitem__
    priorities = dag.longest_path_to_sink(weight, order=order)
    length, path = dag.critical_path(weight, dist=priorities)
    analysis = CriticalPathAnalysis(
        priorities=priorities,
        critical_path=path,
        critical_length_s=length,
        total_work_s=sum(durations.values()),
        max_width=dag.max_width(order=order),
    )
    if key is not None:
        plan_cache = getattr(plan, "analysis_cache", None)
        if plan_cache is not None:
            plan_cache[key] = analysis
        _ANALYSIS_CACHE[key] = analysis
        _ANALYSIS_CACHE.move_to_end(key)
        while len(_ANALYSIS_CACHE) > _ANALYSIS_CACHE_MAX:
            _ANALYSIS_CACHE.popitem(last=False)
    return analysis
