"""Dependency graphs, plans, critical-path and impact analyses."""

from .builder import (
    GraphBuildError,
    GraphBuilder,
    ResourceGraph,
    ResourceNode,
    build_graph,
)
from .critical_path import CriticalPathAnalysis, analyze, estimate_change_duration
from .dag import CycleError, Dag
from .impact import ConfigDelta, ImpactAnalyzer, diff_configurations
from .plan import (
    ACTIONABLE,
    Action,
    AttrDiff,
    Plan,
    PlanError,
    PlannedChange,
    Planner,
    ValueResolver,
)

__all__ = [
    "ACTIONABLE",
    "Action",
    "AttrDiff",
    "ConfigDelta",
    "CriticalPathAnalysis",
    "CycleError",
    "Dag",
    "GraphBuildError",
    "GraphBuilder",
    "ImpactAnalyzer",
    "Plan",
    "PlanError",
    "PlannedChange",
    "Planner",
    "ResourceGraph",
    "ResourceNode",
    "ValueResolver",
    "analyze",
    "build_graph",
    "diff_configurations",
    "estimate_change_duration",
]
