"""Dependency graphs, plans, critical-path and impact analyses."""

from .builder import (
    GraphBuildError,
    GraphBuilder,
    ResourceGraph,
    ResourceNode,
    build_graph,
)
from .critical_path import CriticalPathAnalysis, analyze, estimate_change_duration
from .dag import CycleError, Dag
from .impact import ConfigDelta, ImpactAnalyzer, diff_configurations
from .partition import (
    PartitionError,
    PlanPartition,
    Shard,
    change_partition,
    partition_plan,
)
from .plan import (
    ACTIONABLE,
    Action,
    AttrDiff,
    Plan,
    PlanError,
    PlannedChange,
    Planner,
    ValueResolver,
)

__all__ = [
    "ACTIONABLE",
    "Action",
    "AttrDiff",
    "ConfigDelta",
    "CriticalPathAnalysis",
    "CycleError",
    "Dag",
    "GraphBuildError",
    "GraphBuilder",
    "ImpactAnalyzer",
    "PartitionError",
    "Plan",
    "PlanError",
    "PlanPartition",
    "PlannedChange",
    "Planner",
    "ResourceGraph",
    "ResourceNode",
    "Shard",
    "ValueResolver",
    "analyze",
    "build_graph",
    "change_partition",
    "diff_configurations",
    "estimate_change_duration",
    "partition_plan",
]
