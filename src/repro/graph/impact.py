"""Impact-scope analysis for incremental updates (3.3).

"Modifications to individual resources have a limited impact, affecting
only a small subset of successor and predecessor nodes in the resource
dependency graph." This module computes that subset, so incremental
plans refresh and re-diff only what a change can actually touch, instead
of querying all cloud-level resource state from scratch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from ..lang.ast_nodes import Attribute, Block, Body
from ..lang.config import Configuration, ResourceDecl
from .builder import ResourceGraph


@dataclasses.dataclass
class ConfigDelta:
    """Declarations that differ between two configuration versions.

    Keys are ``(mode, type, name)`` decl keys in the root module; module
    calls that changed are tracked separately (a changed module call
    taints every resource inside that module instance).
    """

    changed_resources: Set[Tuple[str, str, str]] = dataclasses.field(
        default_factory=set
    )
    changed_locals: Set[str] = dataclasses.field(default_factory=set)
    changed_variables: Set[str] = dataclasses.field(default_factory=set)
    changed_modules: Set[str] = dataclasses.field(default_factory=set)

    @property
    def is_empty(self) -> bool:
        return not (
            self.changed_resources
            or self.changed_locals
            or self.changed_variables
            or self.changed_modules
        )


def diff_configurations(old: Configuration, new: Configuration) -> ConfigDelta:
    """Structural diff of two parsed configurations (root module)."""
    delta = ConfigDelta()
    old_res = {k: _decl_fingerprint(d) for k, d in old.resources.items()}
    new_res = {k: _decl_fingerprint(d) for k, d in new.resources.items()}
    for key in set(old_res) | set(new_res):
        if old_res.get(key) != new_res.get(key):
            delta.changed_resources.add(key)
    old_locals = {n: _expr_fingerprint(a) for n, a in old.locals.items()}
    new_locals = {n: _expr_fingerprint(a) for n, a in new.locals.items()}
    for name in set(old_locals) | set(new_locals):
        if old_locals.get(name) != new_locals.get(name):
            delta.changed_locals.add(name)
    for name in set(old.variables) | set(new.variables):
        o, n = old.variables.get(name), new.variables.get(name)
        o_fp = (o.type_constraint, _expr_fp(o.default)) if o else None
        n_fp = (n.type_constraint, _expr_fp(n.default)) if n else None
        if o_fp != n_fp:
            delta.changed_variables.add(name)
    for name in set(old.module_calls) | set(new.module_calls):
        o, n = old.module_calls.get(name), new.module_calls.get(name)
        o_fp = _body_fingerprint(o.body) + (o.source,) if o else None
        n_fp = _body_fingerprint(n.body) + (n.source,) if n else None
        if o_fp != n_fp:
            delta.changed_modules.add(name)
    return delta


class ImpactAnalyzer:
    """Maps a config delta (or touched addresses) to the affected
    subgraph of resource instances."""

    def __init__(self, graph: ResourceGraph):
        self.graph = graph

    def seeds_from_delta(self, delta: ConfigDelta, old: Configuration) -> Set[str]:
        """Instance addresses directly named by a config delta."""
        seeds: Set[str] = set()
        for mode, rtype, name in delta.changed_resources:
            seeds |= set(self.graph.decl_instances.get(((), mode, rtype, name), []))
            # removed declarations have no instances in the new graph but
            # their state entries will be deletions; the caller unions in
            # state addresses for those
        for nid, node in self.graph.nodes.items():
            if node.address.module_path and node.address.module_path[0] in (
                delta.changed_modules
            ):
                seeds.add(nid)
        if delta.changed_locals or delta.changed_variables:
            for nid, node in self.graph.nodes.items():
                refs = node.decl.references()
                for ref in refs:
                    if ref.kind == "local" and ref.name in delta.changed_locals:
                        seeds.add(nid)
                    if ref.kind == "var" and ref.name in delta.changed_variables:
                        seeds.add(nid)
        return seeds

    def impact_scope(
        self, seeds: Set[str], include_ancestors: bool = False
    ) -> Set[str]:
        """Seeds plus everything that could observe their change.

        Descendants must be re-planned (their inputs may change).
        Ancestors are only needed for *evaluation* (their state values
        feed expressions), not re-planning -- included on request.
        """
        scope: Set[str] = set()
        for seed in seeds:
            if seed not in self.graph.dag:
                scope.add(seed)
                continue
            scope.add(seed)
            scope |= self.graph.dag.descendants(seed)
            if include_ancestors:
                scope |= self.graph.dag.ancestors(seed)
        return scope

    def scope_fraction(self, seeds: Set[str]) -> float:
        """|impact scope| / |graph| -- the paper's claimed savings lever."""
        if not self.graph.nodes:
            return 0.0
        return len(self.impact_scope(seeds)) / len(self.graph.nodes)


# -- structural fingerprints -------------------------------------------------


def _decl_fingerprint(decl: ResourceDecl) -> tuple:
    return (
        decl.mode,
        decl.type,
        decl.name,
        _body_fingerprint(decl.body),
        _expr_fp(decl.count),
        _expr_fp(decl.for_each),
        tuple(str(r) for r in decl.depends_on),
        decl.provider,
    )


def _body_fingerprint(body: Body) -> tuple:
    attrs = tuple(
        (name, _expr_fingerprint(attr)) for name, attr in sorted(body.attributes.items())
    )
    blocks = tuple(
        (b.type, tuple(b.labels), _body_fingerprint(b.body)) for b in body.blocks
    )
    return (attrs, blocks)


def _expr_fingerprint(attr: Attribute) -> str:
    return _expr_fp(attr.expr)


def _expr_fp(expr) -> str:
    """Cheap structural fingerprint of an expression AST."""
    if expr is None:
        return ""
    from ..lang.ast_nodes import (
        AttrAccess,
        BinaryOp,
        Conditional,
        ForExpr,
        FunctionCall,
        IndexAccess,
        ListExpr,
        Literal,
        ObjectExpr,
        ScopeRef,
        SplatExpr,
        TemplateExpr,
        UnaryOp,
    )

    if isinstance(expr, Literal):
        return f"lit({expr.value!r})"
    if isinstance(expr, ScopeRef):
        return f"ref({expr.name})"
    if isinstance(expr, AttrAccess):
        return f"{_expr_fp(expr.obj)}.{expr.name}"
    if isinstance(expr, IndexAccess):
        return f"{_expr_fp(expr.obj)}[{_expr_fp(expr.index)}]"
    if isinstance(expr, SplatExpr):
        return f"{_expr_fp(expr.obj)}[*].{'.'.join(expr.attrs)}"
    if isinstance(expr, FunctionCall):
        args = ",".join(_expr_fp(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}{_expr_fp(expr.operand)}"
    if isinstance(expr, BinaryOp):
        return f"({_expr_fp(expr.left)}{expr.op}{_expr_fp(expr.right)})"
    if isinstance(expr, Conditional):
        return (
            f"({_expr_fp(expr.cond)}?{_expr_fp(expr.then)}:"
            f"{_expr_fp(expr.otherwise)})"
        )
    if isinstance(expr, TemplateExpr):
        return "tpl(" + "+".join(_expr_fp(p) for p in expr.parts) + ")"
    if isinstance(expr, ListExpr):
        return "[" + ",".join(_expr_fp(i) for i in expr.items) + "]"
    if isinstance(expr, ObjectExpr):
        inner = ",".join(
            f"{_expr_fp(k)}={_expr_fp(v)}" for k, v in expr.entries
        )
        return "{" + inner + "}"
    if isinstance(expr, ForExpr):
        return (
            f"for({expr.key_var},{expr.value_var},{_expr_fp(expr.collection)},"
            f"{_expr_fp(expr.result_key)},{_expr_fp(expr.result_value)},"
            f"{_expr_fp(expr.condition)},{expr.grouping},{expr.is_object})"
        )
    return repr(expr)
