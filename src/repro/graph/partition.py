"""Plan-DAG partitioning: cut the estate into shards.

The execution DAG of a plan at estate scale is one monolithic graph;
walking it in a single executor is the Terraform bottleneck the paper's
cloudless control plane routes around. This module cuts the DAG into
**shards** -- by default one per ``(provider, region)`` partition,
optionally refined into weakly-connected components -- with every
dependency edge classified as intra-shard or recorded explicitly as a
cross-shard edge. Shard ids are deterministic across runs (pure
functions of the plan), so ledgers, resumes, and tests can refer to
them stably.

The sharded executor layer (:mod:`repro.deploy.sharded`) schedules one
executor per shard; cross-shard edges become barriers satisfied through
a fencing-token-checked completion ledger. The shard-level graph may be
cyclic even though the change-level DAG is not (two shards can feed
each other through different changes), so pool scheduling condenses
strongly-connected shard groups into one unit per wave.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..perf import PERF
from .dag import Dag
from .plan import Plan, PlannedChange


def change_partition(change: PlannedChange, state, gateway) -> Tuple[str, str]:
    """The ``(provider, region)`` a change's operations land in.

    Mirrors the executor's gating partition: planner-populated fields
    first, then the prior state entry's home region, then the provider
    default. Provider ``""`` means unknown (unroutable type) -- such
    changes land in the catch-all shard.
    """
    provider = change.provider
    if not provider:
        try:
            provider = gateway.provider_of(change.rtype)
        except Exception:
            return ("", "")
    region = change.region or ""
    if not region:
        prior = change.prior if change.prior else state.get(change.address)
        if prior is not None and prior.region:
            region = prior.region
    if not region:
        try:
            region = gateway.default_region(change.rtype)
        except Exception:
            region = ""
    return (provider, region)


@dataclasses.dataclass
class Shard:
    """One schedulable slice of the plan.

    ``id`` is deterministic: ``provider/region`` for partition cells,
    ``provider/region/cN`` for connected-component refinements (N
    assigned in order of each component's smallest change id), and
    ``bundle-N`` for coalesced cells under a shard-count cap.
    """

    id: str
    provider: str
    region: str
    change_ids: List[str] = dataclasses.field(default_factory=list)

    @property
    def partition(self) -> str:
        return f"{self.provider}/{self.region}" if self.region else self.provider

    def __len__(self) -> int:
        return len(self.change_ids)


class PartitionError(ValueError):
    """Raised when a plan cannot be partitioned as requested."""


class PlanPartition:
    """The result of cutting one plan's execution DAG into shards.

    Invariants (held by ``tests/test_partition.py``):

    * every execution-DAG node belongs to exactly one shard;
    * every edge is either intra-shard or present in ``cross_edges``;
    * shard ids are deterministic across runs of the same plan.
    """

    def __init__(self) -> None:
        self.shards: Dict[str, Shard] = {}
        self.shard_of: Dict[str, str] = {}
        #: change-id -> (provider, region) gating partition, recorded
        #: while cells are formed so executors need not recompute it
        self.part_of: Dict[str, Tuple[str, str]] = {}
        #: (before, after) change-id pairs whose endpoints live in
        #: different shards; sorted for determinism
        self.cross_edges: List[Tuple[str, str]] = []
        #: shard-id -> set of shard-ids it must hear from (union over
        #: cross edges); the shard-level graph, possibly cyclic
        self.upstream: Dict[str, Set[str]] = {}

    # -- views -------------------------------------------------------------

    def shard_ids(self) -> List[str]:
        return sorted(self.shards)

    def cross_edge_count(self) -> int:
        return len(self.cross_edges)

    def cross_predecessors(self, cid: str, dag: Dag) -> List[str]:
        """Predecessors of ``cid`` that live in another shard."""
        home = self.shard_of.get(cid)
        return sorted(
            p for p in dag.predecessors(cid) if self.shard_of.get(p) != home
        )

    def shards_for_partition(self, provider: str, region: str) -> List[str]:
        """Shards whose home partition is ``provider/region`` -- the
        shards a quarantined (dark) partition parks."""
        return sorted(
            s.id
            for s in self.shards.values()
            if s.provider == provider and (not region or s.region == region)
        )

    # -- pool scheduling ---------------------------------------------------

    def plane_groups(self) -> Dict[str, List[str]]:
        """Shard ids grouped by provider (= simulated control plane).

        Resource ids and computed attributes are minted by per-plane
        sequential counters and RNG streams in *resolve order*, so a
        parallel worker must own a whole plane to reproduce the
        single-executor byte stream: the plane is the unit of process
        parallelism, the shard the unit of scheduling.
        """
        groups: Dict[str, List[str]] = {}
        for sid in sorted(self.shards):
            groups.setdefault(self.shards[sid].provider, []).append(sid)
        return groups

    def pool_units(self) -> Tuple[List[List[str]], List[Set[int]]]:
        """The condensed provider-unit DAG for pool scheduling.

        Returns ``(units, unit_deps)``: ``units[i]`` is a sorted list
        of providers forming one schedulable unit (providers that feed
        each other condense into one), ``unit_deps[i]`` the indices of
        units that must complete before unit ``i`` may start. This is
        the ready-frontier form -- the overlapped pool dispatches a
        unit the moment its own predecessors have merged, instead of
        waiting on a whole barrier wave.
        """
        groups = self.plane_groups()
        provider_of_shard = {
            sid: s.provider for sid, s in self.shards.items()
        }
        # provider-level dependency graph from shard-level upstream sets
        dep: Dict[str, Set[str]] = {p: set() for p in groups}
        for sid, ups in self.upstream.items():
            for up in ups:
                a, b = provider_of_shard[up], provider_of_shard[sid]
                if a != b:
                    dep[b].add(a)
        units = _condense(dep)
        unit_of = {}
        for i, unit in enumerate(units):
            for p in unit:
                unit_of[p] = i
        unit_deps: List[Set[int]] = [set() for _ in units]
        for b, ups in dep.items():
            for a in ups:
                if unit_of[a] != unit_of[b]:
                    unit_deps[unit_of[b]].add(unit_of[a])
        return units, unit_deps

    def pool_waves(self) -> List[List[List[str]]]:
        """Plane groups scheduled into barrier-separated waves.

        Each wave is a list of plane groups (each a list of shard ids)
        with no unsatisfied cross-group dependency; groups that feed
        each other (a cycle at group level) are condensed into one
        unit. Returns ``[[group, ...], ...]`` outermost in execution
        order. Kahn over :meth:`pool_units`, deterministic by smallest
        member.
        """
        groups = self.plane_groups()
        units, unit_deps = self.pool_units()
        remaining = set(range(len(units)))
        waves: List[List[List[str]]] = []
        satisfied: Set[int] = set()
        while remaining:
            level = sorted(
                i for i in remaining if unit_deps[i] <= satisfied
            )
            if not level:  # pragma: no cover - _condense guarantees progress
                raise PartitionError("cyclic plane-group schedule")
            wave: List[List[str]] = []
            for i in level:
                for provider in sorted(units[i]):
                    wave.append(list(groups[provider]))
            waves.append(wave)
            satisfied |= set(level)
            remaining -= set(level)
        return waves


def _condense(dep: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly-connected components of a small digraph (iterative
    Tarjan), each returned sorted, ordered by smallest member."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []
    counter = [0]

    for root in sorted(dep):
        if root in index:
            continue
        work: List[Tuple[str, Iterable[str]]] = [(root, iter(sorted(dep[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(dep[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(sorted(component))
    result.sort(key=lambda comp: comp[0])
    return result


def partition_plan(
    plan: Plan,
    gateway: Any,
    dag: Optional[Dag] = None,
    *,
    split_components: bool = False,
    max_shards: Optional[int] = None,
) -> PlanPartition:
    """Cut ``plan``'s execution DAG into shards.

    ``split_components=True`` refines each ``(provider, region)`` cell
    into the weakly-connected components of its induced subgraph (ids
    ``provider/region/cN``). ``max_shards`` coalesces cells
    round-robin (sorted order) into at most that many shards
    (``bundle-N`` ids) -- the ``--shards`` CLI knob.
    """
    if dag is None:
        dag = plan.execution_dag()
    state = plan.state
    part = PlanPartition()

    # 1. partition cells
    cells: Dict[Tuple[str, str], List[str]] = {}
    part_of = part.part_of
    for cid in sorted(dag.nodes):
        change = plan.changes[cid]
        cell = change_partition(change, state, gateway)
        part_of[cid] = cell
        cells.setdefault(cell, []).append(cid)

    # 2. optional component refinement within each cell (union-find
    # over intra-cell edges)
    groups: List[Tuple[str, str, str, List[str]]] = []  # (sid, prov, region, cids)
    if split_components:
        for (provider, region), cids in sorted(cells.items()):
            members = set(cids)
            parent = {c: c for c in cids}

            def find(x: str) -> str:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            for cid in cids:
                for succ in dag.successors(cid):
                    if succ in members:
                        ra, rb = find(cid), find(succ)
                        if ra != rb:
                            parent[max(ra, rb)] = min(ra, rb)
            comps: Dict[str, List[str]] = {}
            for cid in cids:
                comps.setdefault(find(cid), []).append(cid)
            for i, root in enumerate(sorted(comps)):
                sid = f"{provider}/{region}/c{i}"
                groups.append((sid, provider, region, sorted(comps[root])))
    else:
        for (provider, region), cids in sorted(cells.items()):
            sid = f"{provider}/{region}"
            groups.append((sid, provider, region, sorted(cids)))

    # 3. optional coalescing under a shard-count cap
    if max_shards is not None and max_shards >= 1 and len(groups) > max_shards:
        buckets: List[List[Tuple[str, str, str, List[str]]]] = [
            [] for _ in range(max_shards)
        ]
        for i, group in enumerate(sorted(groups)):
            buckets[i % max_shards].append(group)
        merged: List[Tuple[str, str, str, List[str]]] = []
        for i, bucket in enumerate(buckets):
            if not bucket:
                continue
            providers = sorted({g[1] for g in bucket})
            regions = sorted({g[2] for g in bucket})
            provider = providers[0] if len(providers) == 1 else ""
            region = regions[0] if len(regions) == 1 else ""
            cids = sorted(cid for g in bucket for cid in g[3])
            merged.append((f"bundle-{i}", provider, region, cids))
        groups = merged

    for sid, provider, region, cids in groups:
        part.shards[sid] = Shard(sid, provider, region, cids)
        for cid in cids:
            part.shard_of[cid] = sid

    # 4. classify edges
    cross: List[Tuple[str, str]] = []
    for before, after in dag.iter_edges():
        sa, sb = part.shard_of[before], part.shard_of[after]
        if sa != sb:
            cross.append((before, after))
            part.upstream.setdefault(sb, set()).add(sa)
    cross.sort()
    part.cross_edges = cross
    PERF.count("shard.shards", len(part.shards))
    PERF.count("shard.cross_edges", len(cross))
    return part
