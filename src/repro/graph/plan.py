"""Plan computation: desired graph vs. current state -> execution plan.

Mirrors ``terraform plan`` (paper 2.1): every resource instance is
diffed against the golden state and classified CREATE / UPDATE /
REPLACE / DELETE / READ / NOOP; the result carries an execution DAG that
executors walk (sequentially, best-effort, or critical-path-first).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..addressing import DATA, MANAGED, ResourceAddress
from ..lang.values import Unknown, collect_unknown_origins, is_unknown, values_equal
from ..state.document import ResourceState, StateDocument
from .builder import ResourceGraph, ResourceNode
from .dag import Dag


class Action(enum.Enum):
    CREATE = "create"
    UPDATE = "update"
    REPLACE = "replace"
    DELETE = "delete"
    READ = "read"
    NOOP = "noop"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: actions that require touching the cloud
ACTIONABLE = {Action.CREATE, Action.UPDATE, Action.REPLACE, Action.DELETE, Action.READ}


class PlanError(RuntimeError):
    """Raised when a plan cannot be produced (e.g. prevent_destroy)."""


@dataclasses.dataclass
class AttrDiff:
    """One attribute-level difference."""

    name: str
    old: Any
    new: Any
    requires_replacement: bool = False

    def render_new(self) -> str:
        return "(known after apply)" if is_unknown(self.new) else repr(self.new)


@dataclasses.dataclass
class PlannedChange:
    """One resource instance's planned action."""

    action: Action
    address: ResourceAddress
    node: Optional[ResourceNode] = None  # None for DELETE of removed resources
    prior: Optional[ResourceState] = None
    desired: Dict[str, Any] = dataclasses.field(default_factory=dict)
    diffs: List[AttrDiff] = dataclasses.field(default_factory=list)
    region: str = ""
    provider: str = ""

    @property
    def id(self) -> str:
        return str(self.address)

    @property
    def rtype(self) -> str:
        return self.address.type

    def replacement_reasons(self) -> List[str]:
        return [d.name for d in self.diffs if d.requires_replacement]


class ValueResolver:
    """ResourceResolver backed by graph shape + state + apply results.

    At plan time ``overrides`` holds data-source reads; at apply time
    executors add each completed create/update so downstream attribute
    evaluations see real ids instead of Unknowns.
    """

    def __init__(self, graph: ResourceGraph, state: StateDocument):
        self.graph = graph
        self.state = state
        self.overrides: Dict[str, Dict[str, Any]] = {}
        #: addresses whose state values must NOT be used (planned for
        #: replacement -- their computed attrs change at apply)
        self.pending: set = set()
        #: opt-in declaration-level resolve cache (see enable_decl_cache)
        self._decl_cache: Optional[Dict[Tuple, Any]] = None
        self._decl_of: Dict[str, Tuple] = {}

    def enable_decl_cache(self) -> None:
        """Memoize per-declaration resolve shapes and values.

        ``resolve()`` normally re-sorts a declaration's instances and
        re-assembles the container on *every* reference evaluation --
        O(instances) per evaluated attribute, the dominant apply-time
        cost at estate scale. With the cache on, the container shape is
        computed once and the per-instance values are rebuilt only when
        an instance of that declaration commits (``set_override``) --
        between commits a resolve is a shallow container copy. The copy
        keeps aliasing behaviour identical to the uncached path (each
        call returns a fresh container; per-instance dicts are shared
        either way). Off by default; the sharded executor turns it on.
        """
        if self._decl_cache is None:
            self._decl_cache = {}
            self._decl_of = {
                nid: (
                    node.address.module_path,
                    node.address.mode,
                    node.address.type,
                    node.address.name,
                )
                for nid, node in self.graph.nodes.items()
            }

    def _invalidate(self, address: str) -> None:
        cache = self._decl_cache
        if cache is not None:
            key = self._decl_of.get(address)
            if key is not None:
                entry = cache.get(key)
                if entry is not None:
                    entry[2] = None  # drop values, keep shape

    def set_override(self, address: str, attrs: Dict[str, Any]) -> None:
        self.overrides[address] = dict(attrs)
        self.pending.discard(address)
        if self._decl_cache is not None:
            self._invalidate(address)

    def drop_override(self, address: str) -> None:
        self.overrides.pop(address, None)
        if self._decl_cache is not None:
            self._invalidate(address)

    def mark_pending(self, address: str) -> None:
        self.pending.add(address)
        if self._decl_cache is not None:
            self._invalidate(address)

    def resolve(self, module_path, mode, rtype, name, span=None):
        decl_key = (tuple(module_path), mode, rtype, name)
        cache = self._decl_cache
        if cache is not None:
            entry = cache.get(decl_key)
            if entry is not None:
                kind, ordered, values = entry
                if values is None:
                    values = [self._value_for(n) for n in ordered]
                    entry[2] = values
                if kind == "single":
                    return values[0]
                if kind == "list":
                    return list(values)
                return {
                    str(n.instance_key): v for n, v in zip(ordered, values)
                }
        ids = self.graph.decl_instances.get(decl_key)
        prefix = "data." if mode == DATA else ""
        mods = "".join(f"module.{m}." for m in module_path)
        base_text = f"{mods}{prefix}{rtype}.{name}"
        if not ids:
            return Unknown(base_text)
        nodes = [self.graph.nodes[i] for i in ids]
        keys = [n.instance_key for n in nodes]
        if keys == [None]:
            if cache is not None:
                cache[decl_key] = ["single", nodes, None]
            return self._value_for(nodes[0])
        if all(isinstance(k, int) for k in keys):
            ordered = sorted(nodes, key=lambda n: n.instance_key)
            if cache is not None:
                cache[decl_key] = ["list", ordered, None]
            return [self._value_for(n) for n in ordered]
        if cache is not None:
            cache[decl_key] = ["map", nodes, None]
        return {str(n.instance_key): self._value_for(n) for n in nodes}

    def _value_for(self, node: ResourceNode) -> Any:
        addr_text = node.id
        if addr_text in self.overrides:
            return self.overrides[addr_text]
        if addr_text in self.pending:
            return Unknown(addr_text)
        entry = self.state.get(node.address)
        if entry is not None:
            attrs = dict(entry.attrs)
            attrs.setdefault("id", entry.resource_id)
            return attrs
        return Unknown(addr_text)


class Plan:
    """The full set of planned changes plus execution ordering."""

    def __init__(self, graph: ResourceGraph, state: StateDocument):
        self.graph = graph
        self.state = state
        self.changes: Dict[str, PlannedChange] = {}
        self.resolver = ValueResolver(graph, state)
        #: memoized critical-path analyses for this plan, keyed by
        #: (edge set, durations) -- see repro.graph.critical_path.analyze
        self.analysis_cache: Dict[Any, Any] = {}
        # point the graph's module contexts at this plan's resolver so
        # attribute evaluation sees state/apply-time values
        from ..lang.context import DeferredResolver

        if isinstance(graph.binding_resolver, DeferredResolver):
            graph.binding_resolver.target = self.resolver

    def add(self, change: PlannedChange) -> None:
        self.changes[change.id] = change
        self.analysis_cache.clear()

    def by_action(self, *actions: Action) -> List[PlannedChange]:
        wanted = set(actions)
        return sorted(
            (c for c in self.changes.values() if c.action in wanted),
            key=lambda c: c.id,
        )

    def actionable(self) -> List[PlannedChange]:
        return sorted(
            (c for c in self.changes.values() if c.action in ACTIONABLE),
            key=lambda c: c.id,
        )

    def summary(self) -> Dict[str, int]:
        out = {a.value: 0 for a in Action}
        for change in self.changes.values():
            out[change.action.value] += 1
        return out

    @property
    def is_empty(self) -> bool:
        mutating = {Action.CREATE, Action.UPDATE, Action.REPLACE, Action.DELETE}
        return not any(c.action in mutating for c in self.changes.values())

    def render(self) -> str:
        """Human-readable plan, terraform-style."""
        lines: List[str] = []
        symbol = {
            Action.CREATE: "+",
            Action.UPDATE: "~",
            Action.REPLACE: "-/+",
            Action.DELETE: "-",
            Action.READ: "<=",
        }
        for change in self.actionable():
            lines.append(f"{symbol[change.action]:>3} {change.id}")
            for diff in change.diffs:
                flag = " # forces replacement" if diff.requires_replacement else ""
                lines.append(
                    f"      {diff.name}: {diff.old!r} -> {diff.render_new()}{flag}"
                )
        summary = self.summary()
        lines.append(
            f"Plan: {summary['create'] + summary['replace']} to add, "
            f"{summary['update']} to change, "
            f"{summary['delete'] + summary['replace']} to destroy."
        )
        return "\n".join(lines)

    def to_dot(self) -> str:
        """DOT rendering of the full resource graph, colored by action."""
        colors = {
            Action.CREATE: "green",
            Action.UPDATE: "orange",
            Action.REPLACE: "red",
            Action.DELETE: "gray",
            Action.READ: "blue",
            Action.NOOP: "black",
        }

        def color(node_id: str) -> str:
            change = self.changes.get(node_id)
            return colors[change.action] if change else "black"

        dag = self.graph.dag.copy()
        for change in self.by_action(Action.DELETE):
            dag.add_node(change.id)
        return dag.to_dot(name="plan", color=color)

    # -- execution ordering -----------------------------------------------------

    def execution_dag(self) -> Dag[str]:
        """DAG over actionable changes; edge u->v means u runs first."""
        dag: Dag[str] = Dag()
        actionable_ids = {c.id for c in self.actionable()}
        for cid in actionable_ids:
            dag.add_node(cid)

        # forward edges among graph-backed (non-delete) changes, with
        # transitive skipping over NOOP nodes
        forward_actions = {Action.CREATE, Action.UPDATE, Action.REPLACE, Action.READ}
        graph_ids = set(self.graph.nodes)
        for cid in actionable_ids:
            change = self.changes[cid]
            if change.action not in forward_actions or cid not in graph_ids:
                continue
            for ancestor in self._actionable_ancestors(cid, forward_actions):
                dag.add_edge(ancestor, cid)

        # deletes run in reverse dependency order (dependents first),
        # using the dependencies recorded in state at apply time
        delete_ids = {
            c.id for c in self.actionable() if c.action is Action.DELETE
        }
        for cid in delete_ids:
            prior = self.changes[cid].prior
            if prior is None:
                continue
            for dep in prior.dependencies:
                if dep in delete_ids and dep != cid:
                    dag.add_edge(cid, dep)  # delete dependent before dependency

        # surviving resources that referenced a to-be-deleted resource
        # must update first (drop the reference), or the cloud refuses
        # the delete with a DependencyViolation
        if delete_ids:
            for change in self.actionable():
                if change.action not in (Action.UPDATE, Action.REPLACE):
                    continue
                prior = change.prior
                if prior is None:
                    continue
                for dep in prior.dependencies:
                    if dep in delete_ids and dep != change.id:
                        dag.add_edge(change.id, dep)
        return dag

    def _actionable_ancestors(
        self, cid: str, forward_actions: Set[Action]
    ) -> Set[str]:
        """Nearest actionable ancestors, skipping through NOOP nodes."""
        out: Set[str] = set()
        seen: Set[str] = set()
        frontier = list(self.graph.dag.predecessors(cid))
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            change = self.changes.get(cur)
            if change is not None and change.action in forward_actions:
                out.add(cur)
            else:
                frontier.extend(self.graph.dag.predecessors(cur))
        return out


class Planner:
    """Computes plans. ``spec_lookup`` maps rtype -> ResourceTypeSpec."""

    def __init__(
        self,
        spec_lookup: Optional[Callable[[str], Any]] = None,
        region_lookup: Optional[Callable[[str, Dict[str, Any]], str]] = None,
        provider_lookup: Optional[Callable[[str], str]] = None,
    ):
        self._spec_lookup = spec_lookup or (lambda rtype: None)
        self._region_lookup = region_lookup or (lambda rtype, attrs: "")
        self._provider_lookup = provider_lookup or (
            lambda rtype: rtype.split("_", 1)[0]
        )

    def _spec(self, rtype: str):
        try:
            return self._spec_lookup(rtype)
        except Exception:
            return None

    # -- main entry --------------------------------------------------------------

    def plan(
        self,
        graph: ResourceGraph,
        state: StateDocument,
        data_values: Optional[Dict[str, Dict[str, Any]]] = None,
        limit_to: Optional[Set[str]] = None,
    ) -> Plan:
        """Diff ``graph`` against ``state``.

        ``data_values``: pre-read data source values (addr -> attrs).
        ``limit_to``: impact-scoped planning -- only these addresses
        (plus deletions among them) are diffed; everything else is NOOP.
        """
        plan = Plan(graph, state)
        for addr_text, attrs in (data_values or {}).items():
            plan.resolver.set_override(addr_text, attrs)

        # data sources become READ actions
        for nid in graph.data_ids():
            node = graph.nodes[nid]
            plan.add(
                PlannedChange(
                    action=Action.READ,
                    address=node.address,
                    node=node,
                    provider=self._provider_lookup(node.address.type),
                )
            )

        # walk managed instances in dependency order so upstream
        # decisions (replace/create) are known when dependents evaluate
        order = [
            nid
            for nid in graph.dag.topological_order()
            if nid in graph.nodes and graph.nodes[nid].address.mode == MANAGED
        ]
        decided: Dict[str, Action] = {}
        for nid in order:
            node = graph.nodes[nid]
            if limit_to is not None and nid not in limit_to:
                prior = state.get(node.address)
                change = PlannedChange(
                    action=Action.NOOP,
                    address=node.address,
                    node=node,
                    prior=prior,
                )
                plan.add(change)
                decided[nid] = Action.NOOP
                continue
            change = self._diff_node(node, state, plan, decided)
            plan.add(change)
            decided[nid] = change.action
            if change.action is Action.REPLACE:
                # dependents must see this resource's values as unknown:
                # its computed attributes change when it is recreated
                plan.resolver.mark_pending(nid)

        # deletions: state entries whose address vanished from the graph
        for entry in state.resources():
            addr_text = str(entry.address)
            if entry.address.mode == DATA:
                continue
            if addr_text in graph.nodes:
                continue
            if limit_to is not None and addr_text not in limit_to:
                continue
            plan.add(
                PlannedChange(
                    action=Action.DELETE,
                    address=entry.address,
                    prior=entry,
                    region=entry.region,
                    provider=entry.provider,
                )
            )
        self._check_prevent_destroy(plan)
        return plan

    # -- per-node diff ---------------------------------------------------------

    def _diff_node(
        self,
        node: ResourceNode,
        state: StateDocument,
        plan: Plan,
        decided: Dict[str, Action],
    ) -> PlannedChange:
        try:
            desired = node.evaluate_attrs()
        except Exception as exc:
            raise PlanError(f"{node.id}: cannot evaluate attributes: {exc}")
        prior = state.get(node.address)
        rtype = node.address.type
        spec = self._spec(rtype)
        region = (
            self._provider_config_region(node, desired)
            or self._region_lookup(rtype, desired)
            or (prior.region if prior else "")
        )
        provider = self._provider_lookup(rtype)
        change = PlannedChange(
            action=Action.NOOP,
            address=node.address,
            node=node,
            prior=prior,
            desired=desired,
            region=region,
            provider=provider,
        )
        if prior is None:
            change.action = Action.CREATE
            change.diffs = [
                AttrDiff(name, None, value)
                for name, value in sorted(desired.items())
                if value is not None
            ]
            return change

        ignore = set(node.decl.lifecycle.ignore_changes)
        requires_replace = False
        for name, new_value in sorted(desired.items()):
            if name in ignore or new_value is None:
                continue
            old_value = prior.attrs.get(name)
            if is_unknown(new_value):
                # unknown because an upstream resource is being
                # created/replaced; only a real change if that is so
                origins = collect_unknown_origins(new_value)
                upstream_changing = any(
                    decided.get(origin) in (Action.CREATE, Action.REPLACE)
                    for origin in origins
                ) or not origins
                if upstream_changing:
                    change.diffs.append(AttrDiff(name, old_value, new_value))
                continue
            if not values_equal(old_value, new_value):
                forces = self._forces_replacement(spec, name)
                change.diffs.append(
                    AttrDiff(name, old_value, new_value, requires_replacement=forces)
                )
                requires_replace = requires_replace or forces

        # moving regions always means replacement
        if region and prior.region and region != prior.region:
            change.diffs.append(
                AttrDiff("location", prior.region, region, requires_replacement=True)
            )
            requires_replace = True

        if not change.diffs:
            change.action = Action.NOOP
        elif requires_replace:
            change.action = Action.REPLACE
        else:
            change.action = Action.UPDATE
        return change

    def _provider_config_region(
        self, node: ResourceNode, desired: Dict[str, Any]
    ) -> str:
        """Region from the module's provider block, unless the resource
        pins its own location attribute.

        ``provider "aws" { region = "us-west-2" }`` makes that region
        the default for every aws resource in the module; a resource's
        explicit ``provider = aws.west`` meta-argument selects an
        aliased block.
        """
        location = desired.get("location")
        if isinstance(location, str) and location:
            return ""  # explicit per-resource location wins
        provider_key = node.decl.provider or self._provider_lookup(
            node.address.type
        )
        config = node.context.config
        block = config.providers.get(provider_key)
        if block is None and "." in provider_key:
            block = config.providers.get(provider_key.split(".", 1)[0])
        if block is None:
            return ""
        expr = block.body.attr_expr("region") or block.body.attr_expr("location")
        if expr is None:
            return ""
        try:
            from ..lang.evaluator import Evaluator

            value = Evaluator(node.context.scope()).evaluate(expr)
        except Exception:
            return ""
        return value if isinstance(value, str) else ""

    def _forces_replacement(self, spec: Any, attr_name: str) -> bool:
        if spec is None:
            return False
        if attr_name in getattr(spec, "immutable_attrs", ()):
            return True
        aspec = spec.attr(attr_name) if hasattr(spec, "attr") else None
        return bool(aspec is not None and aspec.forces_replacement)

    def _check_prevent_destroy(self, plan: Plan) -> None:
        for change in plan.by_action(Action.DELETE, Action.REPLACE):
            node = change.node
            if node is not None and node.decl.lifecycle.prevent_destroy:
                raise PlanError(
                    f"{change.id}: planned {change.action.value} but lifecycle "
                    f"prevent_destroy is set"
                )
