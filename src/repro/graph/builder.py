"""Builds the resource dependency graph from a configuration.

This is the step Terraform calls "graph construction" (paper 2.1): the
module tree is expanded, ``count``/``for_each`` are resolved into
concrete instances, and every expression reference is traced --
transitively through locals, module inputs, and module outputs -- to the
resource instances it ultimately depends on.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set, Tuple

from ..addressing import DATA, MANAGED, InstanceKey, ResourceAddress
from ..lang.config import Configuration, ModuleCall, ResourceDecl
from ..lang.context import DeferredResolver, ModuleContext, ResourceResolver
from ..lang.diagnostics import CLCEvalError, DiagnosticSink
from ..lang.module_loader import ModuleLoader, NullModuleLoader
from ..lang.references import Reference, extract_references
from ..lang.values import Unknown
from .dag import CycleError, Dag

ModulePath = Tuple[str, ...]


class GraphBuildError(RuntimeError):
    """Raised when the configuration cannot be expanded into a graph."""


@dataclasses.dataclass
class ResourceNode:
    """One resource *instance* in the dependency graph."""

    address: ResourceAddress
    decl: ResourceDecl
    context: ModuleContext
    instance_key: InstanceKey = None

    @property
    def id(self) -> str:
        return str(self.address)

    def instance_bindings(self) -> Dict[str, Any]:
        """The ``count.index`` / ``each`` overlay for this instance."""
        if isinstance(self.instance_key, int):
            return {"count": {"index": self.instance_key}}
        if isinstance(self.instance_key, str):
            each_value = self._each_value()
            return {"each": {"key": self.instance_key, "value": each_value}}
        return {}

    def _each_value(self) -> Any:
        assert isinstance(self.instance_key, str)
        if self.decl.for_each is None:
            return self.instance_key
        from ..lang.evaluator import Evaluator

        collection = Evaluator(self.context.scope()).evaluate(self.decl.for_each)
        if isinstance(collection, dict):
            return collection.get(self.instance_key, self.instance_key)
        return self.instance_key

    def evaluate_attrs(self) -> Dict[str, Any]:
        """Evaluate the instance's configured attributes (may contain
        Unknowns when dependencies are not yet created)."""
        from ..lang.evaluator import Evaluator

        evaluator = Evaluator(self.context.scope(self.instance_bindings()))
        return {
            name: evaluator.evaluate(attr.expr)
            for name, attr in self.decl.body.attributes.items()
        }


@dataclasses.dataclass
class _ModuleNode:
    path: ModulePath
    config: Configuration
    context: ModuleContext
    parent: Optional["_ModuleNode"] = None
    call: Optional[ModuleCall] = None
    children: Dict[str, "_ModuleNode"] = dataclasses.field(default_factory=dict)


class ResourceGraph:
    """The expanded instance graph + node payloads."""

    def __init__(self) -> None:
        self.dag: Dag[str] = Dag()
        self.nodes: Dict[str, ResourceNode] = {}
        #: (module_path, mode, type, name) -> instance node ids
        self.decl_instances: Dict[Tuple, List[str]] = {}
        self.root_context: Optional[ModuleContext] = None
        #: the resolver installed in module contexts; when it is a
        #: DeferredResolver the planner binds it to a state-backed one
        self.binding_resolver: Optional[ResourceResolver] = None

    def add_node(self, node: ResourceNode) -> None:
        self.nodes[node.id] = node
        self.dag.add_node(node.id)
        key = (
            node.address.module_path,
            node.address.mode,
            node.address.type,
            node.address.name,
        )
        self.decl_instances.setdefault(key, []).append(node.id)

    def node(self, node_id: str) -> ResourceNode:
        return self.nodes[node_id]

    def managed_ids(self) -> List[str]:
        return sorted(
            nid for nid, n in self.nodes.items() if n.address.mode == MANAGED
        )

    def data_ids(self) -> List[str]:
        return sorted(nid for nid, n in self.nodes.items() if n.address.mode == DATA)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes


class GraphBuilder:
    """Expands a configuration into a :class:`ResourceGraph`."""

    def __init__(
        self,
        config: Configuration,
        variables: Optional[Dict[str, Any]] = None,
        loader: Optional[ModuleLoader] = None,
        resolver: Optional[ResourceResolver] = None,
    ):
        self.config = config
        self.variables = variables or {}
        self.loader = loader or NullModuleLoader()
        self.resolver = resolver or DeferredResolver()
        self.diagnostics = DiagnosticSink()
        self._dep_cache: Dict[Tuple, Set[str]] = {}
        self._dep_in_progress: Set[Tuple] = set()

    def build(self) -> ResourceGraph:
        if self.config.diagnostics.has_errors():
            first = self.config.diagnostics.errors[0]
            raise GraphBuildError(f"configuration has errors: {first.message}")
        graph = ResourceGraph()
        root = self._build_module_tree()
        graph.root_context = root.context
        graph.binding_resolver = self.resolver
        modules = self._flatten_modules(root)
        # phase 1: expand every resource decl into instances
        for mnode in modules:
            for decl in mnode.config.resources.values():
                for key in self._expand_keys(mnode, decl):
                    address = ResourceAddress(
                        type=decl.type,
                        name=decl.name,
                        module_path=mnode.path,
                        mode=decl.mode,
                        instance_key=key,
                    )
                    graph.add_node(
                        ResourceNode(
                            address=address,
                            decl=decl,
                            context=mnode.context,
                            instance_key=key,
                        )
                    )
        # phase 2: wire dependency edges
        for mnode in modules:
            for decl in mnode.config.resources.values():
                decl_key = (mnode.path, decl.mode, decl.type, decl.name)
                instance_ids = graph.decl_instances.get(decl_key, [])
                dep_addrs: Set[str] = set()
                for ref in sorted(decl.references()):
                    dep_addrs |= self._deps_of_reference(mnode, ref, graph)
                for dep in sorted(dep_addrs):
                    for nid in instance_ids:
                        if dep != nid:
                            graph.dag.add_edge(dep, nid)
        try:
            graph.dag.validate_acyclic()
        except CycleError as exc:
            raise GraphBuildError(str(exc))
        return graph

    # -- module tree ------------------------------------------------------

    def _build_module_tree(self) -> _ModuleNode:
        root_ctx = ModuleContext(
            self.config,
            variables=self.variables,
            loader=self.loader,
            resolver=self.resolver,
        )
        root = _ModuleNode(path=(), config=self.config, context=root_ctx)
        self._expand_children(root)
        return root

    def _expand_children(self, mnode: _ModuleNode) -> None:
        for call_name in sorted(mnode.config.module_calls):
            call = mnode.config.module_calls[call_name]
            try:
                child_ctx = mnode.context.child_context(call_name)
            except CLCEvalError as exc:
                raise GraphBuildError(
                    f"module {'.'.join(mnode.path + (call_name,))}: {exc.message}"
                )
            child = _ModuleNode(
                path=mnode.path + (call_name,),
                config=child_ctx.config,
                context=child_ctx,
                parent=mnode,
                call=call,
            )
            mnode.children[call_name] = child
            self._expand_children(child)

    def _flatten_modules(self, root: _ModuleNode) -> List[_ModuleNode]:
        out: List[_ModuleNode] = []
        stack = [root]
        while stack:
            mnode = stack.pop()
            out.append(mnode)
            stack.extend(mnode.children[name] for name in sorted(mnode.children))
        return out

    # -- count / for_each expansion ---------------------------------------------

    def _expand_keys(
        self, mnode: _ModuleNode, decl: ResourceDecl
    ) -> List[InstanceKey]:
        from ..lang.evaluator import Evaluator

        evaluator = Evaluator(mnode.context.scope())
        if decl.count is not None:
            value = evaluator.evaluate(decl.count)
            if isinstance(value, Unknown):
                raise GraphBuildError(
                    f"{decl.address}: 'count' depends on values not known "
                    f"until apply"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise GraphBuildError(f"{decl.address}: 'count' must be a number")
            count = int(value)
            if count < 0:
                raise GraphBuildError(f"{decl.address}: 'count' must be >= 0")
            return list(range(count))
        if decl.for_each is not None:
            value = evaluator.evaluate(decl.for_each)
            if isinstance(value, Unknown):
                raise GraphBuildError(
                    f"{decl.address}: 'for_each' depends on values not known "
                    f"until apply"
                )
            if isinstance(value, dict):
                return sorted(value.keys())
            if isinstance(value, list):
                keys: List[InstanceKey] = []
                for item in value:
                    if not isinstance(item, str):
                        raise GraphBuildError(
                            f"{decl.address}: 'for_each' set elements must be "
                            f"strings"
                        )
                    if item in keys:
                        raise GraphBuildError(
                            f"{decl.address}: duplicate for_each key {item!r}"
                        )
                    keys.append(item)
                return sorted(keys)
            raise GraphBuildError(f"{decl.address}: 'for_each' must be map or set")
        return [None]

    # -- transitive reference resolution ---------------------------------------

    def _deps_of_reference(
        self, mnode: _ModuleNode, ref: Reference, graph: ResourceGraph
    ) -> Set[str]:
        cache_key = (mnode.path, ref.kind, ref.type, ref.name)
        if cache_key in self._dep_cache:
            return self._dep_cache[cache_key]
        if cache_key in self._dep_in_progress:
            raise GraphBuildError(
                f"reference cycle through {ref} in module "
                f"{'.'.join(mnode.path) or '<root>'}"
            )
        self._dep_in_progress.add(cache_key)
        try:
            deps = self._deps_uncached(mnode, ref, graph)
        finally:
            self._dep_in_progress.discard(cache_key)
        self._dep_cache[cache_key] = deps
        return deps

    def _deps_uncached(
        self, mnode: _ModuleNode, ref: Reference, graph: ResourceGraph
    ) -> Set[str]:
        if ref.kind in ("resource", "data"):
            mode = MANAGED if ref.kind == "resource" else DATA
            decl_key = (mnode.path, mode, ref.type, ref.name)
            ids = graph.decl_instances.get(decl_key)
            if ids is None:
                self.diagnostics.error(
                    f"reference to undeclared {ref} in module "
                    f"{'.'.join(mnode.path) or '<root>'}",
                    code="GRAPH001",
                )
                return set()
            return set(ids)
        if ref.kind == "local":
            attr = mnode.config.locals.get(ref.name)
            if attr is None:
                self.diagnostics.error(
                    f"reference to undeclared local.{ref.name}", code="GRAPH002"
                )
                return set()
            deps: Set[str] = set()
            for sub in sorted(extract_references(attr.expr)):
                deps |= self._deps_of_reference(mnode, sub, graph)
            return deps
        if ref.kind == "var":
            if mnode.parent is None or mnode.call is None:
                return set()
            arg = mnode.call.body.attributes.get(ref.name)
            if arg is None:
                return set()
            deps = set()
            for sub in sorted(extract_references(arg.expr)):
                deps |= self._deps_of_reference(mnode.parent, sub, graph)
            return deps
        if ref.kind == "module":
            child = mnode.children.get(ref.name)
            if child is None:
                self.diagnostics.error(
                    f"reference to undeclared module.{ref.name}", code="GRAPH003"
                )
                return set()
            outputs = child.config.outputs
            targets = (
                [outputs[ref.attr]]
                if ref.attr and ref.attr in outputs
                else list(outputs.values())
            )
            deps = set()
            for output in targets:
                for sub in sorted(extract_references(output.value)):
                    deps |= self._deps_of_reference(child, sub, graph)
            # module-level depends_on in the call
            if mnode.children[ref.name].call is not None:
                for dref in mnode.children[ref.name].call.depends_on:
                    deps |= self._deps_of_reference(mnode, dref, graph)
            return deps
        return set()


def build_graph(
    config: Configuration,
    variables: Optional[Dict[str, Any]] = None,
    loader: Optional[ModuleLoader] = None,
    resolver: Optional[ResourceResolver] = None,
) -> ResourceGraph:
    """Convenience wrapper around :class:`GraphBuilder`."""
    return GraphBuilder(config, variables, loader, resolver).build()
