"""Generic directed acyclic graph.

The workhorse behind resource dependency graphs, execution plans,
critical-path scheduling (3.3), and impact-scope analysis (3.3). Nodes
are hashable identifiers; payloads live in the caller.

Edge direction convention: an edge ``u -> v`` means *u must complete
before v* (v depends on u).

Performance notes (the deploy hot path runs through here at
10k-resource scale, see ``docs/performance.md``):

* ``nodes``, ``successors`` and ``predecessors`` are O(1) zero-copy
  views over internal storage -- callers must not mutate them.
* ``topological_order`` is heap-based Kahn's algorithm,
  O((V + E) log V), with deterministic key-based tie-breaking.
* ``subgraph`` / ``copy`` / ``reversed`` are single-pass over the
  adjacency maps instead of materializing an edge list.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    KeysView,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from ..perf import PERF

N = TypeVar("N", bound=Hashable)

#: shared immutable empty adjacency view for nodes not in the graph
_EMPTY: frozenset = frozenset()


class CycleError(ValueError):
    """Raised when a DAG operation finds a dependency cycle."""

    def __init__(self, cycle: List):
        pretty = " -> ".join(str(n) for n in cycle)
        super().__init__(f"dependency cycle: {pretty}")
        self.cycle = cycle


class Dag(Generic[N]):
    """Adjacency-set DAG with the analyses the planner needs."""

    def __init__(self) -> None:
        self._succ: Dict[N, Set[N]] = {}
        self._pred: Dict[N, Set[N]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: N) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, before: N, after: N) -> None:
        """Record that ``before`` must complete before ``after``."""
        if before == after:
            raise CycleError([before, after])
        self.add_node(before)
        self.add_node(after)
        self._succ[before].add(after)
        self._pred[after].add(before)

    def remove_node(self, node: N) -> None:
        for succ in self._succ.pop(node, set()):
            self._pred[succ].discard(node)
        for pred in self._pred.pop(node, set()):
            self._succ[pred].discard(node)

    # -- basic queries ------------------------------------------------------

    @property
    def nodes(self) -> KeysView[N]:
        """O(1) view of the node set (iterate / ``in`` / ``len``; no copy)."""
        return self._succ.keys()

    def __contains__(self, node: N) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def edges(self) -> List[Tuple[N, N]]:
        return [(u, v) for u, succs in self._succ.items() for v in succs]

    def iter_edges(self) -> Iterator[Tuple[N, N]]:
        """Lazy edge iteration (no list materialized)."""
        for u, succs in self._succ.items():
            for v in succs:
                yield (u, v)

    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def successors(self, node: N) -> AbstractSet[N]:
        """Zero-copy view of ``node``'s direct successors.

        The returned set is live internal storage -- treat it as
        read-only and do not hold it across graph mutations.
        """
        return self._succ.get(node, _EMPTY)

    def predecessors(self, node: N) -> AbstractSet[N]:
        """Zero-copy view of ``node``'s direct predecessors (read-only)."""
        return self._pred.get(node, _EMPTY)

    def in_degree(self, node: N) -> int:
        return len(self._pred.get(node, _EMPTY))

    def in_degrees(self) -> Dict[N, int]:
        """``{node: in-degree}`` for every node, in one pass."""
        return {n: len(preds) for n, preds in self._pred.items()}

    def roots(self) -> List[N]:
        return [n for n in self._succ if not self._pred[n]]

    def leaves(self) -> List[N]:
        return [n for n in self._succ if not self._succ[n]]

    # -- traversal ------------------------------------------------------------

    def topological_order(self, key: Optional[Callable[[N], object]] = None) -> List[N]:
        """Heap-based Kahn's algorithm, O((V + E) log V).

        ``key`` breaks ties deterministically (default: ``str``). Nodes
        whose keys compare equal are emitted in the order they became
        ready (insertion order among the initial roots), so the result
        is stable for a given construction sequence -- identical to the
        ordering the previous sort-based implementation produced.
        """
        PERF.count("dag.topo_sorts")
        sort_key = key or str
        heap: List[Tuple[object, int, N]] = []
        seq = 0
        indeg: Dict[N, int] = {}
        for node, preds in self._pred.items():
            d = len(preds)
            indeg[node] = d
            if d == 0:
                heap.append((sort_key(node), seq, node))
                seq += 1
        heapq.heapify(heap)
        out: List[N] = []
        succ = self._succ
        while heap:
            _, _, node = heapq.heappop(heap)
            out.append(node)
            for s in succ[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(heap, (sort_key(s), seq, s))
                    seq += 1
        if len(out) != len(succ):
            raise CycleError(self.find_cycle() or [])
        return out

    def find_cycle(self) -> Optional[List[N]]:
        """Some cycle in the graph, or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[N, int] = {n: WHITE for n in self._succ}
        parent: Dict[N, Optional[N]] = {}

        for start in self._succ:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[N, Iterable[N]]] = [(start, iter(sorted(self._succ[start], key=str)))]
            color[start] = GRAY
            parent[start] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if color[succ] == WHITE:
                        color[succ] = GRAY
                        parent[succ] = node
                        stack.append((succ, iter(sorted(self._succ[succ], key=str))))
                        advanced = True
                        break
                    if color[succ] == GRAY:
                        cycle = [succ, node]
                        cur = parent[node]
                        while cur is not None and cur != succ:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.append(succ)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def validate_acyclic(self) -> None:
        cycle = self.find_cycle()
        if cycle:
            raise CycleError(cycle)

    def ancestors(self, node: N) -> Set[N]:
        """Every node that must complete before ``node``."""
        return self._reach(node, self._pred)

    def descendants(self, node: N) -> Set[N]:
        """Every node that depends (transitively) on ``node``."""
        return self._reach(node, self._succ)

    def _reach(self, node: N, adj: Dict[N, Set[N]]) -> Set[N]:
        seen: Set[N] = set()
        frontier = deque(adj.get(node, _EMPTY))
        while frontier:
            cur = frontier.popleft()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(adj.get(cur, _EMPTY))
        return seen

    def subgraph(self, keep: Set[N]) -> "Dag[N]":
        """Induced subgraph over ``keep``; single pass, O(V + E)."""
        out: Dag[N] = Dag()
        for node, succs in self._succ.items():
            if node in keep:
                out._succ[node] = {v for v in succs if v in keep}
                out._pred[node] = {p for p in self._pred[node] if p in keep}
        return out

    def reversed(self) -> "Dag[N]":
        """Edge-reversed copy; single pass, O(V + E)."""
        out: Dag[N] = Dag()
        out._succ = {n: set(preds) for n, preds in self._pred.items()}
        out._pred = {n: set(succs) for n, succs in self._succ.items()}
        return out

    def copy(self) -> "Dag[N]":
        """Independent structural copy; single pass, O(V + E)."""
        out: Dag[N] = Dag()
        out._succ = {n: set(succs) for n, succs in self._succ.items()}
        out._pred = {n: set(preds) for n, preds in self._pred.items()}
        return out

    # -- weighted analyses ------------------------------------------------------

    def longest_path_to_sink(
        self,
        weight: Callable[[N], float],
        order: Optional[List[N]] = None,
    ) -> Dict[N, float]:
        """For each node: weight of the heaviest path from it to any sink,
        *including its own weight*. This is the critical-path priority
        used by the cloudless scheduler (3.3).

        ``order`` lets callers reuse a precomputed topological order
        instead of paying for another sort.
        """
        if order is None:
            order = self.topological_order()
        dist: Dict[N, float] = {}
        for node in reversed(order):
            succ_best = max(
                (dist[s] for s in self._succ[node]), default=0.0
            )
            dist[node] = weight(node) + succ_best
        return dist

    def critical_path(
        self,
        weight: Callable[[N], float],
        dist: Optional[Dict[N, float]] = None,
    ) -> Tuple[float, List[N]]:
        """The heaviest root-to-sink path (length, nodes).

        ``dist`` lets callers reuse a precomputed
        :meth:`longest_path_to_sink` result.
        """
        if not self._succ:
            return 0.0, []
        if dist is None:
            dist = self.longest_path_to_sink(weight)
        path: List[N] = []
        node = max(self.roots(), key=lambda n: (dist[n], str(n)))
        while True:
            path.append(node)
            succs = self._succ[node]
            if not succs:
                break
            node = max(succs, key=lambda n: (dist[n], str(n)))
        return dist[path[0]], path

    def width_profile(self, order: Optional[List[N]] = None) -> List[int]:
        """Number of nodes per dependency level (parallelism profile)."""
        if order is None:
            order = self.topological_order()
        level: Dict[N, int] = {}
        for node in order:
            preds = self._pred[node]
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        if not level:
            return []
        depth = max(level.values()) + 1
        profile = [0] * depth
        for lv in level.values():
            profile[lv] += 1
        return profile

    def max_width(self, order: Optional[List[N]] = None) -> int:
        profile = self.width_profile(order)
        return max(profile) if profile else 0

    # -- export -----------------------------------------------------------

    def to_dot(
        self,
        name: str = "resources",
        label: Optional[Callable[[N], str]] = None,
        color: Optional[Callable[[N], str]] = None,
    ) -> str:
        """Graphviz DOT rendering (the `cloudless graph` command)."""
        label = label or str
        lines = [f"digraph \"{name}\" {{", "  rankdir = LR;"]
        for node in sorted(self._succ, key=str):
            attrs = [f'label="{label(node)}"']
            if color is not None:
                attrs.append(f'color="{color(node)}"')
            lines.append(f'  "{node}" [{", ".join(attrs)}];')
        for u, v in sorted(self.edges(), key=lambda e: (str(e[0]), str(e[1]))):
            lines.append(f'  "{u}" -> "{v}";')
        lines.append("}")
        return "\n".join(lines)
