"""Generic directed acyclic graph.

The workhorse behind resource dependency graphs, execution plans,
critical-path scheduling (3.3), and impact-scope analysis (3.3). Nodes
are hashable identifiers; payloads live in the caller.

Edge direction convention: an edge ``u -> v`` means *u must complete
before v* (v depends on u).
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

N = TypeVar("N", bound=Hashable)


class CycleError(ValueError):
    """Raised when a DAG operation finds a dependency cycle."""

    def __init__(self, cycle: List):
        pretty = " -> ".join(str(n) for n in cycle)
        super().__init__(f"dependency cycle: {pretty}")
        self.cycle = cycle


class Dag(Generic[N]):
    """Adjacency-set DAG with the analyses the planner needs."""

    def __init__(self) -> None:
        self._succ: Dict[N, Set[N]] = {}
        self._pred: Dict[N, Set[N]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: N) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, before: N, after: N) -> None:
        """Record that ``before`` must complete before ``after``."""
        if before == after:
            raise CycleError([before, after])
        self.add_node(before)
        self.add_node(after)
        self._succ[before].add(after)
        self._pred[after].add(before)

    def remove_node(self, node: N) -> None:
        for succ in self._succ.pop(node, set()):
            self._pred[succ].discard(node)
        for pred in self._pred.pop(node, set()):
            self._succ[pred].discard(node)

    # -- basic queries ------------------------------------------------------

    @property
    def nodes(self) -> List[N]:
        return list(self._succ.keys())

    def __contains__(self, node: N) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def edges(self) -> List[Tuple[N, N]]:
        return [(u, v) for u, succs in self._succ.items() for v in succs]

    def successors(self, node: N) -> Set[N]:
        return set(self._succ.get(node, set()))

    def predecessors(self, node: N) -> Set[N]:
        return set(self._pred.get(node, set()))

    def in_degree(self, node: N) -> int:
        return len(self._pred.get(node, set()))

    def roots(self) -> List[N]:
        return [n for n in self._succ if not self._pred[n]]

    def leaves(self) -> List[N]:
        return [n for n in self._succ if not self._succ[n]]

    # -- traversal ------------------------------------------------------------

    def topological_order(self, key: Optional[Callable[[N], object]] = None) -> List[N]:
        """Kahn's algorithm; ``key`` breaks ties deterministically."""
        indeg = {n: len(self._pred[n]) for n in self._succ}
        ready = [n for n, d in indeg.items() if d == 0]
        sort_key = key or (lambda n: str(n))
        ready.sort(key=sort_key)
        out: List[N] = []
        while ready:
            node = ready.pop(0)
            out.append(node)
            inserted = False
            for succ in sorted(self._succ[node], key=sort_key):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
                    inserted = True
            if inserted:
                ready.sort(key=sort_key)
        if len(out) != len(self._succ):
            raise CycleError(self.find_cycle() or [])
        return out

    def find_cycle(self) -> Optional[List[N]]:
        """Some cycle in the graph, or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[N, int] = {n: WHITE for n in self._succ}
        parent: Dict[N, Optional[N]] = {}

        for start in self._succ:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[N, Iterable[N]]] = [(start, iter(sorted(self._succ[start], key=str)))]
            color[start] = GRAY
            parent[start] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if color[succ] == WHITE:
                        color[succ] = GRAY
                        parent[succ] = node
                        stack.append((succ, iter(sorted(self._succ[succ], key=str))))
                        advanced = True
                        break
                    if color[succ] == GRAY:
                        cycle = [succ, node]
                        cur = parent[node]
                        while cur is not None and cur != succ:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.append(succ)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def validate_acyclic(self) -> None:
        cycle = self.find_cycle()
        if cycle:
            raise CycleError(cycle)

    def ancestors(self, node: N) -> Set[N]:
        """Every node that must complete before ``node``."""
        return self._reach(node, self._pred)

    def descendants(self, node: N) -> Set[N]:
        """Every node that depends (transitively) on ``node``."""
        return self._reach(node, self._succ)

    def _reach(self, node: N, adj: Dict[N, Set[N]]) -> Set[N]:
        seen: Set[N] = set()
        frontier = deque(adj.get(node, set()))
        while frontier:
            cur = frontier.popleft()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(adj.get(cur, set()))
        return seen

    def subgraph(self, keep: Set[N]) -> "Dag[N]":
        """Induced subgraph over ``keep``."""
        out: Dag[N] = Dag()
        for node in self._succ:
            if node in keep:
                out.add_node(node)
        for u, v in self.edges():
            if u in keep and v in keep:
                out.add_edge(u, v)
        return out

    def reversed(self) -> "Dag[N]":
        out: Dag[N] = Dag()
        for node in self._succ:
            out.add_node(node)
        for u, v in self.edges():
            out.add_edge(v, u)
        return out

    def copy(self) -> "Dag[N]":
        out: Dag[N] = Dag()
        for node in self._succ:
            out.add_node(node)
        for u, v in self.edges():
            out.add_edge(u, v)
        return out

    # -- weighted analyses ------------------------------------------------------

    def longest_path_to_sink(self, weight: Callable[[N], float]) -> Dict[N, float]:
        """For each node: weight of the heaviest path from it to any sink,
        *including its own weight*. This is the critical-path priority
        used by the cloudless scheduler (3.3).
        """
        order = self.topological_order()
        dist: Dict[N, float] = {}
        for node in reversed(order):
            succ_best = max(
                (dist[s] for s in self._succ[node]), default=0.0
            )
            dist[node] = weight(node) + succ_best
        return dist

    def critical_path(self, weight: Callable[[N], float]) -> Tuple[float, List[N]]:
        """The heaviest root-to-sink path (length, nodes)."""
        if not self._succ:
            return 0.0, []
        dist = self.longest_path_to_sink(weight)
        path: List[N] = []
        node = max(self.roots(), key=lambda n: (dist[n], str(n)))
        while True:
            path.append(node)
            succs = self._succ[node]
            if not succs:
                break
            node = max(succs, key=lambda n: (dist[n], str(n)))
        return dist[path[0]], path

    def width_profile(self) -> List[int]:
        """Number of nodes per dependency level (parallelism profile)."""
        level: Dict[N, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        if not level:
            return []
        depth = max(level.values()) + 1
        profile = [0] * depth
        for lv in level.values():
            profile[lv] += 1
        return profile

    def max_width(self) -> int:
        profile = self.width_profile()
        return max(profile) if profile else 0

    # -- export -----------------------------------------------------------

    def to_dot(
        self,
        name: str = "resources",
        label: Optional[Callable[[N], str]] = None,
        color: Optional[Callable[[N], str]] = None,
    ) -> str:
        """Graphviz DOT rendering (the `cloudless graph` command)."""
        label = label or str
        lines = [f"digraph \"{name}\" {{", "  rankdir = LR;"]
        for node in sorted(self._succ, key=str):
            attrs = [f'label="{label(node)}"']
            if color is not None:
                attrs.append(f'color="{color(node)}"')
            lines.append(f'  "{node}" [{", ".join(attrs)}];')
        for u, v in sorted(self.edges(), key=lambda e: (str(e[0]), str(e[1]))):
            lines.append(f'  "{u}" -> "{v}";')
        lines.append("}")
        return "\n".join(lines)
