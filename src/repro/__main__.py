"""``python -m repro`` -> the cloudless CLI."""

import sys

from .cli import main

sys.exit(main())
