"""World persistence for the CLI.

A *world file* captures everything that makes a simulated session:
the control planes' resource stores, activity logs, clock, quotas, and
id counters, plus the engine's golden state, outputs, and snapshot
history. This is what lets ``python -m repro apply`` behave like a real
CLI across invocations -- the simulated cloud survives between runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from .cloud.activitylog import ActivityEvent
from .cloud.base import ControlPlane, ResourceRecord
from .cloud.gateway import CloudGateway
from .core.engine import CloudlessEngine
from .state.document import StateDocument
from .state.snapshots import SnapshotHistory

#: current world format: snapshot history persisted as deltas +
#: periodic keyframes (O(changed) per version) instead of one full
#: state document per version. Format 1 worlds (full documents) are
#: still readable.
FORMAT_VERSION = 2
SUPPORTED_FORMATS = (1, 2)


# -- control planes ------------------------------------------------------------


def plane_to_dict(plane: ControlPlane) -> Dict[str, Any]:
    return {
        "seed": plane.seed,
        "records": [
            {
                "id": r.id,
                "type": r.type,
                "region": r.region,
                "attrs": r.attrs,
                "created_at": r.created_at,
                "updated_at": r.updated_at,
                "state": r.state,
            }
            for r in sorted(plane.records.values(), key=lambda r: r.id)
        ],
        "log": [
            {
                "sequence": e.sequence,
                "timestamp": e.timestamp,
                "operation": e.operation,
                "resource_type": e.resource_type,
                "resource_id": e.resource_id,
                "resource_name": e.resource_name,
                "region": e.region,
                "actor": e.actor,
                "changed_attrs": list(e.changed_attrs),
            }
            for e in plane.log.all_events()
        ],
        # durable sequence watermark: correct cursor math even when the
        # retained event window starts above sequence 0 (compaction)
        "log_next_seq": plane.log.next_cursor,
        "id_counter": plane._next_id,
        # identity-keyed generation counters: without them a reloaded
        # world would re-mint generation-0 ids for recreated names
        "id_gens": [
            {"rtype": t, "region": r, "name": n, "gen": g}
            for (t, r, n), g in sorted(plane._id_gens.items())
        ],
        "quotas": [
            {"rtype": rtype, "region": region, "limit": limit}
            for (rtype, region), limit in sorted(plane.quotas.items())
        ],
        "api_calls": dict(plane.api_calls),
        # idempotency-token index: lets a resumed apply deduplicate
        # creates against resources a crashed run already provisioned
        "tokens": {k: v for k, v in sorted(plane._tokens.items())},
    }


def plane_from_dict(plane: ControlPlane, data: Dict[str, Any]) -> None:
    """Restore a freshly-constructed plane's mutable state in place."""
    plane.seed = data.get("seed", plane.seed)
    plane.records.clear()
    for rec in data.get("records", []):
        plane.records[rec["id"]] = ResourceRecord(
            id=rec["id"],
            type=rec["type"],
            region=rec["region"],
            attrs=dict(rec["attrs"]),
            created_at=rec.get("created_at", 0.0),
            updated_at=rec.get("updated_at", 0.0),
            state=rec.get("state", "active"),
        )
    events = data.get("log", [])
    plane.log.restore(
        [
            ActivityEvent(
                sequence=e["sequence"],
                timestamp=e["timestamp"],
                provider=plane.provider,
                operation=e["operation"],
                resource_type=e["resource_type"],
                resource_id=e["resource_id"],
                resource_name=e["resource_name"],
                region=e["region"],
                actor=e["actor"],
                changed_attrs=tuple(e.get("changed_attrs", [])),
            )
            for e in events
        ],
        next_sequence=data.get("log_next_seq"),
    )
    plane._next_id = data.get("id_counter", 1)
    plane._id_gens = {
        (g["rtype"], g["region"], g["name"]): g["gen"]
        for g in data.get("id_gens", [])
    }
    plane.quotas = {
        (q["rtype"], q["region"]): q["limit"] for q in data.get("quotas", [])
    }
    plane.api_calls = dict(data.get("api_calls", {"read": 0, "write": 0}))
    plane._tokens = dict(data.get("tokens", {}))


# -- history -----------------------------------------------------------------------


def history_to_dict(history: SnapshotHistory) -> list:
    """Delta-journal serialisation: keyframes carry full documents,
    every other version carries only what changed against its parent."""
    return history.export_records()


def history_from_dict(data: list) -> SnapshotHistory:
    """Rebuild a history from :func:`history_to_dict` output.

    Accepts both the delta form (format 2) and the historical
    full-document-per-version form (format 1).
    """
    history = SnapshotHistory.import_records(data)
    for item, version in zip(data, history.versions()):
        assert version == item["version"], "history must be contiguous"
    return history


# -- whole worlds -------------------------------------------------------------------


def engine_to_dict(engine: CloudlessEngine) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "seed": getattr(engine, "seed", 0),
        "clock": engine.clock.now,
        "planes": {
            name: plane_to_dict(plane)
            for name, plane in sorted(engine.gateway.planes.items())
        },
        "state": json.loads(engine.state.to_json()),
        "history": history_to_dict(engine.history),
        "last_sources": engine.last_sources,
        "last_variables": engine.last_variables,
        "executor": engine.executor_name,
        "validation_level": engine.validation.level,
        # per-provider log-watch cursors (event sequences): a reloaded
        # world resumes tailing where it stopped instead of replaying
        # the whole activity log
        "watch_cursors": engine.watcher.cursors,
    }


def engine_from_dict(data: Dict[str, Any]) -> CloudlessEngine:
    if data.get("format") not in SUPPORTED_FORMATS:
        raise ValueError(
            f"unsupported world format {data.get('format')!r} "
            f"(expected one of {SUPPORTED_FORMATS})"
        )
    engine = CloudlessEngine(
        seed=data.get("seed", 0),
        executor=data.get("executor", "critical-path"),
        validation_level=data.get("validation_level", "rules"),
    )
    engine.clock.advance_to(data.get("clock", 0.0))
    for name, plane_data in data.get("planes", {}).items():
        plane = engine.gateway.planes.get(name)
        if plane is not None:
            plane_from_dict(plane, plane_data)
    engine.state = StateDocument.from_json(json.dumps(data.get("state", {})))
    engine.history = history_from_dict(data.get("history", []))
    engine.last_sources = dict(data.get("last_sources", {}))
    engine.last_variables = dict(data.get("last_variables", {}))
    engine.watcher.restore_cursors(data.get("watch_cursors", {}))
    return engine


def save_world(engine: CloudlessEngine, path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(engine_to_dict(engine), handle, indent=1, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def load_world(path: str) -> CloudlessEngine:
    with open(path, "r", encoding="utf-8") as handle:
        return engine_from_dict(json.load(handle))
