"""Ready-made policies for common enterprise requirements (3.6)."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..graph.plan import Action as PlanAction
from ..lang.values import is_unknown
from .language import Deny, Notify, PHASE_DRIFT, PHASE_PLAN, Policy, Warn


def budget_policy(max_monthly_usd: float, name: str = "budget") -> Policy:
    """Deny plans whose post-apply estate would exceed the budget."""
    return Policy(
        name=name,
        phase=PHASE_PLAN,
        observe=lambda ctx: ctx.estimated_monthly_cost(),
        condition=lambda cost: cost > max_monthly_usd,
        actions=[
            Deny(
                f"estimated monthly cost {{observation:.2f}} USD exceeds the "
                f"budget of {max_monthly_usd:.2f} USD"
            )
        ],
        description=f"monthly spend must stay under {max_monthly_usd} USD",
    )


def allowed_regions_policy(
    regions: Iterable[str], name: str = "allowed-regions"
) -> Policy:
    """Deny plans that place resources outside an approved region list."""
    allowed = set(regions)

    def offending(ctx: Any) -> List[str]:
        out = []
        for change in ctx.planned_instances():
            region = change.region
            if region and region not in allowed:
                out.append(f"{change.id} in {region}")
        return out

    return Policy(
        name=name,
        phase=PHASE_PLAN,
        observe=offending,
        condition=lambda bad: bool(bad),
        actions=[Deny("resources outside approved regions: {observation}")],
        description=f"resources restricted to {sorted(allowed)}",
    )


def required_tag_policy(tag: str, name: str = "required-tags") -> Policy:
    """Warn when taggable resources are created without a required tag."""

    def untagged(ctx: Any) -> List[str]:
        out = []
        for change in ctx.planned_instances():
            if change.action is not PlanAction.CREATE:
                continue
            if "tags" not in (change.desired or {}):
                continue
            tags = change.desired.get("tags")
            if is_unknown(tags):
                continue
            if not isinstance(tags, dict) or tag not in tags:
                out.append(change.id)
        return out

    return Policy(
        name=name,
        phase=PHASE_PLAN,
        observe=untagged,
        condition=lambda bad: bool(bad),
        actions=[Warn(f"missing required tag {tag!r} on: {{observation}}")],
        description=f"all taggable resources must carry the {tag!r} tag",
    )


def required_engine_policy(
    engine: str, db_types: Iterable[str] = ("aws_database_instance", "azure_database"),
    name: str = "db-engine",
) -> Policy:
    """Deny database instances not running the mandated engine."""
    types = set(db_types)

    def offending(ctx: Any) -> List[str]:
        out = []
        for change in ctx.planned_instances():
            if change.rtype not in types:
                continue
            value = (change.desired or {}).get("engine")
            if isinstance(value, str) and value != engine:
                out.append(f"{change.id} ({value})")
        return out

    return Policy(
        name=name,
        phase=PHASE_PLAN,
        observe=offending,
        condition=lambda bad: bool(bad),
        actions=[Deny(f"databases must use {engine!r}: {{observation}}")],
        description=f"database engine standardized on {engine}",
    )


def drift_notification_policy(name: str = "drift-notify") -> Policy:
    """Notify operators whenever external drift is observed."""
    return Policy(
        name=name,
        phase=PHASE_DRIFT,
        observe=lambda ctx: [str(f.resource_id) for f in ctx.findings],
        condition=lambda ids: bool(ids),
        actions=[Notify("external drift detected on: {observation}")],
        description="page on any out-of-band change",
    )
