"""Template extraction and outlier detection (3.6).

"Instead of writing exact policies, we can turn the problem into
outlier detection, which compares new IaC programs with templates
extracted from existing repositories to detect deviations from common
practices" -- adapting the template-inference idea of Kakarla et al.
(NSDI'20) to IaC blocks.

The extractor learns, per resource type, which attributes appear and
which values dominate; the scorer flags rare attribute sets and rare
values in a new configuration.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional, Tuple

from ..lang.config import Configuration
from ..validate.rules import ValidationContext

_SCALAR = (str, int, float, bool)


@dataclasses.dataclass
class OutlierFinding:
    """One deviation from learned practice."""

    address: str
    rtype: str
    kind: str  # "unusual-attr" | "missing-attr" | "unusual-value"
    attr: str
    detail: str
    rarity: float  # 0..1, lower = rarer

    def __str__(self) -> str:
        return (
            f"{self.address}: {self.kind} {self.attr!r} ({self.detail}; "
            f"seen in {self.rarity:.0%} of corpus)"
        )


@dataclasses.dataclass
class TypeTemplate:
    """Learned usage template for one resource type."""

    rtype: str
    observations: int
    attr_frequency: Dict[str, float]
    value_frequency: Dict[str, Dict[str, float]]  # attr -> value repr -> freq


class TemplateModel:
    """Learned templates + scoring."""

    def __init__(self, templates: Dict[str, TypeTemplate]):
        self.templates = templates

    def score_config(
        self,
        config: Configuration,
        rare_threshold: float = 0.2,
        common_threshold: float = 0.9,
    ) -> List[OutlierFinding]:
        ctx = ValidationContext.build(config)
        findings: List[OutlierFinding] = []
        for node in ctx.instances():
            if node.address.mode != "managed":
                continue
            template = self.templates.get(node.address.type)
            if template is None or template.observations < 2:
                continue
            present = set(node.decl.body.attributes)
            for attr in sorted(present):
                freq = template.attr_frequency.get(attr, 0.0)
                if freq < rare_threshold:
                    findings.append(
                        OutlierFinding(
                            address=node.id,
                            rtype=node.address.type,
                            kind="unusual-attr",
                            attr=attr,
                            detail="attribute rarely used in corpus",
                            rarity=freq,
                        )
                    )
            for attr, freq in sorted(template.attr_frequency.items()):
                if freq >= common_threshold and attr not in present:
                    findings.append(
                        OutlierFinding(
                            address=node.id,
                            rtype=node.address.type,
                            kind="missing-attr",
                            attr=attr,
                            detail="attribute set in nearly every corpus use",
                            rarity=1.0 - freq,
                        )
                    )
            for attr in sorted(present):
                value = ctx.known_attr(node, attr)
                if not isinstance(value, _SCALAR):
                    continue
                value_freqs = template.value_frequency.get(attr)
                if not value_freqs:
                    continue
                freq = value_freqs.get(repr(value), 0.0)
                dominant = max(value_freqs.values())
                if dominant >= common_threshold and freq < rare_threshold:
                    findings.append(
                        OutlierFinding(
                            address=node.id,
                            rtype=node.address.type,
                            kind="unusual-value",
                            attr=attr,
                            detail=f"value {value!r} deviates from the norm",
                            rarity=freq,
                        )
                    )
        return findings


class TemplateExtractor:
    """Learns :class:`TemplateModel` from a corpus of configurations."""

    def fit(self, configs: List[Configuration]) -> TemplateModel:
        attr_counts: Dict[str, Counter] = defaultdict(Counter)
        value_counts: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
        type_obs: Counter = Counter()
        for config in configs:
            ctx = ValidationContext.build(config)
            for node in ctx.instances():
                if node.address.mode != "managed":
                    continue
                rtype = node.address.type
                type_obs[rtype] += 1
                for attr in node.decl.body.attributes:
                    attr_counts[rtype][attr] += 1
                    value = ctx.known_attr(node, attr)
                    if isinstance(value, _SCALAR):
                        value_counts[(rtype, attr)][repr(value)] += 1
        templates: Dict[str, TypeTemplate] = {}
        for rtype, total in type_obs.items():
            attr_freq = {
                attr: count / total for attr, count in attr_counts[rtype].items()
            }
            value_freq: Dict[str, Dict[str, float]] = {}
            for (rt, attr), counter in value_counts.items():
                if rt != rtype:
                    continue
                seen = sum(counter.values())
                value_freq[attr] = {
                    value: count / seen for value, count in counter.items()
                }
            templates[rtype] = TypeTemplate(
                rtype=rtype,
                observations=total,
                attr_frequency=attr_freq,
                value_frequency=value_freq,
            )
        return TemplateModel(templates)
