"""Cost estimation for budget policies (3.6).

A flat-rate price book over the simulated catalogs; enough to let
budget policies observe "estimated monthly cost" of a plan or a running
estate, which is the observation the paper's budget example needs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

# USD per hour by resource type; size multipliers below
HOURLY_BASE: Dict[str, float] = {
    "aws_virtual_machine": 0.05,
    "aws_database_instance": 0.25,
    "aws_load_balancer": 0.03,
    "aws_vpn_gateway": 0.05,
    "aws_vpn_tunnel": 0.05,
    "aws_disk": 0.01,
    "aws_s3_bucket": 0.005,
    "aws_autoscaling_group": 0.0,
    "azure_virtual_machine": 0.055,
    "azure_database": 0.27,
    "azure_load_balancer": 0.032,
    "azure_vpn_gateway": 0.19,
    "azure_vpn_tunnel": 0.05,
    "azure_disk": 0.011,
    "azure_storage_account": 0.006,
    "azure_public_ip": 0.004,
}

SIZE_MULTIPLIER: Dict[str, float] = {
    "small": 1.0,
    "medium": 2.0,
    "large": 4.0,
    "xlarge": 8.0,
    "Standard_B1s": 1.0,
    "Standard_D2s": 2.0,
    "Standard_D4s": 4.0,
    "Standard_D8s": 8.0,
}

HOURS_PER_MONTH = 730.0


class CostEstimator:
    """Estimates monthly cost of plans and states."""

    def __init__(self, hourly: Optional[Dict[str, float]] = None):
        self.hourly = dict(HOURLY_BASE)
        if hourly:
            self.hourly.update(hourly)

    def resource_monthly(self, rtype: str, attrs: Dict[str, Any]) -> float:
        base = self.hourly.get(rtype, 0.0)
        size = attrs.get("size") or attrs.get("instance_size") or ""
        multiplier = SIZE_MULTIPLIER.get(str(size), 1.0)
        storage = attrs.get("storage_gb") or attrs.get("size_gb") or 0
        storage_cost = float(storage) * 0.08 if isinstance(storage, (int, float)) else 0
        return base * multiplier * HOURS_PER_MONTH + storage_cost

    def estimate_state(self, state: Any) -> float:
        return sum(
            self.resource_monthly(entry.address.type, entry.attrs)
            for entry in state.resources()
        )

    def estimate_plan(self, plan: Any) -> float:
        """Monthly cost of the estate as it would look after the plan."""
        from ..graph.plan import Action
        from ..lang.values import is_unknown

        total = 0.0
        seen = set()
        for change in plan.changes.values():
            if change.address.mode != "managed":
                continue
            seen.add(str(change.address))
            if change.action is Action.DELETE:
                continue
            attrs = change.desired or (change.prior.attrs if change.prior else {})
            attrs = {k: v for k, v in attrs.items() if not is_unknown(v)}
            total += self.resource_monthly(change.rtype, attrs)
        for entry in plan.state.resources():
            if str(entry.address) not in seen:
                total += self.resource_monthly(entry.address.type, entry.attrs)
        return total
