"""The infrastructure controller (3.6).

"Analogous to an SDN controller": one component that holds every
registered policy and evaluates the right subset at each lifecycle
phase -- plan admission before anything deploys, metric evaluation
while the estate runs, drift handling when the observability layer
reports trouble. Program-evolving actions (``set_variable``) are
returned to the engine, which re-plans with the new inputs.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from .language import (
    ActionRequest,
    DriftContext,
    MetricsContext,
    PHASE_DRIFT,
    PHASE_METRICS,
    PHASE_PLAN,
    PlanContext,
    Policy,
)


@dataclasses.dataclass
class AdmissionDecision:
    """Outcome of plan admission."""

    allowed: bool
    denials: List[ActionRequest]
    warnings: List[ActionRequest]
    notifications: List[ActionRequest]

    def __str__(self) -> str:
        verdict = "allowed" if self.allowed else "DENIED"
        parts = [f"plan {verdict}"]
        for req in self.denials + self.warnings:
            parts.append(f"  {req}")
        return "\n".join(parts)


class InfrastructureController:
    """Registers policies and evaluates them per phase."""

    def __init__(self) -> None:
        self._policies: Dict[str, List[Policy]] = {
            PHASE_PLAN: [],
            PHASE_METRICS: [],
            PHASE_DRIFT: [],
        }

    def register(self, policy: Policy) -> None:
        self._policies[policy.phase].append(policy)

    def policies(self, phase: str) -> List[Policy]:
        return list(self._policies.get(phase, []))

    # -- plan admission ---------------------------------------------------------

    def admit(
        self,
        plan: Any,
        state: Any,
        cost_estimator: Optional[Any] = None,
        variables: Optional[Dict[str, Any]] = None,
    ) -> AdmissionDecision:
        ctx = PlanContext(plan, state, cost_estimator, variables)
        denials: List[ActionRequest] = []
        warnings: List[ActionRequest] = []
        notifications: List[ActionRequest] = []
        for policy in self._policies[PHASE_PLAN]:
            for request in policy.evaluate(ctx):
                if request.kind == "deny":
                    denials.append(request)
                elif request.kind == "warn":
                    warnings.append(request)
                elif request.kind == "notify":
                    notifications.append(request)
        return AdmissionDecision(
            allowed=not denials,
            denials=denials,
            warnings=warnings,
            notifications=notifications,
        )

    # -- runtime metrics ------------------------------------------------------------

    def evaluate_metrics(
        self,
        metrics: Any,
        state: Any,
        variables: Dict[str, Any],
        now: float,
    ) -> List[ActionRequest]:
        ctx = MetricsContext(metrics, state, variables, now)
        out: List[ActionRequest] = []
        for policy in self._policies[PHASE_METRICS]:
            out.extend(policy.evaluate(ctx))
        return out

    # -- drift handling ---------------------------------------------------------------

    def evaluate_drift(
        self, findings: List[Any], state: Any, now: float
    ) -> List[ActionRequest]:
        ctx = DriftContext(findings, state, now)
        out: List[ActionRequest] = []
        for policy in self._policies[PHASE_DRIFT]:
            out.extend(policy.evaluate(ctx))
        return out

    # -- applying program-evolving actions ---------------------------------------------

    @staticmethod
    def apply_variable_actions(
        requests: List[ActionRequest], variables: Dict[str, Any]
    ) -> Dict[str, Any]:
        """New variable values after every ``set_variable`` request."""
        out = dict(variables)
        for request in requests:
            if request.kind == "set_variable":
                out[request.variable] = request.value
        return out
