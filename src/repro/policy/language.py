"""The policy language: observations and actions (3.6).

The paper argues policy should "clearly separate two aspects: the
observations, and the actions", and span the whole lifecycle. Here a
:class:`Policy` binds together:

* a **phase** -- when it runs (plan admission, runtime metrics, drift);
* an **observation** -- what it reads from the phase context;
* a **condition** over the observation;
* **actions** -- deny/warn/notify, or program-evolving actions
  (set a variable, scale a declaration) that feed back into the IaC
  program itself.

Unlike Rego, policies are plain declarative Python objects a DevOps
engineer can read; the combinators below cover the paper's examples.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

PHASE_PLAN = "plan"
PHASE_METRICS = "metrics"
PHASE_DRIFT = "drift"
PHASES = (PHASE_PLAN, PHASE_METRICS, PHASE_DRIFT)


class UnsupportedPolicyError(ValueError):
    """Raised when a policy cannot be expressed by this engine."""


@dataclasses.dataclass
class ActionRequest:
    """One action a policy wants performed."""

    kind: str  # deny | warn | notify | set_variable | set_attr
    policy: str
    message: str = ""
    subject: str = ""
    variable: str = ""
    value: Any = None
    attr: str = ""

    def __str__(self) -> str:
        if self.kind == "set_variable":
            return f"[{self.policy}] set var.{self.variable} = {self.value!r}"
        return f"[{self.policy}] {self.kind}: {self.message}"


# -- action constructors -----------------------------------------------------


class Action:
    """Base action; ``requests`` renders it into ActionRequests."""

    def requests(self, policy: "Policy", ctx: Any) -> List[ActionRequest]:
        raise NotImplementedError


@dataclasses.dataclass
class Deny(Action):
    message: str

    def requests(self, policy: "Policy", ctx: Any) -> List[ActionRequest]:
        return [
            ActionRequest(kind="deny", policy=policy.name, message=_fmt(self.message, ctx))
        ]


@dataclasses.dataclass
class Warn(Action):
    message: str

    def requests(self, policy: "Policy", ctx: Any) -> List[ActionRequest]:
        return [
            ActionRequest(kind="warn", policy=policy.name, message=_fmt(self.message, ctx))
        ]


@dataclasses.dataclass
class Notify(Action):
    message: str
    channel: str = "ops"

    def requests(self, policy: "Policy", ctx: Any) -> List[ActionRequest]:
        return [
            ActionRequest(
                kind="notify",
                policy=policy.name,
                message=f"[{self.channel}] {_fmt(self.message, ctx)}",
            )
        ]


@dataclasses.dataclass
class SetVariable(Action):
    """Evolve the IaC program by changing an input variable."""

    variable: str
    value: Callable[[Any], Any]

    def requests(self, policy: "Policy", ctx: Any) -> List[ActionRequest]:
        return [
            ActionRequest(
                kind="set_variable",
                policy=policy.name,
                variable=self.variable,
                value=self.value(ctx) if callable(self.value) else self.value,
            )
        ]


def _fmt(message: str, ctx: Any) -> str:
    observation = getattr(ctx, "observation", None)
    if observation is not None and "{observation" in message:
        try:
            return message.format(observation=observation)
        except Exception:
            return message
    return message


# -- the policy object -----------------------------------------------------------


@dataclasses.dataclass
class Policy:
    """One lifecycle policy.

    ``observe`` maps the phase context to an observation value;
    ``condition`` decides whether the actions fire. The context object
    gains an ``observation`` attribute before actions render, so
    messages can interpolate it.
    """

    name: str
    phase: str
    observe: Callable[[Any], Any]
    condition: Callable[[Any], bool]
    actions: List[Action]
    description: str = ""

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise UnsupportedPolicyError(
                f"policy {self.name!r}: unknown phase {self.phase!r}"
            )

    def evaluate(self, ctx: Any) -> List[ActionRequest]:
        observation = self.observe(ctx)
        try:
            ctx.observation = observation
        except AttributeError:
            pass
        if not self.condition(observation):
            return []
        out: List[ActionRequest] = []
        for action in self.actions:
            out.extend(action.requests(self, ctx))
        return out


# -- phase contexts ---------------------------------------------------------------


class PlanContext:
    """What plan-admission policies can observe."""

    def __init__(
        self,
        plan: Any,
        state: Any,
        cost_estimator: Optional[Any] = None,
        variables: Optional[Dict[str, Any]] = None,
    ):
        self.plan = plan
        self.state = state
        self.cost_estimator = cost_estimator
        self.variables = dict(variables or {})
        self.observation: Any = None

    def planned_instances(self) -> List[Any]:
        from ..graph.plan import Action as PlanAction

        return [
            c
            for c in self.plan.changes.values()
            if c.action in (PlanAction.CREATE, PlanAction.UPDATE, PlanAction.REPLACE)
        ]

    def estimated_monthly_cost(self) -> float:
        if self.cost_estimator is None:
            return 0.0
        return self.cost_estimator.estimate_plan(self.plan)


class MetricsContext:
    """What runtime (autoscaling) policies can observe."""

    def __init__(
        self,
        metrics: Any,
        state: Any,
        variables: Dict[str, Any],
        now: float,
    ):
        self.metrics = metrics
        self.state = state
        self.variables = dict(variables)
        self.now = now
        self.observation: Any = None


class DriftContext:
    """What failure-handling policies can observe."""

    def __init__(self, findings: List[Any], state: Any, now: float):
        self.findings = list(findings)
        self.state = state
        self.now = now
        self.observation: Any = None
