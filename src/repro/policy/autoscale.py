"""Custom-metric autoscaling (3.6).

The paper's concrete wish: "scale out the number of VPN gateways and
attached tunnels if traffic throughput is close to their capacity", or
"scale out VMs if their attached network interfaces are highly loaded".
Native cloud autoscalers cannot observe those signals;
:class:`CustomMetricScalePolicy` can observe any recorded metric on any
resource type, and acts by evolving the IaC program (a count variable).

:class:`NativeAutoscalePolicy` models today's clouds: it *refuses* at
construction time to watch anything but CPU on an autoscaling group --
the contrast E9 measures.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from .language import (
    ActionRequest,
    MetricsContext,
    PHASE_METRICS,
    Policy,
    SetVariable,
    UnsupportedPolicyError,
)


class MetricStore:
    """Time-series store for resource metrics."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, str], List[Tuple[float, float]]] = (
            defaultdict(list)
        )

    def record(self, resource_key: str, metric: str, t: float, value: float) -> None:
        self._series[(resource_key, metric)].append((t, value))

    def latest(self, resource_key: str, metric: str) -> Optional[float]:
        series = self._series.get((resource_key, metric))
        return series[-1][1] if series else None

    def window_mean(
        self, resource_key: str, metric: str, window_s: float, now: float
    ) -> Optional[float]:
        series = self._series.get((resource_key, metric))
        if not series:
            return None
        values = [v for t, v in series if t >= now - window_s]
        if not values:
            return series[-1][1]
        return sum(values) / len(values)

    def keys_with_metric(self, metric: str) -> List[str]:
        return sorted({k for (k, m) in self._series if m == metric})


@dataclasses.dataclass
class ScaleDecision:
    at: float
    policy: str
    variable: str
    old: int
    new: int
    utilization: float


class CustomMetricScalePolicy(Policy):
    """Scale a count variable on aggregate utilization of any metric.

    Utilization = sum(metric across instances of ``target_type``) /
    (instance count * ``capacity_per_instance``). Above ``high`` the
    count variable increments; below ``low`` it decrements (bounded).
    """

    def __init__(
        self,
        name: str,
        target_type: str,
        metric: str,
        capacity_per_instance: float,
        count_variable: str,
        high: float = 0.8,
        low: float = 0.25,
        min_count: int = 1,
        max_count: int = 16,
        cooldown_s: float = 120.0,
        window_s: float = 60.0,
    ):
        self.target_type = target_type
        self.metric = metric
        self.capacity = float(capacity_per_instance)
        self.count_variable = count_variable
        self.high = high
        self.low = low
        self.min_count = min_count
        self.max_count = max_count
        self.cooldown_s = cooldown_s
        self.window_s = window_s
        self._last_scaled_at = -1e18
        self.decisions: List[ScaleDecision] = []
        super().__init__(
            name=name,
            phase=PHASE_METRICS,
            observe=self._observe,
            condition=self._should_scale,
            actions=[SetVariable(count_variable, self._new_count)],
            description=(
                f"scale var.{count_variable} on {metric} utilization of "
                f"{target_type}"
            ),
        )

    # -- observation: aggregate utilization -----------------------------------

    def _instances(self, ctx: MetricsContext) -> List[str]:
        return [
            str(entry.address)
            for entry in ctx.state.resources()
            if entry.address.type == self.target_type
        ]

    def _observe(self, ctx: MetricsContext) -> float:
        instances = self._instances(ctx)
        if not instances:
            return 0.0
        total = 0.0
        for key in instances:
            value = ctx.metrics.window_mean(
                key, self.metric, self.window_s, ctx.now
            )
            if value is not None:
                total += value
        return total / (len(instances) * self.capacity)

    # -- condition & action ---------------------------------------------------------

    def _current_count(self, ctx: MetricsContext) -> int:
        value = ctx.variables.get(self.count_variable)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return int(value)
        return len(self._instances(ctx)) or self.min_count

    def _should_scale(self, utilization: float) -> bool:
        return utilization > self.high or (utilization < self.low)

    def _new_count(self, ctx: MetricsContext) -> int:
        utilization = ctx.observation
        current = self._current_count(ctx)
        if ctx.now - self._last_scaled_at < self.cooldown_s:
            return current
        if utilization > self.high:
            new = min(self.max_count, current + max(1, int(utilization - self.high + 1)))
        elif utilization < self.low and current > self.min_count:
            new = max(self.min_count, current - 1)
        else:
            new = current
        if new != current:
            self._last_scaled_at = ctx.now
            self.decisions.append(
                ScaleDecision(
                    at=ctx.now,
                    policy=self.name,
                    variable=self.count_variable,
                    old=current,
                    new=new,
                    utilization=utilization,
                )
            )
        return new


#: signals today's native autoscalers actually expose
NATIVE_SUPPORTED_METRICS = {"cpu", "memory"}
NATIVE_SUPPORTED_TYPES = {"aws_autoscaling_group"}


class NativeAutoscalePolicy(CustomMetricScalePolicy):
    """Today's cloud autoscaling: CPU/memory on scaling groups, only.

    Attempting the paper's VPN-throughput policy with this class raises
    :class:`UnsupportedPolicyError` -- faithfully reproducing "users
    cannot easily define policies that are not explicitly supported by
    cloud providers".
    """

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if self.metric not in NATIVE_SUPPORTED_METRICS:
            raise UnsupportedPolicyError(
                f"native autoscaling cannot observe metric {self.metric!r}; "
                f"supported: {sorted(NATIVE_SUPPORTED_METRICS)}"
            )
        if self.target_type not in NATIVE_SUPPORTED_TYPES:
            raise UnsupportedPolicyError(
                f"native autoscaling cannot target {self.target_type!r}; "
                f"supported: {sorted(NATIVE_SUPPORTED_TYPES)}"
            )
