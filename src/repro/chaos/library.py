"""The named scenario library: correlated failures, taxonomized.

Each scenario is a :class:`~repro.chaos.dsl.ScenarioSpec` value --
campaign files reference them by name, ``python -m repro chaos --list``
prints the catalog with its defect-taxonomy coverage, and the CI
campaign keeps every one of them green. The library deliberately spans
the taxonomy: single-mode failures (a transient storm, one outage) sit
next to the correlated shapes real incidents take (multi-zone
blackouts, churn during an outage, a crash during a downscale).
"""

from __future__ import annotations

from typing import Dict, List

from ..cloud.faults import FaultSpec, OutageSpec
from .dsl import (
    AsymmetricPartition,
    ClockSkew,
    CorrelatedOutage,
    FaultInjection,
    OutageInjection,
    QuotaStorm,
    RateLimitStorm,
    ScenarioSpec,
    TransientRate,
    VersionSkew,
)

_LIFECYCLE_PHASES = [
    {"op": "apply"},
    {"op": "churn", "updates": 1, "deletes": 1},
    {"op": "reconcile"},
    {"op": "snapshot"},
    {"op": "apply", "workload_args": {"web_vms": 5, "app_vms": 3}},
    {"op": "rollback"},
]


def _scenarios() -> List[ScenarioSpec]:
    return [
        # -- reliability ----------------------------------------------------
        ScenarioSpec(
            name="transient-storm",
            description=(
                "full lifecycle (apply, churn, reconcile, update, "
                "rollback) under a 5% blanket transient fault rate"
            ),
            workload="web_tier",
            workload_args={"web_vms": 4, "app_vms": 3},
            injections=[TransientRate(rate=0.05)],
            phases=list(_LIFECYCLE_PHASES),
            patient_retry=True,
        ),
        ScenarioSpec(
            name="transient-monsoon",
            description="the same lifecycle at a 15% fault rate",
            workload="web_tier",
            workload_args={"web_vms": 4, "app_vms": 3},
            injections=[TransientRate(rate=0.15)],
            phases=list(_LIFECYCLE_PHASES),
            patient_retry=True,
        ),
        ScenarioSpec(
            name="throttle-storm",
            description=(
                "sustained API throttling on every mutating call "
                "(40% Throttling responses, unlimited strikes)"
            ),
            workload="web_tier",
            injections=[
                FaultInjection(
                    fault=FaultSpec(
                        error_code="Throttling",
                        message="Rate exceeded (injected storm)",
                        probability=0.4,
                        transient=True,
                        max_strikes=-1,
                    )
                )
            ],
            patient_retry=True,
        ),
        # -- availability ---------------------------------------------------
        ScenarioSpec(
            name="region-outage-brownout",
            description=(
                "a hard regional outage overlapping a provider-wide "
                "brownout; reachable resources converge, dark ones park"
            ),
            workload="two_region_estate",
            workload_args={"resources": 42},
            injections=[
                OutageInjection(
                    provider="azure",
                    outage=OutageSpec(
                        start_s=0.0, end_s=30000.0, region="westus2"
                    ),
                ),
                OutageInjection(
                    provider="azure",
                    outage=OutageSpec(
                        start_s=500.0,
                        end_s=20000.0,
                        mode="brownout",
                        latency_multiplier=2.0,
                    ),
                ),
            ],
        ),
        ScenarioSpec(
            name="provider-blackout",
            description=(
                "everything goes dark at t=0; one region stays dark "
                "longer -- the whole estate parks, then drains"
            ),
            workload="two_region_estate",
            workload_args={"resources": 42},
            injections=[
                OutageInjection(
                    provider="azure",
                    outage=OutageSpec(start_s=0.0, end_s=8000.0),
                ),
                OutageInjection(
                    provider="azure",
                    outage=OutageSpec(
                        start_s=0.0, end_s=30000.0, region="westus2"
                    ),
                ),
            ],
        ),
        ScenarioSpec(
            name="correlated-zone-outage",
            description=(
                "a correlated multi-zone failure: both regions of the "
                "estate go dark in a staggered cascade"
            ),
            workload="two_region_estate",
            workload_args={"resources": 42},
            injections=[
                CorrelatedOutage(
                    zones=[["azure", "eastus"], ["azure", "westus2"]],
                    start_s=0.0,
                    duration_s=12000.0,
                    stagger_s=3000.0,
                )
            ],
        ),
        ScenarioSpec(
            name="asymmetric-write-partition",
            description=(
                "the control plane goes read-only: mutations fail fast "
                "while list pages and log tails keep answering"
            ),
            workload="web_tier",
            workload_args={"web_vms": 4, "app_vms": 2},
            injections=[
                AsymmetricPartition(
                    provider="aws", start_s=0.0, end_s=12000.0,
                    op_class="write",
                )
            ],
        ),
        # -- capacity / performance ----------------------------------------
        ScenarioSpec(
            name="quota-storm",
            description=(
                "a co-tenant squats the VM quota; creates fail "
                "terminally until capacity is released"
            ),
            workload="web_tier",
            injections=[
                QuotaStorm(
                    provider="aws",
                    rtype="aws_virtual_machine",
                    squatters=3,
                )
            ],
        ),
        ScenarioSpec(
            name="noisy-neighbor",
            description=(
                "a noisy neighbor drains the write token bucket and "
                "reserves its refill stream for 30 minutes"
            ),
            workload="web_tier",
            injections=[
                RateLimitStorm(busy_s=1800.0, op_class="write")
            ],
        ),
        # -- interface / timing --------------------------------------------
        ScenarioSpec(
            name="version-skew",
            description=(
                "the provider rejects the client's API version for VM "
                "creates until it rolls forward mid-apply"
            ),
            workload="web_tier",
            injections=[
                VersionSkew(
                    providers=["aws"],
                    match_type="aws_virtual_machine",
                    match_operation="create",
                    start_s=0.0,
                    end_s=4000.0,
                )
            ],
            patient_retry=True,
        ),
        ScenarioSpec(
            name="clock-skew-watch",
            description=(
                "one plane's clock runs 10 minutes ahead of the "
                "coordinator while drift is churned and watched"
            ),
            workload="web_tier",
            injections=[ClockSkew(provider="aws", offset_s=600.0)],
            phases=[
                {"op": "apply"},
                {"op": "churn", "updates": 1, "deletes": 1},
                {"op": "watch", "cycles": 3, "interval_s": 120.0},
                {"op": "reconcile"},
            ],
        ),
        # -- crash consistency ---------------------------------------------
        ScenarioSpec(
            name="crash-midway",
            description=(
                "the client dies halfway through the apply; resume "
                "must adopt orphans and retire the journal"
            ),
            workload="web_tier",
            phases=[{"op": "crash_apply", "kill_frac": 0.5}],
        ),
        ScenarioSpec(
            name="crash-downscale",
            description=(
                "the client dies halfway through a destructive second "
                "apply; deletes must not strand"
            ),
            workload="web_tier",
            workload_args={"web_vms": 3, "app_vms": 2},
            phases=[
                {"op": "apply"},
                {
                    "op": "crash_apply",
                    "kill_frac": 0.5,
                    "workload_args": {"web_vms": 2, "app_vms": 1},
                },
            ],
        ),
        ScenarioSpec(
            name="crash-under-faults",
            description=(
                "a mid-apply crash while a transient storm is active "
                "-- recovery and retry interleave"
            ),
            workload="web_tier",
            injections=[TransientRate(rate=0.05)],
            phases=[{"op": "crash_apply", "kill_frac": 0.3}],
            patient_retry=True,
        ),
        # -- drift storms (watcher under adversarial mutation) --------------
        ScenarioSpec(
            name="drift-storm-watch",
            description=(
                "burst create/delete/update churn against the watcher: "
                "coalescing, taxonomy classing, and repair under load"
            ),
            workload="web_tier",
            workload_args={"web_vms": 4, "app_vms": 3},
            phases=[
                {"op": "apply"},
                {
                    "op": "churn",
                    "updates": 2,
                    "deletes": 2,
                    "creates": 2,
                    "security": 1,
                },
                {"op": "watch", "cycles": 4, "interval_s": 60.0},
                {"op": "churn", "updates": 1, "deletes": 1},
                {"op": "watch", "cycles": 4, "interval_s": 60.0},
                {"op": "reconcile"},
            ],
        ),
        ScenarioSpec(
            name="drift-storm-under-outage",
            description=(
                "the same mutation storm while the provider is dark: "
                "repairs defer to the recovery horizon, then drain"
            ),
            workload="web_tier",
            workload_args={"web_vms": 4, "app_vms": 3},
            injections=[
                OutageInjection(
                    provider="aws",
                    outage=OutageSpec(start_s=2000.0, end_s=20000.0),
                )
            ],
            phases=[
                {"op": "apply"},
                {"op": "advance", "to_s": 2500.0},
                {
                    "op": "churn",
                    "updates": 2,
                    "deletes": 1,
                    "creates": 1,
                },
                {"op": "watch", "cycles": 3, "interval_s": 120.0},
            ],
            # the outage window opens mid-apply; which resources land
            # before it (and thus which the arms churn) differs, so the
            # arms converge canonically but not id-identically
            strict_hash=False,
        ),
        ScenarioSpec(
            name="tenant-storm",
            description=(
                "multi-tenant service storm: kill the instance mid-apply "
                "for half the tenants, preempt with a successor, resume "
                "the orphans, and require every tenant's estate to "
                "converge to its single-tenant baseline"
            ),
            workload="web_tier",
            workload_args={"web_vms": 2, "app_vms": 1, "with_db": False},
            phases=[
                # the twin engines still run a plain apply so the
                # runner's own convergence/drain machinery has teeth
                {"op": "apply"},
                {
                    "op": "tenant_storm",
                    "tenants": 4,
                    "kill_frac": 0.5,
                    "drift_reads": 1,
                },
            ],
        ),
    ]


def library() -> Dict[str, ScenarioSpec]:
    """Name -> scenario, freshly constructed (specs are mutable)."""
    return {s.name: s for s in _scenarios()}


def scenario(name: str) -> ScenarioSpec:
    specs = library()
    if name not in specs:
        raise KeyError(
            f"unknown scenario {name!r} (known: {', '.join(sorted(specs))})"
        )
    return specs[name]
