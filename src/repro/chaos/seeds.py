"""Unified seed derivation for chaos campaigns.

Every trial's RNG seed is a pure function of (campaign id, scenario
name, trial index)::

    seed = derive_seed("ci-smoke", "region-outage-brownout", 0)

so a campaign file names its entire randomness: re-running any trial
anywhere reproduces it bit-for-bit, and no test needs to carry its own
ad-hoc seed list. The historical ``CHAOS_SEEDS``-style environment
variables survive as *smoke-tier sizers* -- they choose how many trials
run, while the seeds themselves always derive from the campaign.
"""

from __future__ import annotations

import hashlib
import os
from typing import List


def derive_seed(campaign_id: str, scenario: str, trial: int) -> int:
    """A stable 63-bit seed for one (campaign, scenario, trial)."""
    digest = hashlib.sha256(
        f"{campaign_id}|{scenario}|{trial}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_seeds(campaign_id: str, scenario: str, trials: int) -> List[int]:
    return [derive_seed(campaign_id, scenario, t) for t in range(trials)]


def trial_count(env_var: str, default: int) -> int:
    """Smoke-tier sizing: how many trials should a sweep run?

    Reads the historical comma-separated seed-list variables
    (``CHAOS_SEEDS``, ``CRASH_SEEDS``, ``OUTAGE_SEEDS``): the *length*
    of the list sizes the sweep (``CHAOS_SEEDS=0`` -> 1 trial, exactly
    the CI smoke tiers' intent), while the values themselves are
    superseded by :func:`derive_seed`.
    """
    raw = os.environ.get(env_var, "")
    entries = [s for s in raw.split(",") if s.strip()]
    if not entries:
        return default
    return len(entries)
