"""Convergence invariants every chaos trial is checked against.

A chaos arm that survived its injections must end in the *same estate*
an uninterrupted run produces. "Same" is layered:

1. **canonical equivalence** -- state JSON with run-dependent noise
   removed (ids rewritten to owning addresses, cloud-assigned IPs
   masked, timestamps/serial/lineage stripped) matches exactly;
2. **estate shape** -- the clouds hold the same live records per id
   prefix (no leaked duplicates, no missing resources);
3. **no stranded ids** -- state ids <-> live record ids is a bijection
   (zero orphans, zero dangling state entries);
4. **content-hash agreement** (strict tier) -- identity-keyed id
   minting makes same-seed schedules mint identical ids, so
   :meth:`~repro.state.document.StateDocument.content_hash` of the two
   arms agrees byte-for-byte. Scenarios whose injections legitimately
   perturb generation counters opt out via ``strict_hash=False``.

The assert-style helpers are what the chaos test sweeps call; the
``*_violations`` variants return findings as strings so the campaign
runner can report every broken invariant instead of stopping at the
first.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List

_IP = re.compile(r"\b10\.\d+\.\d+\.\d+\b")


def canonical_state(engine) -> dict:
    """State JSON with run-dependent noise removed.

    Rewrites every occurrence of a live resource id (including inside
    computed attrs such as endpoints and DNS names) to the owning
    address, masks cloud-assigned random IPs (real clouds hand out
    whatever address DHCP has free), and drops serials, lineage, and
    timestamps.
    """
    id_map = {
        entry.resource_id: f"<{entry.address}>"
        for entry in engine.state.resources()
        if entry.resource_id
    }
    # longest-first so e.g. "db-00000010" never partially matches
    ordered = sorted(id_map, key=len, reverse=True)

    def rewrite(value):
        if isinstance(value, str):
            for rid in ordered:
                if rid in value:
                    value = value.replace(rid, id_map[rid])
            return _IP.sub("<ip>", value)
        if isinstance(value, list):
            return [rewrite(v) for v in value]
        if isinstance(value, dict):
            return {k: rewrite(v) for k, v in value.items()}
        return value

    doc = json.loads(engine.state.to_json())
    doc.pop("serial", None)
    doc.pop("lineage", None)
    live_addresses = {entry["address"] for entry in doc.get("resources", [])}
    for entry in doc.get("resources", []):
        entry.pop("created_at", None)
        entry.pop("updated_at", None)
        # a plain apply leaves dependency edges pointing at addresses a
        # downscale deleted; resume's dependency refresh prunes them.
        # Dangling edges carry no information either way -- drop both.
        entry["dependencies"] = [
            d for d in entry.get("dependencies", []) if d in live_addresses
        ]
    return rewrite(doc)


def live_prefix_counts(engine) -> Dict[str, int]:
    """How many live records exist per id prefix (type family)."""
    counts: Dict[str, int] = {}
    for record in engine.gateway.all_records():
        prefix = record.id.rsplit("-", 1)[0]
        counts[prefix] = counts.get(prefix, 0) + 1
    return counts


def stranded_ids(engine) -> List[str]:
    """Violations of the state <-> live bijection, as messages."""
    state_ids = {
        e.resource_id for e in engine.state.resources() if e.resource_id
    }
    live_ids = {r.id for r in engine.gateway.all_records()}
    out = []
    for rid in sorted(state_ids - live_ids):
        out.append(f"state points at dead id {rid}")
    for rid in sorted(live_ids - state_ids):
        out.append(f"live record {rid} is tracked by no state entry")
    return out


def convergence_violations(
    chaos, baseline, strict_hash: bool = True
) -> List[str]:
    """Every convergence invariant the chaos arm breaks vs baseline."""
    out: List[str] = []
    if canonical_state(chaos) != canonical_state(baseline):
        out.append("canonical state differs from the uninterrupted run")
    chaos_counts = live_prefix_counts(chaos)
    base_counts = live_prefix_counts(baseline)
    if chaos_counts != base_counts:
        delta = {
            prefix: (chaos_counts.get(prefix, 0), base_counts.get(prefix, 0))
            for prefix in set(chaos_counts) | set(base_counts)
            if chaos_counts.get(prefix, 0) != base_counts.get(prefix, 0)
        }
        out.append(f"live estate shape differs (chaos, baseline): {delta}")
    out.extend(stranded_ids(chaos))
    if strict_hash and chaos.state.content_hash() != baseline.state.content_hash():
        out.append("state content hash disagrees with the uninterrupted run")
    return out


def assert_converged_like(resumed, baseline) -> None:
    """The historical three-part assertion used by the chaos sweeps."""
    # 1. canonical state equality: everything addressable matches once
    #    ids are rewritten to addresses
    assert canonical_state(resumed) == canonical_state(baseline)
    # 2. the clouds hold the same estate shape: no leaked duplicates,
    #    no missing resources
    assert live_prefix_counts(resumed) == live_prefix_counts(baseline)
    # 3. state ids <-> live record ids is a bijection (zero orphans,
    #    zero dangling state entries)
    assert stranded_ids(resumed) == []
