"""The campaign runner: scenario x trial matrices with twin engines.

Every trial runs the same seeded lifecycle **twice**:

* the **baseline arm** -- no injections; the uninterrupted run that
  defines what the estate is supposed to look like, and
* the **chaos arm** -- the scenario's injections armed, then the same
  phases, then a **drain**: advance past every injection's recovery
  horizon, release what must be released (squatters, quotas,
  re-clocked planes), resume until the journal retires, and reconcile
  until a scan comes back clean.

Identity-keyed id minting (PR 8) makes the two arms comparable down to
:meth:`~repro.state.document.StateDocument.content_hash`: same seed,
same identities, same ids -- chaos only changes *when* things landed,
never *what*. The trial passes when every convergence invariant in
:mod:`repro.chaos.invariants` holds and the chaos arm's WAL retired
clean.

The runner never asserts; it reports. Violations are strings on the
:class:`TrialResult`, so one campaign run surfaces every broken
invariant across the whole matrix -- the test sweeps and the CI job
then assert on the report.
"""

from __future__ import annotations

import dataclasses
import os
import random
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ..cloud.base import CloudAPIError
from ..cloud.resilience import RetryPolicy
from ..core.engine import CloudlessEngine
from ..deploy import SimulatedCrash
from ..drift import FullScanDetector
from .dsl import CampaignSpec, ScenarioSpec
from .invariants import convergence_violations
from .seeds import derive_seed

#: the patient schedule high-blanket-fault scenarios need (p_fail ~
#: rate^6 per resource); mirrors the historical chaos sweep
PATIENT_RETRY = RetryPolicy(max_attempts=6, base_backoff_s=2.0)

#: simulated seconds past an injection horizon the drain advances --
#: covers breaker probe windows and residual retry backoff
DRAIN_MARGIN_S = 4000.0


@dataclasses.dataclass
class PhaseRecord:
    """What one lifecycle phase did in one arm."""

    op: str
    ok: bool
    partial: bool = False
    succeeded: int = 0
    failed: int = 0
    quarantined: List[str] = dataclasses.field(default_factory=list)
    crashed: bool = False
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class TrialResult:
    """One seeded run of one scenario, both arms compared."""

    scenario: str
    trial: int
    seed: int
    violations: List[str]
    phases: List[PhaseRecord]
    phases_baseline: List[PhaseRecord]
    api_calls_chaos: int = 0
    api_calls_baseline: int = 0
    makespan_chaos_s: float = 0.0
    makespan_baseline_s: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def api_overhead(self) -> float:
        """Recovery overhead: chaos-arm API calls over baseline's."""
        if self.api_calls_baseline <= 0:
            return 0.0
        return self.api_calls_chaos / self.api_calls_baseline

    @property
    def makespan_overhead(self) -> float:
        if self.makespan_baseline_s <= 0:
            return 0.0
        return self.makespan_chaos_s / self.makespan_baseline_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "trial": self.trial,
            "seed": self.seed,
            "passed": self.passed,
            "violations": list(self.violations),
            "api_calls_chaos": self.api_calls_chaos,
            "api_calls_baseline": self.api_calls_baseline,
            "api_overhead": round(self.api_overhead, 4),
            "makespan_chaos_s": round(self.makespan_chaos_s, 1),
            "makespan_baseline_s": round(self.makespan_baseline_s, 1),
            "phases": [p.to_dict() for p in self.phases],
        }


@dataclasses.dataclass
class ScenarioResult:
    name: str
    defect_classes: List[str]
    trials: List[TrialResult]

    @property
    def passed(self) -> bool:
        return all(t.passed for t in self.trials)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "defect_classes": list(self.defect_classes),
            "trials": [t.to_dict() for t in self.trials],
        }


@dataclasses.dataclass
class CampaignReport:
    """Everything one campaign run produced, JSON-serializable."""

    campaign: str
    results: List[ScenarioResult]

    @property
    def passed(self) -> bool:
        return bool(self.results) and all(r.passed for r in self.results)

    @property
    def pass_rate(self) -> float:
        trials = [t for r in self.results for t in r.trials]
        if not trials:
            return 0.0
        return sum(1 for t in trials if t.passed) / len(trials)

    @property
    def mean_api_overhead(self) -> float:
        """Mean recovery overhead across trials (chaos/baseline calls)."""
        ratios = [
            t.api_overhead
            for r in self.results
            for t in r.trials
            if t.api_calls_baseline > 0
        ]
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)

    def coverage(self) -> Dict[str, List[str]]:
        """Defect class -> the scenarios that exercise it."""
        out: Dict[str, List[str]] = {}
        for result in self.results:
            for klass in result.defect_classes:
                out.setdefault(klass, []).append(result.name)
        return {k: sorted(v) for k, v in sorted(out.items())}

    def violations(self) -> List[str]:
        return [
            f"{r.name}[trial {t.trial}]: {v}"
            for r in self.results
            for t in r.trials
            for v in t.violations
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "passed": self.passed,
            "pass_rate": round(self.pass_rate, 4),
            "mean_api_overhead": round(self.mean_api_overhead, 4),
            "coverage": self.coverage(),
            "scenarios": [r.to_dict() for r in self.results],
        }


class CampaignRunner:
    """Executes a :class:`CampaignSpec` and reports convergence."""

    def __init__(
        self,
        campaign: CampaignSpec,
        workdir: Optional[str] = None,
        drain_attempts: int = 6,
        reconcile_rounds: int = 8,
    ):
        self.campaign = campaign
        self.workdir = workdir or tempfile.mkdtemp(prefix="chaos-")
        self.drain_attempts = drain_attempts
        self.reconcile_rounds = reconcile_rounds

    # -- entry points --------------------------------------------------------

    def run(self) -> CampaignReport:
        return CampaignReport(
            campaign=self.campaign.name,
            results=[
                self.run_scenario(scenario)
                for scenario in self.campaign.scenarios
            ],
        )

    def run_scenario(self, scenario: ScenarioSpec) -> ScenarioResult:
        return ScenarioResult(
            name=scenario.name,
            defect_classes=scenario.defect_classes(),
            trials=[
                self.run_trial(scenario, trial)
                for trial in range(scenario.trials)
            ],
        )

    def run_trial(self, scenario: ScenarioSpec, trial: int) -> TrialResult:
        seed = derive_seed(self.campaign.name, scenario.name, trial)
        tag = f"{scenario.name}-{trial}"

        # baseline arm first: the uninterrupted run also measures each
        # crash_apply phase's event-boundary count, which the chaos arm
        # needs to map kill fractions onto concrete boundaries
        baseline = self._engine(scenario, seed, f"{tag}-base")
        base_ctx: Dict[str, Any] = {"externals": [], "boundaries": {}}
        base_records = [
            self._run_phase(baseline, scenario, seed, i, phase, base_ctx,
                            injected=False)
            for i, phase in enumerate(scenario.phases)
        ]
        base_drain_ok = self._drain(baseline, [], base_ctx)

        chaos = self._engine(scenario, seed, f"{tag}-chaos")
        chaos_ctx: Dict[str, Any] = {
            "externals": [],
            "boundaries": base_ctx["boundaries"],
            # per-tenant canonical baselines a tenant_storm phase's
            # baseline arm computed; the chaos arm converges against them
            "tenant_baselines": base_ctx.get("tenant_baselines", {}),
        }
        injections = scenario.injections
        for injection in injections:
            injection.arm(chaos)
        chaos_records = [
            self._run_phase(chaos, scenario, seed, i, phase, chaos_ctx,
                            injected=True)
            for i, phase in enumerate(scenario.phases)
        ]
        drain_ok = self._drain(chaos, injections, chaos_ctx)

        violations: List[str] = list(chaos_ctx.get("violations", []))
        if not base_drain_ok:
            violations.append(
                "baseline arm failed to converge (runner invariant)"
            )
        if not drain_ok:
            violations.append(
                "chaos arm failed to drain to a converged estate"
            )
        violations.extend(
            convergence_violations(
                chaos, baseline, strict_hash=scenario.strict_hash
            )
        )
        wal = chaos.wal_path
        if wal and os.path.exists(wal) and os.path.getsize(wal) != 0:
            violations.append("intent journal was not retired clean")

        return TrialResult(
            scenario=scenario.name,
            trial=trial,
            seed=seed,
            violations=violations,
            phases=chaos_records,
            phases_baseline=base_records,
            api_calls_chaos=chaos.gateway.total_api_calls(),
            api_calls_baseline=baseline.gateway.total_api_calls(),
            makespan_chaos_s=chaos.clock.now,
            makespan_baseline_s=baseline.clock.now,
        )

    # -- plumbing ------------------------------------------------------------

    def _engine(
        self, scenario: ScenarioSpec, seed: int, tag: str
    ) -> CloudlessEngine:
        return CloudlessEngine(
            seed=seed,
            retry=PATIENT_RETRY if scenario.patient_retry else None,
            wal_path=os.path.join(self.workdir, f"{tag}.wal"),
        )

    def _run_phase(
        self,
        engine: CloudlessEngine,
        scenario: ScenarioSpec,
        seed: int,
        index: int,
        phase: Dict[str, Any],
        ctx: Dict[str, Any],
        injected: bool,
    ) -> PhaseRecord:
        op = phase["op"]
        handler = getattr(self, f"_phase_{op}")
        return handler(engine, scenario, seed, index, phase, ctx, injected)

    @staticmethod
    def _apply_record(op: str, result, **details: Any) -> PhaseRecord:
        apply_result = result.apply
        if apply_result is None:
            return PhaseRecord(op=op, ok=False, details=details)
        return PhaseRecord(
            op=op,
            ok=result.ok,
            partial=result.partial,
            succeeded=len(apply_result.succeeded),
            failed=len(apply_result.failed),
            quarantined=apply_result.quarantined_partitions(),
            details=details,
        )

    def _phase_apply(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        sources = scenario.sources(phase.get("workload_args"))
        result = engine.apply(sources)
        return self._apply_record("apply", result)

    def _phase_crash_apply(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        sources = scenario.sources(phase.get("workload_args"))
        if not injected:
            # the baseline arm runs uninterrupted, counting boundaries
            # so the chaos arm can target one
            boundaries: List[int] = []
            result = engine.apply(sources, crash_hook=boundaries.append)
            ctx["boundaries"][index] = len(boundaries)
            return self._apply_record(
                "crash_apply", result, boundaries=len(boundaries)
            )

        total = ctx["boundaries"].get(index, 0)
        if "kill_point" in phase:
            kill = phase["kill_point"]
        else:
            kill = int(round(phase.get("kill_frac", 0.5) * total))
        kill = max(0, min(total - 1, kill)) if total else 0

        def hook(i, _k=kill):
            if i == _k:
                raise SimulatedCrash(f"campaign kill at boundary {_k}")

        crashed = False
        try:
            engine.apply(sources, crash_hook=hook)
        except SimulatedCrash:
            crashed = True
        # the cloud outlives the dead client: accepted in-flight
        # operations still land before recovery probes
        engine.gateway.settle_inflight()
        outcome = engine.resume(sources)
        record = self._apply_record(
            "crash_apply",
            outcome.result,
            kill_point=kill,
            boundaries=total,
            recovered=outcome.recovery is not None
            and bool(outcome.recovery.actions),
        )
        record.crashed = crashed
        return record

    def _phase_churn(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        """Seeded external mutation burst (ClickOps storm).

        Both arms derive the same RNG, so -- as long as both arms hold
        live records for the chosen addresses -- they mutate the same
        targets and converge to the same repaired estate. Scenarios
        that churn *while* an injection hides part of the estate should
        set ``strict_hash=False``: the arms may then pick different
        victims, which reconciliation heals canonically but not
        id-identically.
        """
        rng = random.Random(seed * 1000003 + index)
        plane_of = lambda e: engine.gateway.planes[  # noqa: E731
            engine.gateway.provider_of(e.address.type)
        ]
        live = [
            e
            for e in sorted(
                engine.state.resources(), key=lambda e: str(e.address)
            )
            if e.resource_id
            and engine.gateway.find_record(e.resource_id) is not None
        ]
        vms = [e for e in live if e.address.type.endswith("virtual_machine")]
        firewalls = [
            e for e in live if e.address.type.endswith("security_group")
        ]
        counts = {"updates": 0, "deletes": 0, "creates": 0, "security": 0}

        for _ in range(phase.get("updates", 0)):
            if not vms:
                break
            entry = vms.pop(rng.randrange(len(vms)))
            plane_of(entry).external_update(
                entry.resource_id, {"size": "xlarge"}
            )
            counts["updates"] += 1
        for _ in range(phase.get("security", 0)):
            if not firewalls:
                break
            entry = firewalls.pop(rng.randrange(len(firewalls)))
            plane_of(entry).external_update(
                entry.resource_id,
                {"ingress_rules": [{"port": 22, "cidr": "0.0.0.0/0"}]},
            )
            counts["security"] += 1
        for _ in range(phase.get("deletes", 0)):
            if not vms:
                break
            entry = vms.pop(rng.randrange(len(vms)))
            plane_of(entry).external_delete(entry.resource_id)
            counts["deletes"] += 1
        plane = engine.gateway.planes["aws"]
        for i in range(phase.get("creates", 0)):
            rid = plane.external_create(
                "aws_s3_bucket",
                {"name": f"rogue-{index}-{i}"},
                plane.regions[0],
                actor="shadow-it",
            )
            ctx["externals"].append(("aws", rid))
            counts["creates"] += 1
        return PhaseRecord(op="churn", ok=True, details=counts)

    def _phase_reconcile(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        rounds = phase.get("rounds", 6)
        clean, repaired = self._repair_fixpoint(engine, rounds)
        return PhaseRecord(
            op="reconcile",
            ok=clean,
            details={"repaired": repaired, "rounds": rounds},
        )

    def _phase_watch(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        cycles = engine.watch_continuously(
            cycles=phase.get("cycles", 3),
            interval_s=phase.get("interval_s", 60.0),
            max_lag_s=phase.get("max_lag_s", 900.0),
            auto_reconcile=True,
        )
        return PhaseRecord(
            op="watch",
            ok=not any(c.hard_failed for c in cycles),
            details={
                "findings": sum(len(c.findings) for c in cycles),
                "deferred": len(cycles[-1].deferred) if cycles else 0,
                "stale": sorted(
                    {p for c in cycles for p in c.stale}
                ),
                "defects": _merge_counts(
                    c.defect_counts() for c in cycles
                ),
            },
        )

    def _phase_snapshot(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        snap = engine.history.checkpoint(
            engine.state,
            engine.last_sources,
            timestamp=engine.clock.now,
            description=f"campaign snapshot (phase {index})",
        )
        ctx["snapshot"] = snap.version
        return PhaseRecord(
            op="snapshot", ok=True, details={"version": snap.version}
        )

    def _phase_rollback(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        version = ctx.get("snapshot")
        if version is None:
            return PhaseRecord(
                op="rollback",
                ok=False,
                details={"error": "no snapshot phase preceded rollback"},
            )
        # a faulted rollback pass leaves a remainder; re-planning from
        # current state resumes it (mirrors the historical sweep)
        attempts = 0
        result = None
        for attempts in range(1, phase.get("attempts", 5) + 1):
            result = engine.rollback(version)
            if not result.errors:
                break
        return PhaseRecord(
            op="rollback",
            ok=not result.errors,
            details={
                "version": version,
                "attempts": attempts,
                "errors": len(result.errors),
                "redeployments": result.plan.redeployments,
            },
        )

    def _phase_tenant_storm(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        """Kill-and-preempt a multi-tenant service mid-storm.

        The baseline arm builds each tenant's estate on a private
        single-tenant engine (seeded exactly like the service seeds its
        sessions) and records the canonical states. The chaos arm runs
        the same applies through a :class:`ControlPlaneService`,
        crashing the first ``kill_frac`` of the tenants mid-apply, then
        SIGKILLs the whole instance, restarts a successor that preempts
        the dead instance's session leases, resumes the orphans, and
        requires every tenant -- killed or bystander -- to converge to
        its baseline with an all-noop final apply. Cross-tenant bleed
        (a bystander whose estate changed because a neighbor died) is a
        violation. Runs with ``service.*`` perf probes enabled and
        reports their snapshot in the phase details (the counter
        contract the campaign report asserts on).
        """
        import asyncio

        from ..perf import PERF
        from .invariants import canonical_state

        tenants = [f"t{i:02d}" for i in range(phase.get("tenants", 4))]
        sources = scenario.sources(phase.get("workload_args"))
        kill_count = max(
            1, int(round(phase.get("kill_frac", 0.5) * len(tenants)))
        )
        killed = tenants[:kill_count]

        if not injected:
            from ..service.core import _tenant_seed

            baselines: Dict[str, Any] = {}
            for tenant in tenants:
                single = CloudlessEngine(seed=_tenant_seed(tenant))
                result = single.apply(sources)
                if not result.ok:
                    return PhaseRecord(
                        op="tenant_storm",
                        ok=False,
                        details={"error": f"baseline apply failed: {tenant}"},
                    )
                baselines[tenant] = canonical_state(single)
            ctx["tenant_baselines"] = baselines
            return PhaseRecord(
                op="tenant_storm",
                ok=True,
                succeeded=len(tenants),
                details={"tenants": len(tenants), "killed": 0},
            )

        baselines = ctx.get("tenant_baselines", {})
        violations: List[str] = ctx.setdefault("violations", [])
        root = os.path.join(self.workdir, f"storm-{seed}-{index}")
        was_enabled = PERF.enabled
        PERF.enable()
        try:
            details = asyncio.run(
                _run_tenant_storm(
                    root, tenants, killed, sources,
                    phase.get("drift_reads", 1), baselines, violations,
                )
            )
        finally:
            if not was_enabled:
                PERF.disable()
        return PhaseRecord(
            op="tenant_storm",
            ok=not violations,
            succeeded=details.pop("converged"),
            failed=len(violations),
            crashed=True,
            details=details,
        )

    def _phase_advance(
        self, engine, scenario, seed, index, phase, ctx, injected
    ) -> PhaseRecord:
        if "to_s" in phase:
            engine.clock.advance_to(
                max(engine.clock.now, float(phase["to_s"]))
            )
        else:
            engine.clock.advance_by(float(phase.get("by_s", 0.0)))
        return PhaseRecord(
            op="advance", ok=True, details={"now": engine.clock.now}
        )

    # -- drain ---------------------------------------------------------------

    def _drain(self, engine, injections, ctx) -> bool:
        """Advance past every horizon, release, converge, reconcile."""
        horizon = max(
            [inj.horizon() for inj in injections] + [0.0]
        )
        if horizon > 0.0:
            engine.clock.advance_to(
                max(engine.clock.now, horizon + DRAIN_MARGIN_S)
            )
        for injection in injections:
            injection.release(engine)
        for provider, rid in ctx["externals"]:
            try:
                engine.gateway.planes[provider].external_delete(
                    rid, actor="shadow-it"
                )
            except CloudAPIError:
                pass
        ctx["externals"] = []

        converged = False
        for _ in range(self.drain_attempts):
            outcome = engine.resume()
            if outcome.ok:
                converged = True
                break
            # still dark somewhere? advance past the freshest horizon;
            # otherwise give residual backoff/breaker windows room
            dark = engine.gateway.dark_partitions()
            if dark:
                engine.clock.advance_to(
                    max(dark.values()) + DRAIN_MARGIN_S
                )
            else:
                engine.clock.advance_by(DRAIN_MARGIN_S)
        if not converged:
            return False
        clean, _ = self._repair_fixpoint(engine, self.reconcile_rounds)
        return clean

    def _repair_fixpoint(
        self, engine, rounds: int
    ) -> Tuple[bool, int]:
        """Reconcile <-> resume until a fixpoint: a repair can mint new
        ids (enforce-recreate), and only a fresh apply pass propagates
        them into config-derived references (lb target lists, computed
        endpoints) and refreshed dependency edges. Without it, a later
        snapshot captures -- and a rollback tries to restore -- a
        reference to a dead id."""
        total = 0
        for _ in range(self.drain_attempts):
            clean, repaired = self._reconcile_until_clean(engine, rounds)
            total += repaired
            if not clean:
                return False, total
            if repaired == 0:
                return True, total
            if not engine.resume().ok:
                return False, total
        return False, total

    def _reconcile_until_clean(
        self, engine, rounds: int
    ) -> Tuple[bool, int]:
        """Detect + reconcile until a scan comes back clean; runner
        rogues are unmanaged (notify-only) and never block cleanliness."""
        repaired = 0
        for _ in range(rounds):
            run = FullScanDetector(engine.resilient).scan(engine.state)
            findings = [f for f in run.findings if f.kind != "unmanaged"]
            if not findings:
                return True, repaired
            engine.reconcile(findings)
            repaired += len(findings)
        run = FullScanDetector(engine.resilient).scan(engine.state)
        return (
            not [f for f in run.findings if f.kind != "unmanaged"],
            repaired,
        )


class _KillAtBoundary:
    """Crash hook: dies at the Nth event boundary (SIGKILL stand-in)."""

    def __init__(self, boundary: int):
        self.boundary = boundary
        self.seen = 0

    def __call__(self, *args: Any, **kwargs: Any) -> None:
        self.seen += 1
        if self.seen >= self.boundary:
            raise SimulatedCrash(f"tenant-storm kill at boundary {self.boundary}")


async def _run_tenant_storm(
    root: str,
    tenants: List[str],
    killed: List[str],
    sources: str,
    drift_reads: int,
    baselines: Dict[str, Any],
    violations: List[str],
) -> Dict[str, Any]:
    """Drive the service through storm -> kill -> preempt -> converge."""
    import asyncio

    from ..perf import PERF
    from ..service import ControlPlaneService, ServicePolicy, TenantQuota
    from .invariants import canonical_state

    # generous quotas: the storm tests crash recovery and isolation, so
    # admission shedding would only add noise here
    policy = ServicePolicy(
        apply_pool=4,
        max_queue_depth=max(64, 8 * len(tenants)),
        default_deadline_s=600.0,
        default_quota=TenantQuota(
            rate_rps=1e6, burst=1e6, max_pending=1 + drift_reads + 8
        ),
    )
    service = ControlPlaneService(root, instance="storm-A", policy=policy)
    await service.start()
    applies = {}
    for tenant in tenants:
        payload: Dict[str, Any] = {"sources": sources}
        if tenant in killed:
            payload["crash_hook"] = _KillAtBoundary(2)
        applies[tenant] = await service.submit(tenant, "apply", payload=payload)
    reads = []
    for tenant in tenants:
        for _ in range(drift_reads):
            reads.append(await service.submit(tenant, "drift"))
    responses = {tenant: await fut for tenant, fut in applies.items()}
    read_responses = list(await asyncio.gather(*reads))

    for tenant, response in sorted(responses.items()):
        if tenant in killed:
            if response.reason != "crashed":
                violations.append(
                    f"tenant_storm: kill of {tenant} answered "
                    f"{response.status}/{response.reason}, expected a "
                    f"typed crash"
                )
        elif response.status != 200:
            violations.append(
                f"tenant_storm: bystander {tenant} apply failed with "
                f"{response.status}/{response.reason}"
            )
    untyped = sum(
        1 for r in read_responses if r.status != 200 and not r.reason
    )
    if untyped:
        violations.append(
            f"tenant_storm: {untyped} read(s) came back untyped"
        )
    await service.kill()

    successor = ControlPlaneService(root, instance="storm-B", policy=policy)
    await successor.start()
    adopted = 0
    for tenant in killed:
        resumed = await successor.request(
            tenant, "resume", payload={"sources": sources}
        )
        if resumed.status != 200:
            violations.append(
                f"tenant_storm: resume of {tenant} failed with "
                f"{resumed.status}/{resumed.reason}"
            )
        else:
            adopted += int((resumed.body or {}).get("adopted", 0))
    converged = 0
    for tenant in tenants:
        final = await successor.request(
            tenant, "apply", payload={"sources": sources}
        )
        if final.status != 200:
            violations.append(
                f"tenant_storm: final apply for {tenant} failed with "
                f"{final.status}/{final.reason}"
            )
            continue
        summary = (final.body or {}).get("summary", {})
        mutations = sum(
            count
            for verb, count in summary.items()
            if verb not in ("noop", "read")
        )
        if mutations:
            violations.append(
                f"tenant_storm: final apply for {tenant} was not a "
                f"noop ({summary})"
            )
            continue
        state = canonical_state(successor.sessions[tenant].engine)
        if baselines and state != baselines.get(tenant):
            violations.append(
                f"tenant_storm: {tenant} diverged from its "
                f"single-tenant baseline estate"
            )
            continue
        converged += 1
    stats = successor.stats()  # also publishes the service.* gauges
    snapshot = PERF.snapshot()
    await successor.stop()
    return {
        "tenants": len(tenants),
        "killed": len(killed),
        "adopted": adopted,
        "converged": converged,
        "reads": len(read_responses),
        "shed": stats["shed"],
        "perf_counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("service.")
        },
        "perf_gauges": {
            name: value
            for name, value in snapshot["gauges"].items()
            if name.startswith("service.")
        },
        "perf_timers": {
            name: timer["count"]
            for name, timer in snapshot["timers"].items()
            if name.startswith("service.")
        },
    }


def _merge_counts(dicts) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0) + v
    return out
