"""The defect taxonomy chaos scenarios are scored against.

Extends the IaC defect taxonomy of arxiv 2505.01568 (which
:func:`repro.drift.watcher.classify_defect` already applies to drift
findings) with the management-plane failure classes the paper's 3.3/3.5
worry about: outages, throttling, quota exhaustion, crash consistency,
and the cross-plane skews (API version, clock) that make "the cloud"
plural. Every scenario in :mod:`repro.chaos.library` declares which
classes it exercises; :class:`~repro.chaos.runner.CampaignReport`
aggregates them into a coverage report so a campaign can answer "which
defect classes does this estate's chaos suite actually test?".
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: defect class -> what it means. The first five are the drift
#: taxonomy's classes, verbatim, so watcher ``defect_counts()`` and
#: campaign coverage speak one vocabulary.
DEFECT_CLASSES: Dict[str, str] = {
    # -- drift taxonomy (arxiv 2505.01568, as used by drift/watcher.py) --
    "availability/missing-resource": (
        "a managed resource was deleted out of band"
    ),
    "provisioning/unmanaged-resource": (
        "a resource exists that no IaC program manages"
    ),
    "security/misconfiguration": (
        "a security-relevant attribute drifted (policy, cidr, keys, ...)"
    ),
    "capacity/misconfiguration": (
        "a sizing attribute drifted (size, count, sku, tier)"
    ),
    "configuration/attribute-drift": (
        "a plain attribute drifted from its declared value"
    ),
    # -- management-plane failure classes -------------------------------
    "availability/service-outage": (
        "a region or provider control plane is hard-down; every call "
        "into it fails until the window closes"
    ),
    "availability/partial-outage": (
        "an asymmetric partition: one operation class fails (e.g. "
        "writes) while the rest of the plane still answers"
    ),
    "performance/degraded-service": (
        "a brownout: calls succeed but latency is multiplied"
    ),
    "performance/rate-limit": (
        "throttling pressure: API pushback or a noisy neighbor burning "
        "the shared token bucket"
    ),
    "capacity/quota-exhaustion": (
        "a provider quota is exhausted; creates fail terminally until "
        "capacity is released"
    ),
    "reliability/transient-error": (
        "point failures that succeed on retry (5xx storms, hangs)"
    ),
    "reliability/crash-consistency": (
        "the client process dies mid-apply; recovery must converge "
        "from the intent journal plus the live cloud"
    ),
    "idempotency/duplicate-request": (
        "a retried or resumed create must not provision a duplicate "
        "(ClientToken semantics)"
    ),
    "interface/version-skew": (
        "a provider API version mismatch rejects calls until the "
        "plane (or client) rolls forward"
    ),
    "timing/clock-skew": (
        "a plane's clock runs ahead of the coordinator; timestamps "
        "and staleness accounting must survive"
    ),
    # -- multi-tenant service classes ------------------------------------
    "isolation/tenant-interference": (
        "one tenant's load or failure bleeds into another tenant's "
        "estate, latency, or goodput (noisy neighbor, shared-fate)"
    ),
    "capacity/admission-overload": (
        "offered load exceeds service capacity; the admission tier "
        "must shed typed rejections instead of hanging or collapsing"
    ),
}


def validate_classes(classes: Iterable[str]) -> List[str]:
    """Return the unknown entries (empty list == all valid)."""
    return sorted(set(classes) - set(DEFECT_CLASSES))
