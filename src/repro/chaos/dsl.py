"""The chaos scenario DSL.

A **scenario** is a declarative value: a workload, a list of
**injections** (what breaks), a list of lifecycle **phases** (what the
operator does while it is broken), and the defect-taxonomy classes the
combination exercises. Scenarios and campaigns round-trip through
JSON -- ``ScenarioSpec.from_dict(spec.to_dict()) == spec`` -- so a
campaign file fully names an experiment, and every validation error
names the offending field (:class:`SpecValidationError`).

Injections compose the cloud layer's primitives
(:class:`~repro.cloud.faults.FaultSpec`,
:class:`~repro.cloud.faults.OutageSpec`, blanket transient rates) with
the correlated/asymmetric/contention failure modes real estates see:

========================  ====================================================
``fault``                 one scheduled :class:`FaultSpec` rule per provider
``transient-rate``        blanket transient failure probability on mutations
``outage``                one :class:`OutageSpec` window on one provider
``correlated-outage``     staggered hard outages across several (provider,
                          region) zones -- the classic correlated failure
``asymmetric-partition``  op-class-scoped outage: writes fail, reads answer
                          (or the inverse)
``quota-storm``           a co-tenant squats the quota; creates fail
                          terminally until capacity is released
``ratelimit-storm``       a noisy neighbor drains a token bucket and reserves
                          its refill stream
``version-skew``          a provider rejects an API version inside a time
                          window, then heals
``clock-skew``            a provider's management plane runs ahead of the
                          coordinator clock
========================  ====================================================

Each injection knows how to ``arm(engine)`` before the phases run, what
recovery ``horizon()`` the drain must advance past, and how to
``release(engine)`` anything (squatters, quotas, re-clocked planes)
that would otherwise keep the estate from converging.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Tuple

from ..cloud.clock import SkewedClock
from ..cloud.faults import (
    FaultSpec,
    OutageSpec,
    SpecValidationError,
    _check_fields,
)
from ..cloud.resilience import THROTTLE_CODES
from ..workloads import (
    scale_estate,
    sized_estate,
    two_region_estate,
    web_tier,
)
from .taxonomy import validate_classes

#: workload name -> generator; scenario files reference these by name
WORKLOADS = {
    "web_tier": web_tier,
    "two_region_estate": two_region_estate,
    "sized_estate": sized_estate,
    "scale_estate": scale_estate,
}


def _target_planes(engine, providers: List[str]) -> List[Tuple[str, Any]]:
    """(name, plane) pairs an injection targets; ``[]`` = every plane."""
    names = providers or sorted(engine.gateway.planes)
    out = []
    for name in names:
        plane = engine.gateway.planes.get(name)
        if plane is None:
            raise SpecValidationError(
                f"injection targets unknown provider {name!r} "
                f"(have: {', '.join(sorted(engine.gateway.planes))})"
            )
        out.append((name, plane))
    return out


class Injection:
    """Base class: one named failure mode, armed onto an engine."""

    kind: ClassVar[str] = ""

    def arm(self, engine) -> None:
        raise NotImplementedError

    def release(self, engine) -> None:
        """Undo anything that must be lifted before the drain phase."""

    def horizon(self) -> float:
        """Sim time after which the injection no longer fires."""
        return 0.0

    def defect_classes(self) -> List[str]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __eq__(self, other: Any) -> bool:
        return (
            type(other) is type(self) and other.to_dict() == self.to_dict()
        )


@dataclasses.dataclass(eq=False)
class FaultInjection(Injection):
    """One scheduled :class:`FaultSpec` rule, added to each target
    provider's injector (each plane gets its own copy, so strike and
    skip accounting never crosses planes)."""

    fault: FaultSpec
    providers: List[str] = dataclasses.field(default_factory=list)

    kind = "fault"

    def arm(self, engine) -> None:
        for _, plane in _target_planes(engine, self.providers):
            plane.faults.add_rule(dataclasses.replace(self.fault))

    def horizon(self) -> float:
        return self.fault.end_s or 0.0

    def defect_classes(self) -> List[str]:
        if self.fault.error_code in THROTTLE_CODES:
            return ["performance/rate-limit"]
        return ["reliability/transient-error"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "providers": list(self.providers),
            "fault": self.fault.to_dict(),
        }

    _FIELDS = {"providers": (list,), "fault": (dict,)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultInjection":
        kwargs = _check_fields("FaultInjection", data, cls._FIELDS)
        if "fault" not in kwargs:
            raise SpecValidationError("FaultInjection.fault is required")
        return cls(
            fault=FaultSpec.from_dict(kwargs["fault"]),
            providers=list(kwargs.get("providers") or []),
        )


@dataclasses.dataclass(eq=False)
class TransientRate(Injection):
    """Blanket transient failure probability on every mutating call."""

    rate: float
    providers: List[str] = dataclasses.field(default_factory=list)

    kind = "transient-rate"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise SpecValidationError(
                f"TransientRate.rate must be in [0, 1), got {self.rate}"
            )

    def arm(self, engine) -> None:
        for _, plane in _target_planes(engine, self.providers):
            plane.faults.set_transient_rate(self.rate)

    def defect_classes(self) -> List[str]:
        return [
            "reliability/transient-error",
            "idempotency/duplicate-request",
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "providers": list(self.providers),
        }

    _FIELDS = {"rate": (int, float), "providers": (list,)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TransientRate":
        kwargs = _check_fields("TransientRate", data, cls._FIELDS)
        if "rate" not in kwargs:
            raise SpecValidationError("TransientRate.rate is required")
        if not 0.0 <= kwargs["rate"] < 1.0:
            raise SpecValidationError(
                f"TransientRate.rate must be in [0, 1), got {kwargs['rate']}"
            )
        return cls(
            rate=float(kwargs["rate"]),
            providers=list(kwargs.get("providers") or []),
        )


@dataclasses.dataclass(eq=False)
class OutageInjection(Injection):
    """One :class:`OutageSpec` window on one provider."""

    provider: str
    outage: OutageSpec

    kind = "outage"

    def arm(self, engine) -> None:
        engine.gateway.inject_outage(self.provider, self.outage)

    def horizon(self) -> float:
        return self.outage.end_s

    def defect_classes(self) -> List[str]:
        if self.outage.mode == "brownout":
            return ["performance/degraded-service"]
        if self.outage.op_class:
            return ["availability/partial-outage"]
        return ["availability/service-outage"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "provider": self.provider,
            "outage": self.outage.to_dict(),
        }

    _FIELDS = {"provider": (str,), "outage": (dict,)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OutageInjection":
        kwargs = _check_fields("OutageInjection", data, cls._FIELDS)
        for required in ("provider", "outage"):
            if required not in kwargs:
                raise SpecValidationError(
                    f"OutageInjection.{required} is required"
                )
        return cls(
            provider=kwargs["provider"],
            outage=OutageSpec.from_dict(kwargs["outage"]),
        )


@dataclasses.dataclass(eq=False)
class CorrelatedOutage(Injection):
    """Staggered hard outages across several (provider, region) zones.

    Zone ``i`` goes dark at ``start_s + i * stagger_s`` for
    ``duration_s`` -- the correlated multi-zone failure (shared power,
    shared backbone, cascading load) that single-window outage tests
    never exercise.
    """

    zones: List[List[str]]  # [provider, region] pairs; region "" = whole plane
    start_s: float = 0.0
    duration_s: float = 10000.0
    stagger_s: float = 0.0

    kind = "correlated-outage"

    def __post_init__(self) -> None:
        for i, zone in enumerate(self.zones):
            if not (
                isinstance(zone, (list, tuple))
                and len(zone) == 2
                and all(isinstance(part, str) for part in zone)
            ):
                raise SpecValidationError(
                    f"CorrelatedOutage.zones[{i}] must be a "
                    f"[provider, region] pair, got {zone!r}"
                )

    def arm(self, engine) -> None:
        for i, (provider, region) in enumerate(self.zones):
            begin = self.start_s + i * self.stagger_s
            engine.gateway.inject_outage(
                provider,
                OutageSpec(
                    start_s=begin, end_s=begin + self.duration_s, region=region
                ),
            )

    def horizon(self) -> float:
        if not self.zones:
            return 0.0
        return (
            self.start_s
            + (len(self.zones) - 1) * self.stagger_s
            + self.duration_s
        )

    def defect_classes(self) -> List[str]:
        return ["availability/service-outage"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "zones": [list(z) for z in self.zones],
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "stagger_s": self.stagger_s,
        }

    _FIELDS = {
        "zones": (list,),
        "start_s": (int, float),
        "duration_s": (int, float),
        "stagger_s": (int, float),
    }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorrelatedOutage":
        kwargs = _check_fields("CorrelatedOutage", data, cls._FIELDS)
        zones = kwargs.get("zones")
        if not zones:
            raise SpecValidationError(
                "CorrelatedOutage.zones is required (non-empty list of "
                "[provider, region] pairs)"
            )
        for i, zone in enumerate(zones):
            if (
                not isinstance(zone, (list, tuple))
                or len(zone) != 2
                or not all(isinstance(z, str) for z in zone)
            ):
                raise SpecValidationError(
                    f"CorrelatedOutage.zones[{i}] must be a "
                    f"[provider, region] pair, got {zone!r}"
                )
        return cls(
            zones=[list(z) for z in zones],
            start_s=float(kwargs.get("start_s", 0.0)),
            duration_s=float(kwargs.get("duration_s", 10000.0)),
            stagger_s=float(kwargs.get("stagger_s", 0.0)),
        )


@dataclasses.dataclass(eq=False)
class AsymmetricPartition(Injection):
    """An op-class-scoped outage: the classic half-broken partition.

    ``op_class="write"`` (default): mutations fail fast while list
    pages, log tails, and probes keep answering -- the control plane
    went read-only. ``"read"`` models the inverse (blind but writable).
    """

    provider: str
    region: str = ""
    start_s: float = 0.0
    end_s: float = 10000.0
    op_class: str = "write"

    kind = "asymmetric-partition"

    def arm(self, engine) -> None:
        engine.gateway.inject_outage(
            self.provider,
            OutageSpec(
                start_s=self.start_s,
                end_s=self.end_s,
                region=self.region,
                op_class=self.op_class,
                error_code="PartitionUnavailable",
            ),
        )

    def horizon(self) -> float:
        return self.end_s

    def defect_classes(self) -> List[str]:
        return ["availability/partial-outage"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "provider": self.provider,
            "region": self.region,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "op_class": self.op_class,
        }

    _FIELDS = {
        "provider": (str,),
        "region": (str,),
        "start_s": (int, float),
        "end_s": (int, float),
        "op_class": (str,),
    }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AsymmetricPartition":
        kwargs = _check_fields("AsymmetricPartition", data, cls._FIELDS)
        if "provider" not in kwargs:
            raise SpecValidationError(
                "AsymmetricPartition.provider is required"
            )
        op_class = kwargs.get("op_class", "write")
        if op_class not in ("read", "write"):
            raise SpecValidationError(
                f"AsymmetricPartition.op_class must be 'read' or 'write', "
                f"got {op_class!r}"
            )
        return cls(
            provider=kwargs["provider"],
            region=kwargs.get("region", ""),
            start_s=float(kwargs.get("start_s", 0.0)),
            end_s=float(kwargs.get("end_s", 10000.0)),
            op_class=op_class,
        )


@dataclasses.dataclass(eq=False)
class QuotaStorm(Injection):
    """A co-tenant exhausts a provider quota.

    ``squatters`` out-of-band resources land first, then the quota is
    clamped to ``limit`` (default: exactly the squatter count -- zero
    headroom), so every managed create of ``rtype`` in the region fails
    terminally with ``QuotaExceeded`` until :meth:`release` deletes the
    squatters and lifts the quota.
    """

    provider: str
    rtype: str
    region: str = ""  # "" = the plane's default region
    squatters: int = 4
    limit: int = -1  # -1 = exactly `squatters` (no headroom)

    kind = "quota-storm"

    def __post_init__(self) -> None:
        self._squatter_ids: List[str] = []
        self._armed_region = ""

    def arm(self, engine) -> None:
        plane = engine.gateway.planes[self.provider]
        region = self.region or plane.regions[0]
        self._armed_region = region
        self._squatter_ids = [
            plane.external_create(
                self.rtype,
                {"name": f"squatter-{i}"},
                region,
                actor="noisy-tenant",
            )
            for i in range(self.squatters)
        ]
        limit = self.limit if self.limit >= 0 else self.squatters
        plane.set_quota(self.rtype, region, limit)

    def release(self, engine) -> None:
        plane = engine.gateway.planes[self.provider]
        for rid in self._squatter_ids:
            try:
                plane.external_delete(rid, actor="noisy-tenant")
            except Exception:
                pass
        self._squatter_ids = []
        plane.quotas.pop((self.rtype, self._armed_region), None)

    def defect_classes(self) -> List[str]:
        return ["capacity/quota-exhaustion"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "provider": self.provider,
            "rtype": self.rtype,
            "region": self.region,
            "squatters": self.squatters,
            "limit": self.limit,
        }

    _FIELDS = {
        "provider": (str,),
        "rtype": (str,),
        "region": (str,),
        "squatters": (int,),
        "limit": (int,),
    }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuotaStorm":
        kwargs = _check_fields("QuotaStorm", data, cls._FIELDS)
        for required in ("provider", "rtype"):
            if required not in kwargs:
                raise SpecValidationError(f"QuotaStorm.{required} is required")
        if kwargs.get("squatters", 4) < 0:
            raise SpecValidationError(
                f"QuotaStorm.squatters must be >= 0, got {kwargs['squatters']}"
            )
        return cls(
            provider=kwargs["provider"],
            rtype=kwargs["rtype"],
            region=kwargs.get("region", ""),
            squatters=kwargs.get("squatters", 4),
            limit=kwargs.get("limit", -1),
        )


@dataclasses.dataclass(eq=False)
class RateLimitStorm(Injection):
    """A noisy neighbor drains a rate-limit bucket at arm time.

    The co-tenant burns every token in the ``op_class`` bucket and
    reserves the refill stream for ``busy_s`` simulated seconds (see
    :meth:`~repro.cloud.ratelimit.TokenBucket.preempt`); the tenant's
    first calls then start throttled, exactly the cross-tenant
    contention the paper's 3.3 blames for slow management planes.
    """

    busy_s: float
    op_class: str = "write"
    providers: List[str] = dataclasses.field(default_factory=list)

    kind = "ratelimit-storm"

    def __post_init__(self) -> None:
        self._armed_until = 0.0

    def arm(self, engine) -> None:
        now = engine.clock.now
        for _, plane in _target_planes(engine, self.providers):
            self._armed_until = max(
                self._armed_until,
                plane.limiter.preempt(self.op_class, now, self.busy_s),
            )

    def horizon(self) -> float:
        return self._armed_until

    def defect_classes(self) -> List[str]:
        return ["performance/rate-limit"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "busy_s": self.busy_s,
            "op_class": self.op_class,
            "providers": list(self.providers),
        }

    _FIELDS = {
        "busy_s": (int, float),
        "op_class": (str,),
        "providers": (list,),
    }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RateLimitStorm":
        kwargs = _check_fields("RateLimitStorm", data, cls._FIELDS)
        if "busy_s" not in kwargs:
            raise SpecValidationError("RateLimitStorm.busy_s is required")
        if kwargs["busy_s"] < 0:
            raise SpecValidationError(
                f"RateLimitStorm.busy_s must be >= 0, got {kwargs['busy_s']}"
            )
        return cls(
            busy_s=float(kwargs["busy_s"]),
            op_class=kwargs.get("op_class", "write"),
            providers=list(kwargs.get("providers") or []),
        )


@dataclasses.dataclass(eq=False)
class VersionSkew(Injection):
    """A provider rejects an API version inside a time window.

    Every matching call fails (transiently -- the provider rolls
    forward at ``end_s`` and the same request then succeeds), modelling
    the deploy-during-provider-rollout races real estates hit.
    """

    providers: List[str] = dataclasses.field(default_factory=list)
    match_type: str = ""
    match_operation: str = ""
    start_s: float = 0.0
    end_s: float = 5000.0
    error_code: str = "InvalidApiVersion"

    kind = "version-skew"

    def arm(self, engine) -> None:
        for _, plane in _target_planes(engine, self.providers):
            plane.faults.add_rule(
                FaultSpec(
                    error_code=self.error_code,
                    message=(
                        f"{self.error_code}: the requested API version is "
                        f"not supported until the provider rolls forward "
                        f"(t={self.end_s:.0f})"
                    ),
                    match_type=self.match_type,
                    match_operation=self.match_operation,
                    probability=1.0,
                    transient=True,
                    max_strikes=-1,
                    start_s=self.start_s,
                    end_s=self.end_s,
                )
            )

    def horizon(self) -> float:
        return self.end_s

    def defect_classes(self) -> List[str]:
        return ["interface/version-skew"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "providers": list(self.providers),
            "match_type": self.match_type,
            "match_operation": self.match_operation,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "error_code": self.error_code,
        }

    _FIELDS = {
        "providers": (list,),
        "match_type": (str,),
        "match_operation": (str,),
        "start_s": (int, float),
        "end_s": (int, float),
        "error_code": (str,),
    }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VersionSkew":
        kwargs = _check_fields("VersionSkew", data, cls._FIELDS)
        start = float(kwargs.get("start_s", 0.0))
        end = float(kwargs.get("end_s", 5000.0))
        if end <= start:
            raise SpecValidationError(
                f"VersionSkew window must be non-empty: [{start}, {end})"
            )
        return cls(
            providers=list(kwargs.get("providers") or []),
            match_type=kwargs.get("match_type", ""),
            match_operation=kwargs.get("match_operation", ""),
            start_s=start,
            end_s=end,
            error_code=kwargs.get("error_code", "InvalidApiVersion"),
        )


@dataclasses.dataclass(eq=False)
class ClockSkew(Injection):
    """One provider's management plane runs ahead of the coordinator.

    The plane's clock is replaced with a :class:`SkewedClock` view of
    the shared base clock: its activity-log events and completion
    stamps land ``offset_s`` in the coordinator's future. Release folds
    the skew into the base clock (time never moves backwards) and
    restores the shared clock.
    """

    provider: str
    offset_s: float = 120.0

    kind = "clock-skew"

    def __post_init__(self) -> None:
        if self.offset_s < 0.0:
            raise SpecValidationError(
                f"ClockSkew.offset_s must be >= 0 (time never runs "
                f"backwards), got {self.offset_s}"
            )
        self._replaced: List[Tuple[Any, Any]] = []

    def arm(self, engine) -> None:
        plane = engine.gateway.planes[self.provider]
        original = plane.clock
        plane.clock = SkewedClock(original, self.offset_s)
        self._replaced.append((plane, original))

    def release(self, engine) -> None:
        for plane, original in self._replaced:
            original.advance_to(plane.clock.now)
            plane.clock = original
        self._replaced = []

    def defect_classes(self) -> List[str]:
        return ["timing/clock-skew"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "provider": self.provider,
            "offset_s": self.offset_s,
        }

    _FIELDS = {"provider": (str,), "offset_s": (int, float)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClockSkew":
        kwargs = _check_fields("ClockSkew", data, cls._FIELDS)
        if "provider" not in kwargs:
            raise SpecValidationError("ClockSkew.provider is required")
        offset = float(kwargs.get("offset_s", 120.0))
        if offset < 0:
            raise SpecValidationError(
                f"ClockSkew.offset_s must be >= 0, got {offset}"
            )
        return cls(provider=kwargs["provider"], offset_s=offset)


INJECTION_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        FaultInjection,
        TransientRate,
        OutageInjection,
        CorrelatedOutage,
        AsymmetricPartition,
        QuotaStorm,
        RateLimitStorm,
        VersionSkew,
        ClockSkew,
    )
}


def injection_from_dict(data: Mapping[str, Any]) -> Injection:
    if not isinstance(data, Mapping):
        raise SpecValidationError(
            f"injection must be a mapping, got {type(data).__name__}"
        )
    kind = data.get("kind")
    if kind not in INJECTION_KINDS:
        raise SpecValidationError(
            f"injection.kind must be one of "
            f"{', '.join(sorted(INJECTION_KINDS))}; got {kind!r}"
        )
    rest = {k: v for k, v in data.items() if k != "kind"}
    return INJECTION_KINDS[kind].from_dict(rest)


# -- phases -------------------------------------------------------------------

#: phase op -> allowed parameter fields (and accepted types)
PHASE_OPS: Dict[str, Dict[str, tuple]] = {
    "apply": {"workload_args": (dict,)},
    "crash_apply": {
        "kill_frac": (int, float),
        "kill_point": (int,),
        "workload_args": (dict,),
    },
    "churn": {
        "updates": (int,),
        "deletes": (int,),
        "creates": (int,),
        "security": (int,),
    },
    "reconcile": {"rounds": (int,)},
    "watch": {
        "cycles": (int,),
        "interval_s": (int, float),
        "max_lag_s": (int, float),
    },
    "snapshot": {},
    "rollback": {},
    "advance": {"to_s": (int, float), "by_s": (int, float)},
    "tenant_storm": {
        "tenants": (int,),
        "kill_frac": (int, float),
        "drift_reads": (int,),
        "workload_args": (dict,),
    },
}

#: defect classes a phase exercises regardless of injections
_PHASE_CLASSES = {
    "crash_apply": (
        "reliability/crash-consistency",
        "idempotency/duplicate-request",
    ),
    "tenant_storm": (
        "reliability/crash-consistency",
        "idempotency/duplicate-request",
        "isolation/tenant-interference",
        "capacity/admission-overload",
    ),
}

_CHURN_CLASSES = {
    "updates": "capacity/misconfiguration",
    "deletes": "availability/missing-resource",
    "creates": "provisioning/unmanaged-resource",
    "security": "security/misconfiguration",
}


def _validate_phase(index: int, phase: Any) -> Dict[str, Any]:
    where = f"ScenarioSpec.phases[{index}]"
    if not isinstance(phase, Mapping):
        raise SpecValidationError(
            f"{where} must be a mapping, got {type(phase).__name__}"
        )
    op = phase.get("op")
    if op not in PHASE_OPS:
        raise SpecValidationError(
            f"{where}.op must be one of {', '.join(sorted(PHASE_OPS))}; "
            f"got {op!r}"
        )
    allowed = PHASE_OPS[op]
    out: Dict[str, Any] = {"op": op}
    for key, value in phase.items():
        if key == "op":
            continue
        if key not in allowed:
            raise SpecValidationError(
                f"{where}.{key} is not a parameter of op {op!r} "
                f"(allowed: {', '.join(sorted(allowed)) or 'none'})"
            )
        if isinstance(value, bool) or not isinstance(value, allowed[key]):
            raise SpecValidationError(
                f"{where}.{key} must be "
                f"{' or '.join(t.__name__ for t in allowed[key])}, "
                f"got {value!r}"
            )
        out[key] = value
    return out


# -- scenario / campaign ------------------------------------------------------


@dataclasses.dataclass(eq=False)
class ScenarioSpec:
    """One named chaos experiment: workload x injections x phases."""

    name: str
    description: str = ""
    workload: str = "web_tier"
    workload_args: Dict[str, Any] = dataclasses.field(default_factory=dict)
    injections: List[Injection] = dataclasses.field(default_factory=list)
    phases: List[Dict[str, Any]] = dataclasses.field(
        default_factory=lambda: [{"op": "apply"}]
    )
    trials: int = 1
    #: defect classes beyond what injections/phases imply
    extra_classes: List[str] = dataclasses.field(default_factory=list)
    #: require byte-identical ``content_hash`` vs the uninterrupted arm
    #: (identity-keyed minting makes this hold unless an injection
    #: legitimately perturbs attribute values)
    strict_hash: bool = True
    #: give the deploy executors a patient retry schedule (needed for
    #: high blanket fault rates)
    patient_retry: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecValidationError("ScenarioSpec.name is required")
        if self.workload not in WORKLOADS:
            raise SpecValidationError(
                f"ScenarioSpec.workload must be one of "
                f"{', '.join(sorted(WORKLOADS))}; got {self.workload!r}"
            )
        if self.trials < 1:
            raise SpecValidationError(
                f"ScenarioSpec.trials must be >= 1, got {self.trials}"
            )
        self.phases = [
            _validate_phase(i, p) for i, p in enumerate(self.phases)
        ]
        unknown = validate_classes(self.extra_classes)
        if unknown:
            raise SpecValidationError(
                f"ScenarioSpec.extra_classes contains unknown defect "
                f"class(es): {', '.join(unknown)}"
            )

    def sources(self, overrides: Optional[Dict[str, Any]] = None) -> str:
        """The workload's config text (phase overrides win)."""
        kwargs = dict(self.workload_args)
        kwargs.update(overrides or {})
        return WORKLOADS[self.workload](**kwargs)

    def defect_classes(self) -> List[str]:
        out = set(self.extra_classes)
        for injection in self.injections:
            out.update(injection.defect_classes())
        for phase in self.phases:
            out.update(_PHASE_CLASSES.get(phase["op"], ()))
            if phase["op"] == "churn":
                for key, klass in _CHURN_CLASSES.items():
                    if phase.get(key, 0) > 0:
                        out.add(klass)
        return sorted(out)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "workload": self.workload,
            "workload_args": dict(self.workload_args),
            "injections": [i.to_dict() for i in self.injections],
            "phases": [dict(p) for p in self.phases],
            "trials": self.trials,
            "extra_classes": list(self.extra_classes),
            "strict_hash": self.strict_hash,
            "patient_retry": self.patient_retry,
        }

    _FIELDS = {
        "name": (str,),
        "description": (str,),
        "workload": (str,),
        "workload_args": (dict,),
        "injections": (list,),
        "phases": (list,),
        "trials": (int,),
        "extra_classes": (list,),
        "strict_hash": (bool,),
        "patient_retry": (bool,),
    }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        kwargs = _check_fields("ScenarioSpec", data, cls._FIELDS)
        if "name" not in kwargs:
            raise SpecValidationError("ScenarioSpec.name is required")
        kwargs["injections"] = [
            injection_from_dict(i) for i in kwargs.get("injections") or []
        ]
        kwargs.setdefault("phases", [{"op": "apply"}])
        return cls(**kwargs)

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, ScenarioSpec)
            and other.to_dict() == self.to_dict()
        )


@dataclasses.dataclass(eq=False)
class CampaignSpec:
    """A named matrix of scenarios; the unit the runner executes.

    ``trials`` (when set) overrides every scenario's trial count -- the
    smoke-tier dial. The campaign ``name`` seeds every trial RNG (see
    :mod:`repro.chaos.seeds`), so two campaign files with different
    names explore different randomness over the same scenarios.
    """

    name: str
    scenarios: List[ScenarioSpec]
    description: str = ""
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecValidationError("CampaignSpec.name is required")
        if not self.scenarios:
            raise SpecValidationError(
                "CampaignSpec.scenarios must be non-empty"
            )
        seen = set()
        for scenario in self.scenarios:
            if scenario.name in seen:
                raise SpecValidationError(
                    f"CampaignSpec.scenarios: duplicate scenario name "
                    f"{scenario.name!r}"
                )
            seen.add(scenario.name)
        if self.trials is not None:
            if self.trials < 1:
                raise SpecValidationError(
                    f"CampaignSpec.trials must be >= 1, got {self.trials}"
                )
            self.scenarios = [
                dataclasses.replace(s, trials=self.trials)
                if s.trials != self.trials
                else s
                for s in self.scenarios
            ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    _FIELDS = {
        "name": (str,),
        "description": (str,),
        "scenarios": (list,),
        "trials": (int,),
    }

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Any],
        library: Optional[Mapping[str, ScenarioSpec]] = None,
    ) -> "CampaignSpec":
        """Build a campaign; string entries in ``scenarios`` name
        library scenarios (see :mod:`repro.chaos.library`)."""
        kwargs = _check_fields("CampaignSpec", data, cls._FIELDS)
        if "name" not in kwargs:
            raise SpecValidationError("CampaignSpec.name is required")
        resolved: List[ScenarioSpec] = []
        for i, entry in enumerate(kwargs.get("scenarios") or []):
            if isinstance(entry, str):
                if library is None or entry not in library:
                    known = ", ".join(sorted(library)) if library else "none"
                    raise SpecValidationError(
                        f"CampaignSpec.scenarios[{i}]: unknown library "
                        f"scenario {entry!r} (known: {known})"
                    )
                resolved.append(library[entry])
            else:
                resolved.append(ScenarioSpec.from_dict(entry))
        kwargs["scenarios"] = resolved
        return cls(**kwargs)

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, CampaignSpec)
            and other.to_dict() == self.to_dict()
        )
