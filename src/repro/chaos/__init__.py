"""Chaos campaign DSL, scenario library, and campaign runner.

The package turns the repo's ad-hoc chaos sweeps into a declarative
system: scenarios are data (:class:`ScenarioSpec`), campaigns compose
them (:class:`CampaignSpec`), the runner executes seeded trial matrices
against twin engines (:class:`CampaignRunner`), and every trial is
checked against the convergence invariants in
:mod:`repro.chaos.invariants`. The curated scenario catalog lives in
:mod:`repro.chaos.library`; defect-taxonomy classes in
:mod:`repro.chaos.taxonomy`.
"""

from .dsl import (
    AsymmetricPartition,
    CampaignSpec,
    ClockSkew,
    CorrelatedOutage,
    FaultInjection,
    Injection,
    OutageInjection,
    QuotaStorm,
    RateLimitStorm,
    ScenarioSpec,
    SpecValidationError,
    TransientRate,
    VersionSkew,
    WORKLOADS,
    injection_from_dict,
)
from .invariants import (
    assert_converged_like,
    canonical_state,
    convergence_violations,
    live_prefix_counts,
    stranded_ids,
)
from .library import library, scenario
from .runner import (
    CampaignReport,
    CampaignRunner,
    PhaseRecord,
    ScenarioResult,
    TrialResult,
)
from .seeds import derive_seed, derive_seeds, trial_count
from .taxonomy import DEFECT_CLASSES, validate_classes

__all__ = [
    "AsymmetricPartition",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "ClockSkew",
    "CorrelatedOutage",
    "DEFECT_CLASSES",
    "FaultInjection",
    "Injection",
    "OutageInjection",
    "PhaseRecord",
    "QuotaStorm",
    "RateLimitStorm",
    "ScenarioResult",
    "ScenarioSpec",
    "SpecValidationError",
    "TransientRate",
    "TrialResult",
    "VersionSkew",
    "WORKLOADS",
    "assert_converged_like",
    "canonical_state",
    "convergence_violations",
    "derive_seed",
    "derive_seeds",
    "injection_from_dict",
    "library",
    "live_prefix_counts",
    "scenario",
    "stranded_ids",
    "trial_count",
    "validate_classes",
]
