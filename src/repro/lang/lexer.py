"""Lexer for the CLC configuration language.

The token stream feeds :mod:`repro.lang.parser`. Quoted strings that
contain ``${...}`` interpolations are emitted as ``TEMPLATE`` tokens
whose value is a list of ``("lit", text)`` / ``("expr", source, span)``
parts; the parser re-lexes the expression sources recursively.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from .diagnostics import CLCSyntaxError, SourceSpan
from .tokens import KEYWORD_LITERALS, OPERATORS, Token, TokenType

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

#: operator literals bucketed by length, longest first, so matching is a
#: constant number of short-slice dict probes instead of a linear scan
#: over ``OPERATORS`` against an O(remaining-source) slice per token.
_OPS_BY_LEN: List[Tuple[int, Dict[str, TokenType]]] = []
for _lit, _ttype in OPERATORS:
    for _n, _bucket in _OPS_BY_LEN:
        if _n == len(_lit):
            _bucket[_lit] = _ttype
            break
    else:
        _OPS_BY_LEN.append((len(_lit), {_lit: _ttype}))
_OPS_BY_LEN.sort(key=lambda pair: -pair[0])

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_SPACE_RE = re.compile(r"[ \t\r]+")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "b": "\b",
    '"': '"',
    "\\": "\\",
    "$": "$",
}


class Lexer:
    """Single-pass lexer over one configuration source string."""

    def __init__(
        self, source: str, filename: str = "<config>", start_line: int = 1
    ):
        self.source = source
        self.filename = filename
        self.pos = 0
        # start_line anchors spans when lexing one chunk of a larger
        # file (streaming parse): tokens report file-absolute lines
        self.line = start_line
        self.col = 1
        self._paren_depth = 0  # suppress NEWLINE inside () and []

    # -- low-level cursor helpers -------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _here(self) -> Tuple[int, int]:
        return self.line, self.col

    def _span_from(self, start: Tuple[int, int]) -> SourceSpan:
        return SourceSpan(self.filename, start[0], start[1], self.line, self.col)

    def _error(self, message: str) -> CLCSyntaxError:
        span = SourceSpan(self.filename, self.line, self.col, self.line, self.col)
        return CLCSyntaxError(message, span)

    # -- public API ----------------------------------------------------

    def tokens(self) -> List[Token]:
        """Lex the whole source into a token list ending with EOF."""
        out: List[Token] = []
        while True:
            tok = self._next_token()
            if tok is None:
                continue
            # collapse runs of newlines
            if (
                tok.type is TokenType.NEWLINE
                and out
                and out[-1].type is TokenType.NEWLINE
            ):
                continue
            out.append(tok)
            if tok.type is TokenType.EOF:
                return out

    # -- scanning ------------------------------------------------------

    def _next_token(self) -> Optional[Token]:
        self._skip_inline_space_and_comments()
        start = self._here()
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, None, self._span_from(start))
        ch = self._peek()
        if ch == "\n":
            self._advance()
            if self._paren_depth > 0:
                return None
            return Token(TokenType.NEWLINE, "\n", self._span_from(start))
        if ch in _IDENT_START:
            return self._lex_ident(start)
        if ch in _DIGITS:
            return self._lex_number(start)
        if ch == '"':
            return self._lex_string(start)
        if ch == "<" and self._peek(1) == "<":
            return self._lex_heredoc(start)
        return self._lex_operator(start)

    def _skip_inline_space_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in (" ", "\t", "\r"):
                # bulk-skip the whole run (no newlines in the class, so
                # column tracking is a single addition)
                match = _SPACE_RE.match(self.source, self.pos)
                length = match.end() - match.start()
                self.pos += length
                self.col += length
            elif ch == "#" or (ch == "/" and self._peek(1) == "/"):
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _lex_ident(self, start: Tuple[int, int]) -> Token:
        match = _IDENT_RE.match(self.source, self.pos)
        text = match.group()
        # identifiers never contain newlines: advance in one step
        self.pos = match.end()
        self.col += len(text)
        span = self._span_from(start)
        if text in KEYWORD_LITERALS:
            # true/false/null lex as IDENT; the parser resolves keyword
            # literals so that block labels like `null_resource` still work.
            return Token(TokenType.IDENT, text, span)
        return Token(TokenType.IDENT, text, span)

    def _lex_number(self, start: Tuple[int, int]) -> Token:
        chars = []
        is_float = False
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in _DIGITS:
                chars.append(self._advance())
            elif ch == "." and self._peek(1) in _DIGITS and not is_float:
                is_float = True
                chars.append(self._advance())
            elif ch in ("e", "E") and (
                self._peek(1) in _DIGITS
                or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
            ):
                is_float = True
                chars.append(self._advance())
                if self._peek() in "+-":
                    chars.append(self._advance())
            else:
                break
        text = "".join(chars)
        value: Any = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, value, self._span_from(start))

    def _lex_string(self, start: Tuple[int, int]) -> Token:
        self._advance()  # opening quote
        parts: List[Tuple] = []
        lit: List[str] = []

        def flush_lit() -> None:
            if lit:
                parts.append(("lit", "".join(lit)))
                lit.clear()

        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "\n":
                raise self._error("newline in string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                if esc in _ESCAPES:
                    self._advance()
                    lit.append(_ESCAPES[esc])
                elif esc == "u":
                    self._advance()
                    digits = "".join(self._advance() for _ in range(4))
                    try:
                        lit.append(chr(int(digits, 16)))
                    except ValueError:
                        raise self._error(f"invalid unicode escape \\u{digits}")
                else:
                    raise self._error(f"invalid escape sequence \\{esc}")
                continue
            if ch == "$" and self._peek(1) == "{":
                if self._peek(2) == "":
                    raise self._error("unterminated interpolation")
                flush_lit()
                parts.append(self._lex_interpolation())
                continue
            if ch == "$" and self._peek(1) == "$" and self._peek(2) == "{":
                # $${ is an escaped literal ${
                self._advance()
                self._advance()
                lit.append("$")
                continue
            lit.append(self._advance())
        flush_lit()
        span = self._span_from(start)
        if len(parts) == 1 and parts[0][0] == "lit":
            return Token(TokenType.STRING, parts[0][1], span)
        if not parts:
            return Token(TokenType.STRING, "", span)
        if all(p[0] == "lit" for p in parts):
            return Token(TokenType.STRING, "".join(p[1] for p in parts), span)
        return Token(TokenType.TEMPLATE, parts, span)

    def _lex_interpolation(self) -> Tuple[str, str, SourceSpan]:
        """Consume ``${ ... }`` and return ("expr", source, span)."""
        self._advance()  # $
        self._advance()  # {
        expr_start = self._here()
        depth = 1
        chars: List[str] = []
        in_str = False
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated interpolation")
            ch = self._peek()
            if in_str:
                if ch == "\\":
                    chars.append(self._advance())
                    if self.pos < len(self.source):
                        chars.append(self._advance())
                    continue
                if ch == '"':
                    in_str = False
            elif ch == '"':
                in_str = True
            elif ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    span = self._span_from(expr_start)
                    self._advance()  # closing }
                    return ("expr", "".join(chars), span)
            chars.append(self._advance())

    def _lex_heredoc(self, start: Tuple[int, int]) -> Token:
        self._advance()
        self._advance()  # <<
        strip_indent = False
        if self._peek() == "-":
            strip_indent = True
            self._advance()
        marker_chars = []
        while self.pos < len(self.source) and self._peek() in _IDENT_CONT:
            marker_chars.append(self._advance())
        marker = "".join(marker_chars)
        if not marker:
            raise self._error("heredoc requires a delimiter word")
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()
        if self.pos < len(self.source):
            self._advance()  # consume newline after marker
        lines: List[str] = []
        current: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error(f"unterminated heredoc (expected {marker})")
            if self._peek() == "\n":
                line = "".join(current)
                if line.strip() == marker:
                    # leave the newline unconsumed: it ends the heredoc
                    # *item*, so the main loop emits a NEWLINE token and
                    # an attribute may follow on the next line
                    break
                self._advance()
                lines.append(line)
                current = []
            else:
                current.append(self._advance())
        if strip_indent and lines:
            pad = min(
                (len(ln) - len(ln.lstrip()) for ln in lines if ln.strip()),
                default=0,
            )
            lines = [ln[pad:] if len(ln) >= pad else ln for ln in lines]
        text = "\n".join(lines)
        if lines:
            text += "\n"
        return Token(TokenType.STRING, text, self._span_from(start))

    def _lex_operator(self, start: Tuple[int, int]) -> Token:
        # Longest-match via per-length dict probes. The historical
        # implementation sliced the *entire remaining source* per token
        # (O(source) each, quadratic over a file); these slices are at
        # most three characters.
        pos = self.pos
        for length, bucket in _OPS_BY_LEN:
            literal = self.source[pos : pos + length]
            ttype = bucket.get(literal)
            if ttype is None:
                continue
            # operators never contain newlines: advance in one step
            self.pos += length
            self.col += length
            if ttype in (TokenType.LPAREN, TokenType.LBRACKET):
                self._paren_depth += 1
            elif ttype in (TokenType.RPAREN, TokenType.RBRACKET):
                self._paren_depth = max(0, self._paren_depth - 1)
            return Token(ttype, literal, self._span_from(start))
        raise self._error(f"unexpected character {self._peek()!r}")


def tokenize(source: str, filename: str = "<config>") -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokens()
