"""Declaration-level source chunker for streaming parses.

Splits one CLC source string into top-level *chunks* -- runs of lines
that together hold one (or more, for single-line files) complete
top-level items -- without lexing it. The scanner only tracks the
lexical state needed to know whether a newline is a real top-level
boundary: strings (with escapes and ``${...}`` interpolations),
heredocs, comments, and brace/bracket/paren depth. That makes it an
order of magnitude cheaper than the full lexer, which matters because
the chunker runs on *every* parse, warm or cold.

Each chunk carries a content fingerprint (sha256 of its exact text).
:meth:`repro.lang.Configuration.parse_streaming` uses the fingerprints
to skip re-lexing unchanged chunks against a previous parse, and the
compiled-artifact cache uses them to decide whether a cached graph is
still valid per declaration. Leading blank lines and comment-only lines
attach to the chunk that follows them, so a doc comment travels with
its block and editing it invalidates only that block.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterator, List


@dataclasses.dataclass(frozen=True)
class SourceChunk:
    """One top-level run of source text, with provenance."""

    text: str
    start_line: int  # 1-based line of the chunk's first character
    fingerprint: str  # sha256 hex of ``text``


def fingerprint_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def iter_chunks(source: str) -> Iterator[SourceChunk]:
    """Yield the top-level chunks of ``source`` in order.

    Concatenating every chunk's ``text`` reproduces ``source`` exactly
    (the chunker never drops or rewrites bytes); a chunk boundary is a
    newline at top-level depth after the chunk has seen non-comment
    content. Malformed input (unterminated strings or blocks) never
    raises here -- the tail simply lands in the final chunk and the
    parser reports the real diagnostic.
    """
    n = len(source)
    i = 0
    line = 1
    chunk_start = 0
    chunk_line = 1
    depth = 0
    has_content = False

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            if depth == 0 and has_content:
                text = source[chunk_start:i]
                yield SourceChunk(text, chunk_line, fingerprint_text(text))
                chunk_start = i
                chunk_line = line
                has_content = False
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#" or (ch == "/" and i + 1 < n and source[i + 1] == "/"):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            i += 2
            while i < n and not (
                source[i] == "*" and i + 1 < n and source[i + 1] == "/"
            ):
                if source[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            continue
        has_content = True
        if ch == '"':
            i, line = _skip_string(source, i, line)
            continue
        if ch == "<" and i + 1 < n and source[i + 1] == "<":
            i, line = _skip_heredoc(source, i, line)
            continue
        if ch in "{[(":
            depth += 1
        elif ch in "}])":
            depth = max(0, depth - 1)
        i += 1

    if chunk_start < n:
        # emit the tail even when it is blank/comment-only: the
        # roundtrip guarantee (concat of chunks == source) is what lets
        # callers hash chunks in place of the file
        text = source[chunk_start:]
        yield SourceChunk(text, chunk_line, fingerprint_text(text))


def chunk_fingerprints(source: str) -> List[str]:
    """The ordered chunk fingerprints of ``source`` (cache-key helper)."""
    return [chunk.fingerprint for chunk in iter_chunks(source)]


def _skip_string(source: str, i: int, line: int) -> tuple:
    """Advance past a quoted string starting at ``source[i] == '"'``.

    Mirrors the lexer's rules: backslash escapes (including ``\\$``),
    ``$${`` literal escapes, and ``${...}`` interpolations that may
    nest braces and contain strings of their own. Stops at the closing
    quote or an (unescaped) newline -- the lexer rejects bare newlines
    in strings, so treating one as the string's end keeps chunk
    boundaries sane on malformed input.
    """
    n = len(source)
    i += 1
    while i < n:
        ch = source[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "\n":
            return i, line  # unterminated; let the parser complain
        if ch == "$" and i + 1 < n:
            if source[i + 1] == "$":  # $${ literal escape
                i += 2
                continue
            if source[i + 1] == "{":
                i, line = _skip_interpolation(source, i + 2, line)
                continue
        if ch == '"':
            return i + 1, line
        i += 1
    return i, line


def _skip_interpolation(source: str, i: int, line: int) -> tuple:
    """Advance past a ``${...}`` body (``i`` just after the ``{``)."""
    n = len(source)
    braces = 1
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch == '"':
            i, line = _skip_string(source, i, line)
            continue
        if ch == "{":
            braces += 1
        elif ch == "}":
            braces -= 1
            if braces == 0:
                return i + 1, line
        i += 1
    return i, line


def _skip_heredoc(source: str, i: int, line: int) -> tuple:
    """Advance past a heredoc starting at ``source[i:i+2] == '<<'``."""
    n = len(source)
    j = i + 2
    if j < n and source[j] == "-":
        j += 1
    start = j
    while j < n and (source[j].isalnum() or source[j] == "_"):
        j += 1
    marker = source[start:j]
    if not marker:
        return i + 1, line  # a lone '<' operator, not a heredoc
    # skip to end of the opener line, then line-by-line to the marker
    while j < n and source[j] != "\n":
        j += 1
    while j < n:
        j += 1  # consume the newline
        line += 1
        line_start = j
        while j < n and source[j] != "\n":
            j += 1
        if source[line_start:j].strip() == marker:
            return j, line
    return j, line
