"""Runtime value model for CLC expressions.

CLC values map onto plain Python objects (``str``, ``int``, ``float``,
``bool``, ``None``, ``list``, ``dict``) plus one extra citizen:
:class:`Unknown`, the "value not known until apply" marker that lets the
planner reason about configurations whose attributes depend on
yet-to-be-created cloud resources (e.g. ``aws_network_interface.n1.id``
in Figure 2 of the paper).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional


class Unknown:
    """Placeholder for a value computed only at apply time.

    Unknowns carry an optional ``origin`` (the resource address whose
    creation will produce the value) so impact analysis can trace which
    pending resource a value depends on.
    """

    __slots__ = ("origin",)

    def __init__(self, origin: str = ""):
        self.origin = origin

    def __repr__(self) -> str:
        return f"Unknown({self.origin!r})" if self.origin else "Unknown()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Unknown) and other.origin == self.origin

    def __hash__(self) -> int:
        return hash(("Unknown", self.origin))


UNKNOWN = Unknown()


def is_unknown(value: Any) -> bool:
    """True if ``value`` is or *contains* an unknown."""
    if isinstance(value, Unknown):
        return True
    if isinstance(value, list):
        return any(is_unknown(v) for v in value)
    if isinstance(value, dict):
        return any(is_unknown(v) for v in value.values())
    return False


def collect_unknown_origins(value: Any) -> set:
    """Every ``Unknown.origin`` reachable inside ``value``."""
    found: set = set()
    if isinstance(value, Unknown):
        if value.origin:
            found.add(value.origin)
    elif isinstance(value, list):
        for item in value:
            found |= collect_unknown_origins(item)
    elif isinstance(value, dict):
        for item in value.values():
            found |= collect_unknown_origins(item)
    return found


def type_name(value: Any) -> str:
    """CLC-level type name of a runtime value."""
    if isinstance(value, Unknown):
        return "unknown"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "list"
    from collections.abc import Mapping

    if isinstance(value, Mapping):
        return "map"
    return type(value).__name__


def truthy(value: Any) -> bool:
    """CLC truthiness: only booleans may be used as conditions."""
    if isinstance(value, bool):
        return value
    raise TypeError(f"condition must be bool, got {type_name(value)}")


def to_string(value: Any) -> str:
    """Convert a value for string interpolation."""
    if isinstance(value, Unknown):
        return "(known after apply)"
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def deep_copy_value(value: Any) -> Any:
    """Structural copy; Unknowns are shared (they are immutable)."""
    if isinstance(value, list):
        return [deep_copy_value(v) for v in value]
    if isinstance(value, dict):
        return {k: deep_copy_value(v) for k, v in value.items()}
    return value


def values_equal(a: Any, b: Any) -> bool:
    """Deep structural equality with number coercion (1 == 1.0)."""
    if isinstance(a, Unknown) or isinstance(b, Unknown):
        return a == b
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(values_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(values_equal(a[k], b[k]) for k in a)
    return a == b


def coerce_to_type(value: Any, want: str, *, path: str = "value") -> Any:
    """Coerce ``value`` to the named CLC type constraint.

    ``want`` is one of ``string | number | bool | list | map | any``
    (optionally ``list(string)`` etc. -- the element type is checked
    shallowly). Raises ``TypeError`` on an impossible coercion.
    """
    if isinstance(value, Unknown) or want == "any" or not want:
        return value
    base, elem = want, None
    if "(" in want and want.endswith(")"):
        base, elem = want[: want.index("(")], want[want.index("(") + 1 : -1]
    if base == "string":
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return to_string(value)
        raise TypeError(f"{path}: cannot convert {type_name(value)} to string")
    if base == "number":
        if isinstance(value, bool):
            raise TypeError(f"{path}: cannot convert bool to number")
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                try:
                    return float(value)
                except ValueError:
                    raise TypeError(f"{path}: cannot convert {value!r} to number")
        raise TypeError(f"{path}: cannot convert {type_name(value)} to number")
    if base == "bool":
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value in ("true", "false"):
            return value == "true"
        raise TypeError(f"{path}: cannot convert {type_name(value)} to bool")
    if base in ("list", "set", "tuple"):
        if not isinstance(value, list):
            raise TypeError(f"{path}: cannot convert {type_name(value)} to list")
        if elem:
            return [
                coerce_to_type(v, elem, path=f"{path}[{i}]")
                for i, v in enumerate(value)
            ]
        return value
    if base in ("map", "object"):
        if not isinstance(value, dict):
            raise TypeError(f"{path}: cannot convert {type_name(value)} to map")
        if elem:
            return {
                k: coerce_to_type(v, elem, path=f"{path}.{k}")
                for k, v in value.items()
            }
        return value
    raise TypeError(f"{path}: unknown type constraint {want!r}")
