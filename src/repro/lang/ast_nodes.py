"""AST node definitions for CLC.

Two families: *expression* nodes (everything to the right of an ``=``)
and *structural* nodes (attributes, blocks, files). All nodes carry a
:class:`~repro.lang.diagnostics.SourceSpan` for error correlation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple, Union

from .diagnostics import SourceSpan


class Expr:
    """Base class for expression nodes."""

    span: SourceSpan


@dataclasses.dataclass
class Literal(Expr):
    """A constant: string, number, bool, or null."""

    value: Any
    span: SourceSpan


@dataclasses.dataclass
class TemplateExpr(Expr):
    """A string with interpolations, e.g. ``"vm-${var.env}"``."""

    parts: List[Expr]  # Literal(str) or arbitrary expressions
    span: SourceSpan


@dataclasses.dataclass
class ScopeRef(Expr):
    """A bare root identifier beginning a traversal, e.g. ``var``."""

    name: str
    span: SourceSpan


@dataclasses.dataclass
class AttrAccess(Expr):
    """``obj.name``"""

    obj: Expr
    name: str
    span: SourceSpan


@dataclasses.dataclass
class IndexAccess(Expr):
    """``obj[index]``"""

    obj: Expr
    index: Expr
    span: SourceSpan


@dataclasses.dataclass
class SplatExpr(Expr):
    """``obj[*].attr1.attr2`` -- project an attribute across a list."""

    obj: Expr
    attrs: List[str]
    span: SourceSpan


@dataclasses.dataclass
class FunctionCall(Expr):
    """``name(arg, ...)``; ``expand_final`` marks a trailing ``...``."""

    name: str
    args: List[Expr]
    expand_final: bool
    span: SourceSpan


@dataclasses.dataclass
class UnaryOp(Expr):
    """``!x`` or ``-x``"""

    op: str
    operand: Expr
    span: SourceSpan


@dataclasses.dataclass
class BinaryOp(Expr):
    """``left <op> right`` for arithmetic/comparison/logic."""

    op: str
    left: Expr
    right: Expr
    span: SourceSpan


@dataclasses.dataclass
class Conditional(Expr):
    """``cond ? then : otherwise``"""

    cond: Expr
    then: Expr
    otherwise: Expr
    span: SourceSpan


@dataclasses.dataclass
class ListExpr(Expr):
    """``[a, b, c]``"""

    items: List[Expr]
    span: SourceSpan


@dataclasses.dataclass
class ObjectExpr(Expr):
    """``{ k = v, ... }`` -- keys are expressions (idents lex as strings)."""

    entries: List[Tuple[Expr, Expr]]
    span: SourceSpan


@dataclasses.dataclass
class ForExpr(Expr):
    """List/map comprehension.

    ``[for k, v in coll : result if cond]`` (is_object=False) or
    ``{for k, v in coll : key => value if cond}`` (is_object=True).
    """

    key_var: Optional[str]
    value_var: str
    collection: Expr
    result_key: Optional[Expr]  # object form only
    result_value: Expr
    condition: Optional[Expr]
    grouping: bool  # `...` after value in object form
    is_object: bool
    span: SourceSpan


# -- structural nodes --------------------------------------------------


@dataclasses.dataclass
class Attribute:
    """``name = expr`` inside a block body."""

    name: str
    expr: Expr
    span: SourceSpan


@dataclasses.dataclass
class Block:
    """``type "label1" "label2" { body }``"""

    type: str
    labels: List[str]
    body: "Body"
    span: SourceSpan

    def label(self, i: int) -> Optional[str]:
        return self.labels[i] if i < len(self.labels) else None


@dataclasses.dataclass
class Body:
    """The contents of a block or file: attributes plus nested blocks."""

    attributes: Dict[str, Attribute] = dataclasses.field(default_factory=dict)
    blocks: List[Block] = dataclasses.field(default_factory=list)

    def blocks_of_type(self, btype: str) -> List[Block]:
        return [b for b in self.blocks if b.type == btype]

    def attr_expr(self, name: str) -> Optional[Expr]:
        attr = self.attributes.get(name)
        return attr.expr if attr else None


@dataclasses.dataclass
class ConfigFile:
    """One parsed CLC source file."""

    body: Body
    filename: str


Node = Union[Expr, Attribute, Block, Body, ConfigFile]


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth first."""
    yield expr
    if isinstance(expr, TemplateExpr):
        for part in expr.parts:
            yield from walk_expr(part)
    elif isinstance(expr, AttrAccess):
        yield from walk_expr(expr.obj)
    elif isinstance(expr, IndexAccess):
        yield from walk_expr(expr.obj)
        yield from walk_expr(expr.index)
    elif isinstance(expr, SplatExpr):
        yield from walk_expr(expr.obj)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Conditional):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.otherwise)
    elif isinstance(expr, ListExpr):
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, ObjectExpr):
        for key, value in expr.entries:
            yield from walk_expr(key)
            yield from walk_expr(value)
    elif isinstance(expr, ForExpr):
        yield from walk_expr(expr.collection)
        if expr.result_key is not None:
            yield from walk_expr(expr.result_key)
        yield from walk_expr(expr.result_value)
        if expr.condition is not None:
            yield from walk_expr(expr.condition)
