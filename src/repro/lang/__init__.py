"""CLC: the Cloudless Configuration Language.

A from-scratch declarative IaC language with HCL2 semantics -- the
substrate for every lifecycle stage in the cloudless framework (paper
section 2.1, Figure 2).

Typical use::

    from repro.lang import Configuration, ModuleContext

    cfg = Configuration.parse('''
    variable "name" { default = "web" }
    resource "aws_vm" "box" { name = var.name }
    ''')
    ctx = ModuleContext(cfg)
"""

from .ast_nodes import (
    AttrAccess,
    Attribute,
    BinaryOp,
    Block,
    Body,
    Conditional,
    ConfigFile,
    Expr,
    ForExpr,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ScopeRef,
    SplatExpr,
    TemplateExpr,
    UnaryOp,
    walk_expr,
)
from .chunker import SourceChunk, chunk_fingerprints, iter_chunks
from .config import (
    Configuration,
    LifecycleOptions,
    ModuleCall,
    OutputDecl,
    ProviderConfig,
    ResourceDecl,
    VariableDecl,
    VariableValidation,
)
from .context import ModuleContext, ResourceResolver, StaticResolver
from .diagnostics import (
    CLCError,
    CLCEvalError,
    CLCSyntaxError,
    Diagnostic,
    DiagnosticSink,
    Severity,
    SourceSpan,
)
from .evaluator import Evaluator, Scope, evaluate
from .functions import FUNCTIONS, call_function
from .lexer import Lexer, tokenize
from .module_loader import (
    DictModuleLoader,
    FileSystemModuleLoader,
    ModuleLoader,
    NullModuleLoader,
)
from .parser import Parser, parse_expression_source, parse_file
from .references import Reference, body_references, extract_references
from .values import UNKNOWN, Unknown, is_unknown, to_string, type_name

__all__ = [
    "AttrAccess",
    "Attribute",
    "BinaryOp",
    "Block",
    "Body",
    "CLCError",
    "CLCEvalError",
    "CLCSyntaxError",
    "Conditional",
    "ConfigFile",
    "Configuration",
    "Diagnostic",
    "DiagnosticSink",
    "DictModuleLoader",
    "Evaluator",
    "Expr",
    "FileSystemModuleLoader",
    "ForExpr",
    "FUNCTIONS",
    "FunctionCall",
    "IndexAccess",
    "Lexer",
    "LifecycleOptions",
    "ListExpr",
    "Literal",
    "ModuleCall",
    "ModuleContext",
    "ModuleLoader",
    "NullModuleLoader",
    "ObjectExpr",
    "OutputDecl",
    "Parser",
    "ProviderConfig",
    "Reference",
    "ResourceDecl",
    "ResourceResolver",
    "Scope",
    "ScopeRef",
    "Severity",
    "SourceChunk",
    "SourceSpan",
    "SplatExpr",
    "StaticResolver",
    "TemplateExpr",
    "UNKNOWN",
    "UnaryOp",
    "Unknown",
    "VariableDecl",
    "VariableValidation",
    "body_references",
    "call_function",
    "chunk_fingerprints",
    "evaluate",
    "extract_references",
    "is_unknown",
    "iter_chunks",
    "parse_expression_source",
    "parse_file",
    "to_string",
    "tokenize",
    "type_name",
    "walk_expr",
]
