"""Recursive-descent parser for CLC.

Produces the AST defined in :mod:`repro.lang.ast_nodes`. The grammar is
modeled on HCL2: files contain attributes and blocks; expressions
support literals, templates, traversals, operators, conditionals,
function calls, list/object constructors, splats, and ``for``
comprehensions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    AttrAccess,
    Attribute,
    BinaryOp,
    Block,
    Body,
    Conditional,
    ConfigFile,
    Expr,
    ForExpr,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ScopeRef,
    SplatExpr,
    TemplateExpr,
    UnaryOp,
)
from .diagnostics import CLCSyntaxError, SourceSpan
from .lexer import Lexer
from .tokens import KEYWORD_LITERALS, Token, TokenType

# binary operator precedence, higher binds tighter
_BINARY_PRECEDENCE = {
    TokenType.OR: 1,
    TokenType.AND: 2,
    TokenType.EQ: 3,
    TokenType.NEQ: 3,
    TokenType.LT: 4,
    TokenType.GT: 4,
    TokenType.LTE: 4,
    TokenType.GTE: 4,
    TokenType.PLUS: 5,
    TokenType.MINUS: 5,
    TokenType.STAR: 6,
    TokenType.SLASH: 6,
    TokenType.PERCENT: 6,
}


class Parser:
    """Parses one token stream into a :class:`ConfigFile` or expression."""

    def __init__(self, tokens: List[Token], filename: str = "<config>"):
        self.tokens = tokens
        self.filename = filename
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def _check(self, ttype: TokenType) -> bool:
        return self._peek().type is ttype

    def _match(self, ttype: TokenType) -> Optional[Token]:
        if self._check(ttype):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, what: str = "") -> Token:
        tok = self._peek()
        if tok.type is not ttype:
            want = what or ttype.value
            raise CLCSyntaxError(
                f"expected {want}, found {tok.type.value} ({tok.value!r})", tok.span
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._check(TokenType.NEWLINE):
            self._advance()

    def _skip_separators(self) -> None:
        while self._check(TokenType.NEWLINE) or self._check(TokenType.COMMA):
            self._advance()

    # -- file / body -----------------------------------------------------

    def parse_file(self) -> ConfigFile:
        body = self._parse_body(top_level=True)
        self._expect(TokenType.EOF, "end of file")
        return ConfigFile(body=body, filename=self.filename)

    def _parse_body(self, top_level: bool = False) -> Body:
        body = Body()
        while True:
            self._skip_newlines()
            tok = self._peek()
            if tok.type is TokenType.EOF:
                if not top_level:
                    raise CLCSyntaxError("unexpected end of file in block", tok.span)
                return body
            if tok.type is TokenType.RBRACE:
                return body
            if tok.type is not TokenType.IDENT:
                raise CLCSyntaxError(
                    f"expected attribute or block, found {tok.value!r}", tok.span
                )
            self._parse_body_item(body)

    def _parse_body_item(self, body: Body) -> None:
        name_tok = self._advance()
        name = name_tok.value
        if self._match(TokenType.ASSIGN):
            expr = self.parse_expression()
            span = name_tok.span.merge(expr.span)
            if name in body.attributes:
                raise CLCSyntaxError(f"duplicate attribute {name!r}", name_tok.span)
            body.attributes[name] = Attribute(name=name, expr=expr, span=span)
            self._end_of_item()
            return
        # otherwise: block with zero or more labels
        labels: List[str] = []
        while True:
            tok = self._peek()
            if tok.type is TokenType.STRING:
                labels.append(self._advance().value)
            elif tok.type is TokenType.IDENT and not self._peek(1).type is (
                TokenType.ASSIGN
            ):
                # bare-word label (rare; HCL1 style)
                if self._peek(1).type in (
                    TokenType.LBRACE,
                    TokenType.STRING,
                    TokenType.IDENT,
                ):
                    labels.append(self._advance().value)
                else:
                    break
            else:
                break
        open_tok = self._expect(TokenType.LBRACE, "'{' to open block body")
        inner = self._parse_body(top_level=False)
        close_tok = self._expect(TokenType.RBRACE, "'}' to close block body")
        span = name_tok.span.merge(close_tok.span)
        body.blocks.append(Block(type=name, labels=labels, body=inner, span=span))
        self._end_of_item()

    def _end_of_item(self) -> None:
        tok = self._peek()
        if tok.type in (TokenType.NEWLINE, TokenType.EOF, TokenType.RBRACE):
            if tok.type is TokenType.NEWLINE:
                self._advance()
            return
        if tok.type is TokenType.COMMA:  # tolerated inside one-line bodies
            self._advance()
            return
        raise CLCSyntaxError(
            f"expected newline after item, found {tok.value!r}", tok.span
        )

    # -- expressions -------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(1)
        if self._match(TokenType.QUESTION):
            self._skip_newlines()
            then = self.parse_expression()
            self._skip_newlines()
            self._expect(TokenType.COLON, "':' in conditional")
            self._skip_newlines()
            otherwise = self.parse_expression()
            return Conditional(
                cond=cond,
                then=then,
                otherwise=otherwise,
                span=cond.span.merge(otherwise.span),
            )
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINARY_PRECEDENCE.get(tok.type)
            if prec is None or prec < min_prec:
                return left
            self._advance()
            self._skip_newlines()
            right = self._parse_binary(prec + 1)
            left = BinaryOp(
                op=tok.value, left=left, right=right, span=left.span.merge(right.span)
            )

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok.type in (TokenType.BANG, TokenType.MINUS):
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(
                op=tok.value, operand=operand, span=tok.span.merge(operand.span)
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenType.DOT):
                nxt = self._peek(1)
                if nxt.type is TokenType.IDENT:
                    self._advance()
                    name_tok = self._advance()
                    expr = AttrAccess(
                        obj=expr,
                        name=name_tok.value,
                        span=expr.span.merge(name_tok.span),
                    )
                    continue
                if nxt.type is TokenType.NUMBER and isinstance(nxt.value, int):
                    # legacy numeric traversal: list.0
                    self._advance()
                    num_tok = self._advance()
                    expr = IndexAccess(
                        obj=expr,
                        index=Literal(num_tok.value, num_tok.span),
                        span=expr.span.merge(num_tok.span),
                    )
                    continue
                if nxt.type is TokenType.STAR:
                    # attribute-only splat: list.*.id
                    self._advance()
                    self._advance()
                    expr = self._parse_splat_tail(expr)
                    continue
                raise CLCSyntaxError("expected attribute name after '.'", nxt.span)
            if self._check(TokenType.LBRACKET):
                if self._peek(1).type is TokenType.STAR and self._peek(2).type is (
                    TokenType.RBRACKET
                ):
                    self._advance()
                    self._advance()
                    self._advance()
                    expr = self._parse_splat_tail(expr)
                    continue
                open_tok = self._advance()
                index = self.parse_expression()
                close_tok = self._expect(TokenType.RBRACKET, "']' after index")
                expr = IndexAccess(
                    obj=expr, index=index, span=expr.span.merge(close_tok.span)
                )
                continue
            return expr

    def _parse_splat_tail(self, obj: Expr) -> Expr:
        attrs: List[str] = []
        end_span = obj.span
        while self._check(TokenType.DOT) and self._peek(1).type is TokenType.IDENT:
            self._advance()
            name_tok = self._advance()
            attrs.append(name_tok.value)
            end_span = name_tok.span
        return SplatExpr(obj=obj, attrs=attrs, span=obj.span.merge(end_span))

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.type is TokenType.NUMBER:
            self._advance()
            return Literal(tok.value, tok.span)
        if tok.type is TokenType.STRING:
            self._advance()
            return Literal(tok.value, tok.span)
        if tok.type is TokenType.TEMPLATE:
            self._advance()
            return self._build_template(tok)
        if tok.type is TokenType.IDENT:
            if tok.value in KEYWORD_LITERALS:
                self._advance()
                return Literal(KEYWORD_LITERALS[tok.value], tok.span)
            if self._peek(1).type is TokenType.LPAREN:
                return self._parse_function_call()
            self._advance()
            return ScopeRef(name=tok.value, span=tok.span)
        if tok.type is TokenType.LPAREN:
            self._advance()
            self._skip_newlines()
            inner = self.parse_expression()
            self._skip_newlines()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if tok.type is TokenType.LBRACKET:
            return self._parse_list_or_for()
        if tok.type is TokenType.LBRACE:
            return self._parse_object_or_for()
        raise CLCSyntaxError(
            f"expected expression, found {tok.type.value} ({tok.value!r})", tok.span
        )

    def _parse_function_call(self) -> Expr:
        name_tok = self._advance()
        self._expect(TokenType.LPAREN)
        args: List[Expr] = []
        expand_final = False
        self._skip_newlines()
        while not self._check(TokenType.RPAREN):
            args.append(self.parse_expression())
            if self._match(TokenType.ELLIPSIS):
                expand_final = True
                self._skip_newlines()
                break
            self._skip_separators()
        close_tok = self._expect(TokenType.RPAREN, "')' after arguments")
        return FunctionCall(
            name=name_tok.value,
            args=args,
            expand_final=expand_final,
            span=name_tok.span.merge(close_tok.span),
        )

    def _parse_list_or_for(self) -> Expr:
        open_tok = self._expect(TokenType.LBRACKET)
        self._skip_newlines()
        if self._check(TokenType.IDENT) and self._peek().value == "for":
            return self._parse_for(open_tok, is_object=False)
        items: List[Expr] = []
        while not self._check(TokenType.RBRACKET):
            items.append(self.parse_expression())
            self._skip_separators()
        close_tok = self._expect(TokenType.RBRACKET, "']'")
        return ListExpr(items=items, span=open_tok.span.merge(close_tok.span))

    def _parse_object_or_for(self) -> Expr:
        open_tok = self._expect(TokenType.LBRACE)
        self._skip_newlines()
        if self._check(TokenType.IDENT) and self._peek().value == "for":
            return self._parse_for(open_tok, is_object=True)
        entries: List[Tuple[Expr, Expr]] = []
        while not self._check(TokenType.RBRACE):
            key = self._parse_object_key()
            if not (self._match(TokenType.ASSIGN) or self._match(TokenType.COLON)):
                tok = self._peek()
                raise CLCSyntaxError(
                    f"expected '=' or ':' after object key, found {tok.value!r}",
                    tok.span,
                )
            self._skip_newlines()
            value = self.parse_expression()
            entries.append((key, value))
            self._skip_separators()
        close_tok = self._expect(TokenType.RBRACE, "'}'")
        return ObjectExpr(entries=entries, span=open_tok.span.merge(close_tok.span))

    def _parse_object_key(self) -> Expr:
        tok = self._peek()
        if tok.type is TokenType.IDENT and self._peek(1).type in (
            TokenType.ASSIGN,
            TokenType.COLON,
        ):
            self._advance()
            return Literal(tok.value, tok.span)
        if tok.type is TokenType.LPAREN:
            self._advance()
            inner = self.parse_expression()
            self._expect(TokenType.RPAREN, "')' after computed key")
            return inner
        return self.parse_expression()

    def _parse_for(self, open_tok: Token, is_object: bool) -> Expr:
        self._advance()  # 'for'
        first = self._expect(TokenType.IDENT, "loop variable").value
        key_var: Optional[str] = None
        value_var = first
        if self._match(TokenType.COMMA):
            key_var = first
            value_var = self._expect(TokenType.IDENT, "loop value variable").value
        in_tok = self._expect(TokenType.IDENT, "'in'")
        if in_tok.value != "in":
            raise CLCSyntaxError("expected 'in' in for expression", in_tok.span)
        collection = self.parse_expression()
        self._expect(TokenType.COLON, "':' in for expression")
        self._skip_newlines()
        result_key: Optional[Expr] = None
        if is_object:
            result_key = self.parse_expression()
            self._expect(TokenType.ARROW, "'=>' in object for expression")
            self._skip_newlines()
        result_value = self.parse_expression()
        grouping = bool(self._match(TokenType.ELLIPSIS))
        condition: Optional[Expr] = None
        self._skip_newlines()
        if self._check(TokenType.IDENT) and self._peek().value == "if":
            self._advance()
            condition = self.parse_expression()
        self._skip_newlines()
        closer = TokenType.RBRACE if is_object else TokenType.RBRACKET
        close_tok = self._expect(closer, "for expression terminator")
        return ForExpr(
            key_var=key_var,
            value_var=value_var,
            collection=collection,
            result_key=result_key,
            result_value=result_value,
            condition=condition,
            grouping=grouping,
            is_object=is_object,
            span=open_tok.span.merge(close_tok.span),
        )

    # -- templates ---------------------------------------------------------

    def _build_template(self, tok: Token) -> Expr:
        parts: List[Expr] = []
        for part in tok.value:
            if part[0] == "lit":
                parts.append(Literal(part[1], tok.span))
            else:
                _, src, span = part
                parts.append(parse_expression_source(src, self.filename, span))
        return TemplateExpr(parts=parts, span=tok.span)


def parse_file(
    source: str, filename: str = "<config>", start_line: int = 1
) -> ConfigFile:
    """Parse a full CLC source file (or one chunk of it, anchored at
    ``start_line`` so spans stay file-absolute)."""
    lexer = Lexer(source, filename, start_line=start_line)
    return Parser(lexer.tokens(), filename).parse_file()


def parse_expression_source(
    source: str, filename: str = "<expr>", at: Optional[SourceSpan] = None
) -> Expr:
    """Parse a standalone expression (used for template interpolations)."""
    lexer = Lexer(source, filename)
    if at is not None:
        lexer.line = at.start_line
        lexer.col = at.start_col
    parser = Parser(lexer.tokens(), filename)
    expr = parser.parse_expression()
    parser._skip_newlines()
    parser._expect(TokenType.EOF, "end of expression")
    return expr
