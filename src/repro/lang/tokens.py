"""Token definitions for the CLC lexer."""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

from .diagnostics import SourceSpan


class TokenType(enum.Enum):
    """Every lexical category recognized by the CLC lexer."""

    # literals / identifiers
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"  # a fully-literal (non-interpolated) string
    HEREDOC = "heredoc"

    # punctuation
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    COLON = ":"
    ASSIGN = "="
    ARROW = "=>"
    QUESTION = "?"
    ELLIPSIS = "..."

    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LTE = "<="
    GTE = ">="
    AND = "&&"
    OR = "||"
    BANG = "!"

    # string interpolation pieces (produced by re-lexing string templates)
    TEMPLATE = "template"  # string with ${...} parts, carried structured

    NEWLINE = "newline"
    EOF = "eof"


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexeme with its decoded value and source span."""

    type: TokenType
    value: Any
    span: SourceSpan

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.name}({self.value!r})"


KEYWORD_LITERALS = {
    "true": True,
    "false": False,
    "null": None,
}

# Multi-char operators, longest first so the lexer matches greedily.
OPERATORS = [
    ("...", TokenType.ELLIPSIS),
    ("=>", TokenType.ARROW),
    ("==", TokenType.EQ),
    ("!=", TokenType.NEQ),
    ("<=", TokenType.LTE),
    (">=", TokenType.GTE),
    ("&&", TokenType.AND),
    ("||", TokenType.OR),
    ("{", TokenType.LBRACE),
    ("}", TokenType.RBRACE),
    ("[", TokenType.LBRACKET),
    ("]", TokenType.RBRACKET),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    (",", TokenType.COMMA),
    (".", TokenType.DOT),
    (":", TokenType.COLON),
    ("=", TokenType.ASSIGN),
    ("?", TokenType.QUESTION),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.STAR),
    ("/", TokenType.SLASH),
    ("%", TokenType.PERCENT),
    ("<", TokenType.LT),
    (">", TokenType.GT),
    ("!", TokenType.BANG),
]
