"""Module source resolution for CLC.

Module calls (``module "net" { source = "./network" ... }``) are
resolved through a :class:`ModuleLoader`. Loaders cache parsed
configurations so diamond-shaped module graphs parse once.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

from .config import Configuration
from .diagnostics import CLCError


class ModuleNotFoundError_(CLCError):
    """Raised when a module source cannot be resolved."""


class ModuleLoader:
    """Base loader; subclasses implement :meth:`_load_uncached`."""

    def __init__(self) -> None:
        self._cache: Dict[str, Configuration] = {}

    def load(self, source: str) -> Configuration:
        if source not in self._cache:
            self._cache[source] = self._load_uncached(source)
        return self._cache[source]

    def _load_uncached(self, source: str) -> Configuration:
        raise NotImplementedError


class NullModuleLoader(ModuleLoader):
    """Refuses every module source; for configs without modules."""

    def _load_uncached(self, source: str) -> Configuration:
        raise ModuleNotFoundError_(
            f"module source {source!r} cannot be resolved (no loader configured)"
        )


class DictModuleLoader(ModuleLoader):
    """Resolves module sources from an in-memory registry.

    ``modules`` maps a source string to either a single CLC source text
    or a ``{filename: source}`` mapping.
    """

    def __init__(self, modules: Dict[str, Union[str, Dict[str, str]]]):
        super().__init__()
        self._modules = dict(modules)

    def register(self, source: str, text: Union[str, Dict[str, str]]) -> None:
        self._modules[source] = text
        self._cache.pop(source, None)

    def _load_uncached(self, source: str) -> Configuration:
        if source not in self._modules:
            raise ModuleNotFoundError_(f"module source {source!r} is not registered")
        entry = self._modules[source]
        if isinstance(entry, str):
            return Configuration.parse(entry, filename=f"{source}/main.clc")
        return Configuration.parse(entry)


class FileSystemModuleLoader(ModuleLoader):
    """Resolves relative module sources against a root directory.

    Each module directory contributes every ``*.clc`` file it contains.
    """

    def __init__(self, root: str):
        super().__init__()
        self.root = root

    def _load_uncached(self, source: str) -> Configuration:
        directory = os.path.normpath(os.path.join(self.root, source))
        if not os.path.isdir(directory):
            raise ModuleNotFoundError_(f"module directory {directory!r} not found")
        sources: Dict[str, str] = {}
        for fname in sorted(os.listdir(directory)):
            if fname.endswith(".clc") or fname.endswith(".tf"):
                path = os.path.join(directory, fname)
                with open(path, "r", encoding="utf-8") as handle:
                    sources[path] = handle.read()
        if not sources:
            raise ModuleNotFoundError_(
                f"module directory {directory!r} contains no .clc files"
            )
        return Configuration.parse(sources)
