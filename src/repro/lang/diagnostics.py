"""Source positions and diagnostics for the CLC language.

Every syntax object carries a :class:`SourceSpan` so that later lifecycle
stages (validation, deployment errors, the debugger) can point back at
the exact file/line/column that caused a problem -- the "lines of code"
correlation the paper calls out as missing from today's tooling (3.5).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class SourceSpan:
    """A half-open region of source text, 1-based line/column."""

    filename: str = "<config>"
    start_line: int = 1
    start_col: int = 1
    end_line: int = 1
    end_col: int = 1

    def __str__(self) -> str:
        return f"{self.filename}:{self.start_line}:{self.start_col}"

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``."""
        start = min(
            (self.start_line, self.start_col), (other.start_line, other.start_col)
        )
        end = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return SourceSpan(self.filename, start[0], start[1], end[0], end[1])


class Severity(enum.Enum):
    """How bad a diagnostic is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """A single validation/parse finding, anchored to source."""

    severity: Severity
    message: str
    span: Optional[SourceSpan] = None
    code: str = ""
    detail: str = ""

    def __str__(self) -> str:
        where = f" at {self.span}" if self.span else ""
        code = f" [{self.code}]" if self.code else ""
        return f"{self.severity.value}{code}: {self.message}{where}"


class CLCError(Exception):
    """Base class for all errors raised by the CLC toolchain."""


class CLCSyntaxError(CLCError):
    """Raised when the lexer or parser cannot make sense of the input."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None):
        super().__init__(f"{message}" + (f" at {span}" if span else ""))
        self.message = message
        self.span = span


class CLCEvalError(CLCError):
    """Raised when expression evaluation fails."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None):
        super().__init__(f"{message}" + (f" at {span}" if span else ""))
        self.message = message
        self.span = span


class DiagnosticSink:
    """Accumulates diagnostics emitted by any pipeline stage."""

    def __init__(self) -> None:
        self._items: List[Diagnostic] = []

    def emit(self, diag: Diagnostic) -> None:
        self._items.append(diag)

    def error(
        self,
        message: str,
        span: Optional[SourceSpan] = None,
        code: str = "",
        detail: str = "",
    ) -> None:
        self.emit(Diagnostic(Severity.ERROR, message, span, code, detail))

    def warning(
        self,
        message: str,
        span: Optional[SourceSpan] = None,
        code: str = "",
        detail: str = "",
    ) -> None:
        self.emit(Diagnostic(Severity.WARNING, message, span, code, detail))

    def info(
        self,
        message: str,
        span: Optional[SourceSpan] = None,
        code: str = "",
        detail: str = "",
    ) -> None:
        self.emit(Diagnostic(Severity.INFO, message, span, code, detail))

    def extend(self, other: "DiagnosticSink") -> None:
        self._items.extend(other._items)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return list(self._items)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._items)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __str__(self) -> str:
        return "\n".join(str(d) for d in self._items)
