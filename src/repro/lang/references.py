"""Static reference extraction from CLC expressions.

Dependency graphs are built *before* any expression can be evaluated, so
this module walks ASTs and reports which configuration objects an
expression mentions: variables, locals, data sources, managed resources,
and module outputs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set, Tuple

from .ast_nodes import (
    AttrAccess,
    Attribute,
    Body,
    Expr,
    ForExpr,
    IndexAccess,
    ScopeRef,
    SplatExpr,
)

# root identifiers that are *not* resource references
_BUILTIN_ROOTS = {
    "var",
    "local",
    "data",
    "module",
    "count",
    "each",
    "path",
    "self",
    "terraform",
}


@dataclasses.dataclass(frozen=True, order=True)
class Reference:
    """A single reference target.

    ``kind`` is one of ``var | local | data | module | resource``.
    ``type`` is the resource/data type (empty otherwise) and ``name`` the
    declared name (variable name, local name, module call name, ...).
    ``attr`` is the first attribute accessed past the target, if any --
    used by semantic validation to know *which* attribute is consumed.
    """

    kind: str
    type: str
    name: str
    attr: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        """Identity of the referenced config object (ignores .attr)."""
        return (self.kind, self.type, self.name)

    def __str__(self) -> str:
        if self.kind == "var":
            return f"var.{self.name}"
        if self.kind == "local":
            return f"local.{self.name}"
        if self.kind == "data":
            return f"data.{self.type}.{self.name}"
        if self.kind == "module":
            return f"module.{self.name}"
        return f"{self.type}.{self.name}"


def _traversal_parts(expr: Expr) -> Optional[List[str]]:
    """Flatten a chain of attribute accesses rooted at a ScopeRef.

    Returns ``None`` when the expression is not a plain traversal (e.g.
    a function call result). Index accesses are transparent --
    ``aws_vm.web[0].id`` reports the same target as ``aws_vm.web.id``.
    """
    parts: List[str] = []
    node = expr
    while True:
        if isinstance(node, AttrAccess):
            parts.append(node.name)
            node = node.obj
        elif isinstance(node, (IndexAccess, SplatExpr)):
            if isinstance(node, SplatExpr):
                parts.extend(reversed(node.attrs))
            node = node.obj
        elif isinstance(node, ScopeRef):
            parts.append(node.name)
            return list(reversed(parts))
        else:
            return None


def _reference_from_parts(parts: List[str], local_names: Set[str]) -> Optional[
    Reference
]:
    root = parts[0]
    if root in local_names:
        return None  # a for-expression loop variable, not a config reference
    if root == "var":
        if len(parts) >= 2:
            return Reference("var", "", parts[1], parts[2] if len(parts) > 2 else "")
        return None
    if root == "local":
        if len(parts) >= 2:
            return Reference(
                "local", "", parts[1], parts[2] if len(parts) > 2 else ""
            )
        return None
    if root == "data":
        if len(parts) >= 3:
            return Reference(
                "data", parts[1], parts[2], parts[3] if len(parts) > 3 else ""
            )
        return None
    if root == "module":
        if len(parts) >= 2:
            return Reference(
                "module", "", parts[1], parts[2] if len(parts) > 2 else ""
            )
        return None
    if root in _BUILTIN_ROOTS:
        return None
    if len(parts) >= 2:
        return Reference(
            "resource", root, parts[1], parts[2] if len(parts) > 2 else ""
        )
    return None


def extract_references(expr: Expr) -> Set[Reference]:
    """All config-object references inside ``expr``."""
    refs: Set[Reference] = set()
    _collect(expr, set(), refs)
    return refs


def _collect(expr: Expr, local_names: Set[str], refs: Set[Reference]) -> None:
    parts = _traversal_parts(expr)
    if parts is not None:
        ref = _reference_from_parts(parts, local_names)
        if ref is not None:
            refs.add(ref)
        # still descend into index expressions hidden inside the traversal
        _descend_indices(expr, local_names, refs)
        return
    if isinstance(expr, ForExpr):
        _collect(expr.collection, local_names, refs)
        inner = set(local_names)
        inner.add(expr.value_var)
        if expr.key_var:
            inner.add(expr.key_var)
        if expr.result_key is not None:
            _collect(expr.result_key, inner, refs)
        _collect(expr.result_value, inner, refs)
        if expr.condition is not None:
            _collect(expr.condition, inner, refs)
        return
    for child in _shallow_children(expr):
        _collect(child, local_names, refs)


def _descend_indices(expr: Expr, local_names: Set[str], refs: Set[Reference]) -> None:
    node = expr
    while True:
        if isinstance(node, AttrAccess):
            node = node.obj
        elif isinstance(node, SplatExpr):
            node = node.obj
        elif isinstance(node, IndexAccess):
            _collect(node.index, local_names, refs)
            node = node.obj
        else:
            return


def _shallow_children(expr: Expr) -> List[Expr]:
    from .ast_nodes import (
        BinaryOp,
        Conditional,
        FunctionCall,
        ListExpr,
        Literal,
        ObjectExpr,
        TemplateExpr,
        UnaryOp,
    )

    if isinstance(expr, TemplateExpr):
        return list(expr.parts)
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, Conditional):
        return [expr.cond, expr.then, expr.otherwise]
    if isinstance(expr, ListExpr):
        return list(expr.items)
    if isinstance(expr, ObjectExpr):
        out: List[Expr] = []
        for key, value in expr.entries:
            out.append(key)
            out.append(value)
        return out
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    if isinstance(expr, (AttrAccess, SplatExpr)):
        return [expr.obj]
    if isinstance(expr, IndexAccess):
        return [expr.obj, expr.index]
    if isinstance(expr, Literal):
        return []
    return []


def body_references(body: Body) -> Set[Reference]:
    """All references made anywhere in a block body (recursively)."""
    refs: Set[Reference] = set()
    for attr in body.attributes.values():
        refs |= extract_references(attr.expr)
    for block in body.blocks:
        refs |= body_references(block.body)
    return refs


def attribute_references(attr: Attribute) -> Set[Reference]:
    return extract_references(attr.expr)
