"""Expression evaluation for CLC.

The evaluator walks AST expression nodes against a :class:`Scope`: any
object exposing ``resolve_root(name, span) -> value``. Unknown values
(attributes of not-yet-created resources) propagate through every
operator and function so that plans can be computed before deployment.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Callable, Dict, List, Optional

from .ast_nodes import (
    AttrAccess,
    BinaryOp,
    Conditional,
    Expr,
    ForExpr,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ScopeRef,
    SplatExpr,
    TemplateExpr,
    UnaryOp,
)
from .diagnostics import CLCEvalError, SourceSpan
from .functions import call_function
from .values import UNKNOWN, Unknown, is_unknown, to_string, type_name


class Scope:
    """Resolution environment for root identifiers.

    ``parent`` chains let per-instance bindings (``count``, ``each``,
    ``for`` loop variables) overlay a module-level scope.
    """

    def __init__(
        self,
        bindings: Optional[Dict[str, Any]] = None,
        parent: Optional["Scope"] = None,
        resolver: Optional[Callable[[str, Optional[SourceSpan]], Any]] = None,
    ):
        self._bindings = bindings or {}
        self._parent = parent
        self._resolver = resolver

    def child(self, bindings: Dict[str, Any]) -> "Scope":
        """A new scope overlaying ``bindings`` on top of this one."""
        return Scope(bindings=bindings, parent=self)

    def resolve_root(self, name: str, span: Optional[SourceSpan] = None) -> Any:
        if name in self._bindings:
            return self._bindings[name]
        if self._parent is not None:
            return self._parent.resolve_root(name, span)
        if self._resolver is not None:
            return self._resolver(name, span)
        raise CLCEvalError(f"unknown identifier {name!r}", span)


class Evaluator:
    """Evaluates CLC expressions within a :class:`Scope`."""

    def __init__(self, scope: Scope):
        self.scope = scope

    def evaluate(self, expr: Expr) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover - exhaustive dispatch
            raise CLCEvalError(f"cannot evaluate {type(expr).__name__}", expr.span)
        return method(expr)

    # -- leaf nodes ------------------------------------------------------

    def _eval_Literal(self, expr: Literal) -> Any:
        return expr.value

    def _eval_ScopeRef(self, expr: ScopeRef) -> Any:
        return self.scope.resolve_root(expr.name, expr.span)

    def _eval_TemplateExpr(self, expr: TemplateExpr) -> Any:
        parts = [self.evaluate(p) for p in expr.parts]
        if any(is_unknown(p) for p in parts):
            origins = [p.origin for p in parts if isinstance(p, Unknown) and p.origin]
            return Unknown(origins[0]) if origins else UNKNOWN
        return "".join(to_string(p) for p in parts)

    # -- traversal ---------------------------------------------------------

    def _eval_AttrAccess(self, expr: AttrAccess) -> Any:
        obj = self.evaluate(expr.obj)
        return access_attr(obj, expr.name, expr.span)

    def _eval_IndexAccess(self, expr: IndexAccess) -> Any:
        obj = self.evaluate(expr.obj)
        index = self.evaluate(expr.index)
        if isinstance(obj, Unknown):
            return obj
        if isinstance(index, Unknown):
            return index
        if isinstance(obj, list):
            if not isinstance(index, (int, float)) or isinstance(index, bool):
                raise CLCEvalError(
                    f"list index must be a number, got {type_name(index)}", expr.span
                )
            i = int(index)
            if not 0 <= i < len(obj):
                raise CLCEvalError(
                    f"list index {i} out of range (length {len(obj)})", expr.span
                )
            return obj[i]
        if isinstance(obj, Mapping):
            if not isinstance(index, str):
                raise CLCEvalError(
                    f"map key must be a string, got {type_name(index)}", expr.span
                )
            if index not in obj:
                raise CLCEvalError(f"map has no key {index!r}", expr.span)
            return obj[index]
        raise CLCEvalError(f"cannot index a {type_name(obj)}", expr.span)

    def _eval_SplatExpr(self, expr: SplatExpr) -> Any:
        obj = self.evaluate(expr.obj)
        if isinstance(obj, Unknown):
            return obj
        if obj is None:
            return []
        items = obj if isinstance(obj, list) else [obj]
        out = []
        for item in items:
            value = item
            for name in expr.attrs:
                value = access_attr(value, name, expr.span)
            out.append(value)
        return out

    # -- operators -----------------------------------------------------------

    def _eval_UnaryOp(self, expr: UnaryOp) -> Any:
        operand = self.evaluate(expr.operand)
        if isinstance(operand, Unknown):
            return operand
        if expr.op == "!":
            if not isinstance(operand, bool):
                raise CLCEvalError(
                    f"'!' wants bool, got {type_name(operand)}", expr.span
                )
            return not operand
        if expr.op == "-":
            if not isinstance(operand, (int, float)) or isinstance(operand, bool):
                raise CLCEvalError(
                    f"unary '-' wants number, got {type_name(operand)}", expr.span
                )
            return -operand
        raise CLCEvalError(f"unknown unary operator {expr.op!r}", expr.span)

    def _eval_BinaryOp(self, expr: BinaryOp) -> Any:
        op = expr.op
        left = self.evaluate(expr.left)
        # short-circuit logic operators
        if op == "&&":
            if left is False:
                return False
            right = self.evaluate(expr.right)
            if right is False:
                return False
            if isinstance(left, Unknown) or isinstance(right, Unknown):
                return UNKNOWN
            self._want_bool(left, expr)
            self._want_bool(right, expr)
            return left and right
        if op == "||":
            if left is True:
                return True
            right = self.evaluate(expr.right)
            if right is True:
                return True
            if isinstance(left, Unknown) or isinstance(right, Unknown):
                return UNKNOWN
            self._want_bool(left, expr)
            self._want_bool(right, expr)
            return left or right

        right = self.evaluate(expr.right)
        if isinstance(left, Unknown) or isinstance(right, Unknown):
            return UNKNOWN
        if op == "==":
            return _loose_equal(left, right)
        if op == "!=":
            return not _loose_equal(left, right)
        if op in ("<", ">", "<=", ">="):
            self._want_number(left, expr)
            self._want_number(right, expr)
            return {
                "<": left < right,
                ">": left > right,
                "<=": left <= right,
                ">=": left >= right,
            }[op]
        if op in ("+", "-", "*", "/", "%"):
            self._want_number(left, expr)
            self._want_number(right, expr)
            if op == "/" and right == 0:
                raise CLCEvalError("division by zero", expr.span)
            if op == "%" and right == 0:
                raise CLCEvalError("modulo by zero", expr.span)
            result = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left / right,
                "%": lambda: left % right,
            }[op]()
            if isinstance(result, float) and result.is_integer() and op != "/":
                return int(result)
            return result
        raise CLCEvalError(f"unknown operator {op!r}", expr.span)

    def _want_bool(self, value: Any, expr: Expr) -> None:
        if not isinstance(value, bool):
            raise CLCEvalError(
                f"operator {expr.op!r} wants bool, got {type_name(value)}", expr.span
            )

    def _want_number(self, value: Any, expr: Expr) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CLCEvalError(
                f"operator {expr.op!r} wants numbers, got {type_name(value)}",
                expr.span,
            )

    # -- compound constructors ---------------------------------------------

    def _eval_Conditional(self, expr: Conditional) -> Any:
        cond = self.evaluate(expr.cond)
        if isinstance(cond, Unknown):
            return UNKNOWN
        if not isinstance(cond, bool):
            raise CLCEvalError(
                f"condition must be bool, got {type_name(cond)}", expr.span
            )
        return self.evaluate(expr.then if cond else expr.otherwise)

    def _eval_ListExpr(self, expr: ListExpr) -> List[Any]:
        return [self.evaluate(item) for item in expr.items]

    def _eval_ObjectExpr(self, expr: ObjectExpr) -> Any:
        out: Dict[str, Any] = {}
        for key_expr, value_expr in expr.entries:
            key = self.evaluate(key_expr)
            if isinstance(key, Unknown):
                return UNKNOWN
            if not isinstance(key, str):
                raise CLCEvalError(
                    f"object key must be string, got {type_name(key)}", key_expr.span
                )
            out[key] = self.evaluate(value_expr)
        return out

    def _eval_FunctionCall(self, expr: FunctionCall) -> Any:
        args = [self.evaluate(a) for a in expr.args]
        if expr.expand_final:
            if not args:
                raise CLCEvalError("'...' needs a final argument", expr.span)
            final = args.pop()
            if isinstance(final, Unknown):
                return UNKNOWN
            if not isinstance(final, list):
                raise CLCEvalError("'...' wants a list argument", expr.span)
            args.extend(final)
        try:
            return call_function(expr.name, args)
        except CLCEvalError as exc:
            if exc.span is None:
                raise CLCEvalError(exc.message, expr.span)
            raise

    def _eval_ForExpr(self, expr: ForExpr) -> Any:
        collection = self.evaluate(expr.collection)
        if isinstance(collection, Unknown):
            return UNKNOWN
        if isinstance(collection, list):
            pairs = list(enumerate(collection))
        elif isinstance(collection, Mapping):
            pairs = sorted(collection.items())
        else:
            raise CLCEvalError(
                f"for expression wants list/map, got {type_name(collection)}",
                expr.span,
            )

        def iteration_scope(k: Any, v: Any) -> Evaluator:
            bindings: Dict[str, Any] = {expr.value_var: v}
            if expr.key_var:
                bindings[expr.key_var] = k
            return Evaluator(self.scope.child(bindings))

        if not expr.is_object:
            out_list: List[Any] = []
            for k, v in pairs:
                ev = iteration_scope(k, v)
                if expr.condition is not None:
                    keep = ev.evaluate(expr.condition)
                    if isinstance(keep, Unknown):
                        return UNKNOWN
                    if not isinstance(keep, bool):
                        raise CLCEvalError("for 'if' must be bool", expr.span)
                    if not keep:
                        continue
                out_list.append(ev.evaluate(expr.result_value))
            return out_list

        out_map: Dict[str, Any] = {}
        grouped: Dict[str, List[Any]] = {}
        for k, v in pairs:
            ev = iteration_scope(k, v)
            if expr.condition is not None:
                keep = ev.evaluate(expr.condition)
                if isinstance(keep, Unknown):
                    return UNKNOWN
                if not isinstance(keep, bool):
                    raise CLCEvalError("for 'if' must be bool", expr.span)
                if not keep:
                    continue
            assert expr.result_key is not None
            key = ev.evaluate(expr.result_key)
            if isinstance(key, Unknown):
                return UNKNOWN
            if not isinstance(key, str):
                raise CLCEvalError(
                    f"for key must be string, got {type_name(key)}", expr.span
                )
            value = ev.evaluate(expr.result_value)
            if expr.grouping:
                grouped.setdefault(key, []).append(value)
            else:
                if key in out_map:
                    raise CLCEvalError(
                        f"duplicate key {key!r} in for expression "
                        "(use '...' to group)",
                        expr.span,
                    )
                out_map[key] = value
        return grouped if expr.grouping else out_map


def access_attr(obj: Any, name: str, span: Optional[SourceSpan] = None) -> Any:
    """Resolve ``obj.name`` with unknown propagation."""
    if isinstance(obj, Unknown):
        return obj
    if isinstance(obj, Mapping):
        if name not in obj:
            raise CLCEvalError(f"object has no attribute {name!r}", span)
        return obj[name]
    raise CLCEvalError(f"cannot access attribute {name!r} on {type_name(obj)}", span)


def _loose_equal(a: Any, b: Any) -> bool:
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    return a == b


def evaluate(expr: Expr, scope: Scope) -> Any:
    """Convenience wrapper: evaluate ``expr`` in ``scope``."""
    return Evaluator(scope).evaluate(expr)
