"""Typed configuration model extracted from parsed CLC files.

The parser gives us generic blocks; this module classifies them into
variables, locals, outputs, resources, data sources, module calls, and
provider configurations -- checking structural rules (labels, duplicate
names, known meta-arguments) and collecting diagnostics.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from .ast_nodes import (
    Attribute,
    Block,
    Body,
    ConfigFile,
    Expr,
    FunctionCall,
    Literal,
    ScopeRef,
)
from .chunker import iter_chunks
from .diagnostics import CLCError, DiagnosticSink, SourceSpan
from .parser import parse_file
from .references import Reference, body_references, extract_references

# meta-arguments recognised on resource/data blocks
_RESOURCE_META = {"count", "for_each", "depends_on", "provider", "lifecycle"}
_MODULE_META = {"source", "count", "for_each", "depends_on", "providers", "version"}
_PRIMITIVE_TYPES = {"string", "number", "bool", "any"}
_TYPE_CONSTRUCTORS = {"list", "set", "map", "object", "tuple"}


@dataclasses.dataclass
class LifecycleOptions:
    """Subset of Terraform's ``lifecycle`` meta-block we honour."""

    prevent_destroy: bool = False
    create_before_destroy: bool = False
    ignore_changes: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class VariableValidation:
    """One ``validation { condition, error_message }`` rule."""

    condition: Expr
    error_message: str
    span: SourceSpan = dataclasses.field(default_factory=SourceSpan)


@dataclasses.dataclass
class VariableDecl:
    name: str
    type_constraint: str = "any"
    default: Optional[Expr] = None
    description: str = ""
    sensitive: bool = False
    validations: List["VariableValidation"] = dataclasses.field(
        default_factory=list
    )
    span: SourceSpan = dataclasses.field(default_factory=SourceSpan)


@dataclasses.dataclass
class OutputDecl:
    name: str
    value: Expr
    description: str = ""
    sensitive: bool = False
    span: SourceSpan = dataclasses.field(default_factory=SourceSpan)


@dataclasses.dataclass
class ResourceDecl:
    """One ``resource`` or ``data`` block."""

    mode: str  # "managed" | "data"
    type: str
    name: str
    body: Body
    count: Optional[Expr] = None
    for_each: Optional[Expr] = None
    depends_on: List[Reference] = dataclasses.field(default_factory=list)
    provider: str = ""
    lifecycle: LifecycleOptions = dataclasses.field(default_factory=LifecycleOptions)
    span: SourceSpan = dataclasses.field(default_factory=SourceSpan)

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.mode, self.type, self.name)

    @property
    def address(self) -> str:
        prefix = "data." if self.mode == "data" else ""
        return f"{prefix}{self.type}.{self.name}"

    def references(self) -> set:
        """Config objects referenced by this resource's body + meta."""
        refs = body_references(self.body)
        if self.count is not None:
            refs |= extract_references(self.count)
        if self.for_each is not None:
            refs |= extract_references(self.for_each)
        refs |= set(self.depends_on)
        return refs


@dataclasses.dataclass
class ModuleCall:
    name: str
    source: str
    body: Body  # arguments (meta-args removed)
    count: Optional[Expr] = None
    for_each: Optional[Expr] = None
    depends_on: List[Reference] = dataclasses.field(default_factory=list)
    span: SourceSpan = dataclasses.field(default_factory=SourceSpan)

    def references(self) -> set:
        refs = body_references(self.body)
        if self.count is not None:
            refs |= extract_references(self.count)
        if self.for_each is not None:
            refs |= extract_references(self.for_each)
        refs |= set(self.depends_on)
        return refs


@dataclasses.dataclass
class ProviderConfig:
    name: str
    alias: str = ""
    body: Body = dataclasses.field(default_factory=Body)
    span: SourceSpan = dataclasses.field(default_factory=SourceSpan)

    @property
    def key(self) -> str:
        return f"{self.name}.{self.alias}" if self.alias else self.name


class Configuration:
    """All declarations of one module, ready for expansion/evaluation."""

    def __init__(self) -> None:
        self.variables: Dict[str, VariableDecl] = {}
        self.outputs: Dict[str, OutputDecl] = {}
        self.locals: Dict[str, Attribute] = {}
        self.resources: Dict[Tuple[str, str, str], ResourceDecl] = {}
        self.module_calls: Dict[str, ModuleCall] = {}
        self.providers: Dict[str, ProviderConfig] = {}
        self.files: List[ConfigFile] = []
        self.diagnostics = DiagnosticSink()
        #: per-file ordered chunk fingerprints (streaming parses only);
        #: the compiled-artifact cache keys graph validity off these
        self.block_fingerprints: Dict[str, List[str]] = {}
        #: chunk fingerprint -> parsed chunk AST, so a later
        #: ``parse_streaming(reuse=this)`` skips re-lexing unchanged text
        self._chunk_asts: Dict[str, ConfigFile] = {}

    # -- lookup helpers ----------------------------------------------------

    def resource(self, rtype: str, name: str, mode: str = "managed") -> Optional[
        ResourceDecl
    ]:
        return self.resources.get((mode, rtype, name))

    def managed_resources(self) -> List[ResourceDecl]:
        return [r for r in self.resources.values() if r.mode == "managed"]

    def data_sources(self) -> List[ResourceDecl]:
        return [r for r in self.resources.values() if r.mode == "data"]

    def resource_types(self) -> set:
        return {r.type for r in self.resources.values()}

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(
        cls, sources: Any, filename: str = "main.clc"
    ) -> "Configuration":
        """Parse source text (or a {filename: source} mapping)."""
        if isinstance(sources, str):
            sources = {filename: sources}
        cfg = cls()
        for fname in sorted(sources):
            cfg.add_file(parse_file(sources[fname], fname))
        return cfg

    @classmethod
    def parse_streaming(
        cls,
        sources: Any,
        filename: str = "main.clc",
        reuse: Optional["Configuration"] = None,
    ) -> "Configuration":
        """Parse declaration-by-declaration instead of file-at-once.

        Each source file is split into top-level chunks (see
        :mod:`repro.lang.chunker`) and every chunk is lexed and parsed
        independently, so peak memory is bounded by the largest chunk's
        token list rather than the whole file's -- the difference
        between streaming and buffering a 1M-resource estate.

        ``reuse`` is a Configuration from a previous streaming parse of
        (mostly) the same text: chunks whose fingerprints match skip
        lexing and parsing entirely and re-classify the cached AST,
        which makes a warm re-parse O(changed declarations). The result
        is semantically identical to :meth:`parse` -- same declarations,
        same diagnostics, file-absolute source spans.
        """
        if isinstance(sources, str):
            sources = {filename: sources}
        prev = reuse._chunk_asts if reuse is not None else {}
        cfg = cls()
        for fname in sorted(sources):
            merged = Body()
            fps: List[str] = []
            for chunk in iter_chunks(sources[fname]):
                fps.append(chunk.fingerprint)
                cached = prev.get(chunk.fingerprint)
                if cached is None or cached.filename != fname:
                    cached = parse_file(
                        chunk.text, fname, start_line=chunk.start_line
                    )
                cfg._chunk_asts[chunk.fingerprint] = cached
                for name, attr in cached.body.attributes.items():
                    merged.attributes.setdefault(name, attr)
                merged.blocks.extend(cached.body.blocks)
            cfg.block_fingerprints[fname] = fps
            cfg.add_file(ConfigFile(body=merged, filename=fname))
        return cfg

    def add_file(self, cfile: ConfigFile) -> None:
        self.files.append(cfile)
        for name, attr in cfile.body.attributes.items():
            self.diagnostics.error(
                f"unexpected top-level attribute {name!r}", attr.span, "CLC001"
            )
        for block in cfile.body.blocks:
            self._classify_block(block)

    def _classify_block(self, block: Block) -> None:
        handler = {
            "variable": self._add_variable,
            "output": self._add_output,
            "locals": self._add_locals,
            "resource": self._add_resource,
            "data": self._add_data,
            "module": self._add_module,
            "provider": self._add_provider,
            "terraform": lambda b: None,  # accepted and ignored
        }.get(block.type)
        if handler is None:
            self.diagnostics.error(
                f"unknown block type {block.type!r}", block.span, "CLC002"
            )
            return
        handler(block)

    # -- block handlers -------------------------------------------------------

    def _add_variable(self, block: Block) -> None:
        name = block.label(0)
        if not name or len(block.labels) != 1:
            self.diagnostics.error(
                "variable block wants exactly one label", block.span, "CLC003"
            )
            return
        if name in self.variables:
            self.diagnostics.error(
                f"duplicate variable {name!r}", block.span, "CLC004"
            )
            return
        decl = VariableDecl(name=name, span=block.span)
        type_expr = block.body.attr_expr("type")
        if type_expr is not None:
            constraint = _type_constraint_from_expr(type_expr)
            if constraint is None:
                self.diagnostics.error(
                    "invalid type constraint", type_expr.span, "CLC005"
                )
            else:
                decl.type_constraint = constraint
        decl.default = block.body.attr_expr("default")
        decl.description = _literal_str(block.body.attr_expr("description")) or ""
        sensitive = block.body.attr_expr("sensitive")
        if isinstance(sensitive, Literal) and sensitive.value is True:
            decl.sensitive = True
        for sub in block.body.blocks_of_type("validation"):
            condition = sub.body.attr_expr("condition")
            message = _literal_str(sub.body.attr_expr("error_message"))
            if condition is None:
                self.diagnostics.error(
                    f"variable {name!r}: validation block needs 'condition'",
                    sub.span,
                    "CLC012",
                )
                continue
            decl.validations.append(
                VariableValidation(
                    condition=condition,
                    error_message=message or f"invalid value for var.{name}",
                    span=sub.span,
                )
            )
        self.variables[name] = decl

    def _add_output(self, block: Block) -> None:
        name = block.label(0)
        if not name or len(block.labels) != 1:
            self.diagnostics.error(
                "output block wants exactly one label", block.span, "CLC003"
            )
            return
        if name in self.outputs:
            self.diagnostics.error(f"duplicate output {name!r}", block.span, "CLC004")
            return
        value = block.body.attr_expr("value")
        if value is None:
            self.diagnostics.error(
                f"output {name!r} is missing 'value'", block.span, "CLC006"
            )
            return
        self.outputs[name] = OutputDecl(
            name=name,
            value=value,
            description=_literal_str(block.body.attr_expr("description")) or "",
            span=block.span,
        )

    def _add_locals(self, block: Block) -> None:
        if block.labels:
            self.diagnostics.error(
                "locals block takes no labels", block.span, "CLC003"
            )
            return
        for name, attr in block.body.attributes.items():
            if name in self.locals:
                self.diagnostics.error(
                    f"duplicate local {name!r}", attr.span, "CLC004"
                )
                continue
            self.locals[name] = attr

    def _add_resource(self, block: Block) -> None:
        self._add_resourceish(block, mode="managed")

    def _add_data(self, block: Block) -> None:
        self._add_resourceish(block, mode="data")

    def _add_resourceish(self, block: Block, mode: str) -> None:
        if len(block.labels) != 2:
            self.diagnostics.error(
                f"{block.type} block wants two labels (type, name)",
                block.span,
                "CLC003",
            )
            return
        rtype, name = block.labels
        key = (mode, rtype, name)
        if key in self.resources:
            self.diagnostics.error(
                f"duplicate {block.type} {rtype}.{name}", block.span, "CLC004"
            )
            return
        decl = ResourceDecl(
            mode=mode, type=rtype, name=name, body=Body(), span=block.span
        )
        decl.count = block.body.attr_expr("count")
        decl.for_each = block.body.attr_expr("for_each")
        if decl.count is not None and decl.for_each is not None:
            self.diagnostics.error(
                f"{decl.address}: 'count' and 'for_each' are mutually exclusive",
                block.span,
                "CLC007",
            )
        depends = block.body.attr_expr("depends_on")
        if depends is not None:
            decl.depends_on = _parse_depends_on(depends, self.diagnostics)
        provider_expr = block.body.attr_expr("provider")
        if provider_expr is not None:
            decl.provider = _provider_ref_text(provider_expr) or ""
            if not decl.provider:
                self.diagnostics.error(
                    f"{decl.address}: invalid provider reference",
                    provider_expr.span,
                    "CLC008",
                )
        # copy non-meta attributes & blocks into the decl body
        for name_, attr in block.body.attributes.items():
            if name_ not in _RESOURCE_META:
                decl.body.attributes[name_] = attr
        for sub in block.body.blocks:
            if sub.type == "lifecycle":
                decl.lifecycle = _parse_lifecycle(sub, self.diagnostics)
            else:
                decl.body.blocks.append(sub)
        self.resources[key] = decl

    def _add_module(self, block: Block) -> None:
        name = block.label(0)
        if not name or len(block.labels) != 1:
            self.diagnostics.error(
                "module block wants exactly one label", block.span, "CLC003"
            )
            return
        if name in self.module_calls:
            self.diagnostics.error(f"duplicate module {name!r}", block.span, "CLC004")
            return
        source = _literal_str(block.body.attr_expr("source"))
        if source is None:
            self.diagnostics.error(
                f"module {name!r} is missing a literal 'source'", block.span, "CLC009"
            )
            return
        call = ModuleCall(name=name, source=source, body=Body(), span=block.span)
        call.count = block.body.attr_expr("count")
        call.for_each = block.body.attr_expr("for_each")
        depends = block.body.attr_expr("depends_on")
        if depends is not None:
            call.depends_on = _parse_depends_on(depends, self.diagnostics)
        for name_, attr in block.body.attributes.items():
            if name_ not in _MODULE_META:
                call.body.attributes[name_] = attr
        self.module_calls[name] = call

    def _add_provider(self, block: Block) -> None:
        name = block.label(0)
        if not name or len(block.labels) != 1:
            self.diagnostics.error(
                "provider block wants exactly one label", block.span, "CLC003"
            )
            return
        alias = _literal_str(block.body.attr_expr("alias")) or ""
        pc = ProviderConfig(name=name, alias=alias, body=Body(), span=block.span)
        for name_, attr in block.body.attributes.items():
            if name_ != "alias":
                pc.body.attributes[name_] = attr
        pc.body.blocks = list(block.body.blocks)
        if pc.key in self.providers:
            self.diagnostics.error(
                f"duplicate provider {pc.key!r}", block.span, "CLC004"
            )
            return
        self.providers[pc.key] = pc


# -- small extraction helpers -------------------------------------------------


def _literal_str(expr: Optional[Expr]) -> Optional[str]:
    if isinstance(expr, Literal) and isinstance(expr.value, str):
        return expr.value
    return None


def _type_constraint_from_expr(expr: Expr) -> Optional[str]:
    """Render a type-constraint expression (``list(string)``) to text."""
    if isinstance(expr, ScopeRef):
        return expr.name if expr.name in _PRIMITIVE_TYPES else None
    if isinstance(expr, Literal) and isinstance(expr.value, str):
        return expr.value if expr.value in _PRIMITIVE_TYPES else None
    if isinstance(expr, FunctionCall) and expr.name in _TYPE_CONSTRUCTORS:
        if not expr.args:
            return expr.name
        inner = _type_constraint_from_expr(expr.args[0])
        if inner is None:
            return f"{expr.name}(any)"
        return f"{expr.name}({inner})"
    return None


def _provider_ref_text(expr: Expr) -> Optional[str]:
    from .ast_nodes import AttrAccess

    if isinstance(expr, ScopeRef):
        return expr.name
    if isinstance(expr, AttrAccess) and isinstance(expr.obj, ScopeRef):
        return f"{expr.obj.name}.{expr.name}"
    if isinstance(expr, Literal) and isinstance(expr.value, str):
        return expr.value
    return None


def _parse_depends_on(expr: Expr, sink: DiagnosticSink) -> List[Reference]:
    from .ast_nodes import ListExpr

    refs: List[Reference] = []
    if not isinstance(expr, ListExpr):
        sink.error("depends_on wants a list of references", expr.span, "CLC010")
        return refs
    for item in expr.items:
        found = sorted(extract_references(item))
        if not found:
            sink.error(
                "depends_on entries must be resource references", item.span, "CLC010"
            )
            continue
        refs.extend(found)
    return refs


def _parse_lifecycle(block: Block, sink: DiagnosticSink) -> LifecycleOptions:
    opts = LifecycleOptions()
    for name, attr in block.body.attributes.items():
        if name == "prevent_destroy":
            if isinstance(attr.expr, Literal) and isinstance(attr.expr.value, bool):
                opts.prevent_destroy = attr.expr.value
            else:
                sink.error("prevent_destroy wants a bool literal", attr.span, "CLC011")
        elif name == "create_before_destroy":
            if isinstance(attr.expr, Literal) and isinstance(attr.expr.value, bool):
                opts.create_before_destroy = attr.expr.value
            else:
                sink.error(
                    "create_before_destroy wants a bool literal", attr.span, "CLC011"
                )
        elif name == "ignore_changes":
            from .ast_nodes import ListExpr

            if isinstance(attr.expr, ListExpr):
                for item in attr.expr.items:
                    refs = sorted(extract_references(item))
                    if isinstance(item, Literal) and isinstance(item.value, str):
                        opts.ignore_changes.append(item.value)
                    elif isinstance(item, ScopeRef):
                        opts.ignore_changes.append(item.name)
                    elif refs:
                        opts.ignore_changes.append(str(refs[0]))
            else:
                sink.error("ignore_changes wants a list", attr.span, "CLC011")
        else:
            sink.error(
                f"unknown lifecycle argument {name!r}", attr.span, "CLC011"
            )
    return opts
