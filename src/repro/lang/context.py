"""Module-level evaluation context.

A :class:`ModuleContext` wires together everything an expression needs
to evaluate inside one module instance: variable values (defaults
applied, types coerced), lazily-evaluated locals with cycle detection,
resource/data values supplied by a :class:`ResourceResolver` (the
planner or applier), and child-module outputs.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .config import Configuration, ModuleCall
from .diagnostics import CLCEvalError, SourceSpan
from .evaluator import Evaluator, Scope
from .module_loader import ModuleLoader, NullModuleLoader
from .values import UNKNOWN, Unknown, coerce_to_type

ModulePath = Tuple[str, ...]


class ResourceResolver:
    """Supplies resource/data values during evaluation.

    The default implementation returns :class:`Unknown` for everything,
    which is exactly what expression-level validation wants. Planners
    and appliers override :meth:`resolve`.
    """

    def resolve(
        self,
        module_path: ModulePath,
        mode: str,
        rtype: str,
        name: str,
        span: Optional[SourceSpan] = None,
    ) -> Any:
        prefix = "data." if mode == "data" else ""
        mods = "".join(f"module.{m}." for m in module_path)
        return Unknown(f"{mods}{prefix}{rtype}.{name}")


class DeferredResolver(ResourceResolver):
    """Indirection slot: the graph builder installs this into module
    contexts, and the planner/applier later points ``target`` at a
    state-backed resolver. Until then everything is Unknown."""

    def __init__(self) -> None:
        self.target: Optional[ResourceResolver] = None

    def resolve(self, module_path, mode, rtype, name, span=None):
        if self.target is not None:
            return self.target.resolve(module_path, mode, rtype, name, span)
        return super().resolve(module_path, mode, rtype, name, span)


class StaticResolver(ResourceResolver):
    """Resolver backed by a plain dict of ``address text -> value``."""

    def __init__(self, values: Dict[str, Any]):
        self.values = dict(values)

    def resolve(self, module_path, mode, rtype, name, span=None):
        prefix = "data." if mode == "data" else ""
        mods = "".join(f"module.{m}." for m in module_path)
        key = f"{mods}{prefix}{rtype}.{name}"
        if key in self.values:
            return self.values[key]
        return Unknown(key)


class _KeyedMapping(Mapping):
    """Read-only mapping that computes values on access."""

    def __init__(self, keys: List[str], fetch: Callable[[str], Any], what: str):
        self._keys = list(keys)
        self._keyset = frozenset(self._keys)
        self._fetch = fetch
        self._what = what

    def __getitem__(self, key: str) -> Any:
        if key not in self._keyset:
            raise KeyError(key)
        return self._fetch(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self._what} {self._keys!r}>"


class _LazyLocals(Mapping):
    """Locals evaluated on first access, with cycle detection."""

    def __init__(self, ctx: "ModuleContext"):
        self._ctx = ctx
        self._cache: Dict[str, Any] = {}
        self._in_progress: set = set()

    def __getitem__(self, name: str) -> Any:
        cfg = self._ctx.config
        if name not in cfg.locals:
            raise KeyError(name)
        if name in self._cache:
            return self._cache[name]
        if name in self._in_progress:
            raise CLCEvalError(
                f"local.{name} is self-referential (dependency cycle)",
                cfg.locals[name].span,
            )
        self._in_progress.add(name)
        try:
            value = Evaluator(self._ctx.scope()).evaluate(cfg.locals[name].expr)
        finally:
            self._in_progress.discard(name)
        self._cache[name] = value
        return value

    def __iter__(self) -> Iterator[str]:
        return iter(self._ctx.config.locals)

    def __len__(self) -> int:
        return len(self._ctx.config.locals)


class ModuleContext:
    """Evaluation context for one module instance."""

    def __init__(
        self,
        config: Configuration,
        variables: Optional[Dict[str, Any]] = None,
        module_path: ModulePath = (),
        loader: Optional[ModuleLoader] = None,
        resolver: Optional[ResourceResolver] = None,
    ):
        self.config = config
        self.module_path = module_path
        self.loader = loader or NullModuleLoader()
        self.resolver = resolver or ResourceResolver()
        self.variables = self._finalize_variables(variables or {})
        self._locals = _LazyLocals(self)
        self._module_outputs: Dict[str, Any] = {}
        self._children: Dict[str, ModuleContext] = {}
        # resource-type -> sorted names, built lazily: root resolution
        # runs once per identifier per expression, so scanning all
        # resource declarations there is quadratic at estate scale
        self._managed_names_by_type: Optional[Dict[str, List[str]]] = None
        # resource-type -> (mapping, span cell): the per-type keyed
        # mapping is immutable apart from the span used in error
        # reporting, so rebuilding its name list + keyset per reference
        # evaluation (O(names of that type) each) was the second
        # quadratic cost at estate scale
        self._managed_maps: Dict[str, Tuple[Mapping, List[Any]]] = {}

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        # the keyed-mapping caches close over bound lambdas and the
        # lazy-locals cache can hold such mappings; all three are
        # rebuilt on demand, so the compiled-artifact cache drops them
        state = self.__dict__.copy()
        state["_managed_names_by_type"] = None
        state["_managed_maps"] = {}
        state["_locals"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._locals = _LazyLocals(self)

    # -- variables ----------------------------------------------------------

    def _finalize_variables(self, given: Dict[str, Any]) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        for name, decl in self.config.variables.items():
            if name in given:
                raw = given[name]
            elif decl.default is not None:
                raw = Evaluator(Scope(bindings={})).evaluate(decl.default)
            else:
                raise CLCEvalError(
                    f"required variable {name!r} was not provided", decl.span
                )
            try:
                values[name] = coerce_to_type(
                    raw, decl.type_constraint, path=f"var.{name}"
                )
            except TypeError as exc:
                raise CLCEvalError(str(exc), decl.span)
        extra = set(given) - set(self.config.variables)
        if extra:
            raise CLCEvalError(
                f"unknown variable(s) provided: {', '.join(sorted(extra))}"
            )
        # custom validation rules (variable { validation { ... } })
        scope = Scope(bindings={"var": values})
        for name, decl in self.config.variables.items():
            for rule in decl.validations:
                verdict = Evaluator(scope).evaluate(rule.condition)
                if verdict is False:
                    raise CLCEvalError(
                        f"var.{name}: {rule.error_message}", rule.span
                    )
        return values

    # -- scope / root resolution ---------------------------------------------

    def scope(self, bindings: Optional[Dict[str, Any]] = None) -> Scope:
        base = Scope(resolver=self._resolve_root)
        if bindings:
            return base.child(bindings)
        return base

    def evaluator(self, bindings: Optional[Dict[str, Any]] = None) -> Evaluator:
        return Evaluator(self.scope(bindings))

    def _resolve_root(self, name: str, span: Optional[SourceSpan]) -> Any:
        if name == "var":
            return self.variables
        if name == "local":
            return self._locals
        if name == "data":
            return self._data_root()
        if name == "module":
            return self._module_root()
        if name == "path":
            return {"module": ".", "root": ".", "cwd": "."}
        if self._managed_names_by_type is None:
            by_type: Dict[str, List[str]] = {}
            for r in self.config.resources.values():
                if r.mode == "managed":
                    by_type.setdefault(r.type, []).append(r.name)
            for names in by_type.values():
                names.sort()
            self._managed_names_by_type = by_type
        managed_names = self._managed_names_by_type.get(name)
        if managed_names:
            entry = self._managed_maps.get(name)
            if entry is None:
                span_cell: List[Any] = [span]
                mapping = _KeyedMapping(
                    managed_names,
                    lambda n, t=name, c=span_cell: self.resolver.resolve(
                        self.module_path, "managed", t, n, c[0]
                    ),
                    f"resources:{name}",
                )
                self._managed_maps[name] = (mapping, span_cell)
            else:
                mapping, span_cell = entry
                span_cell[0] = span
            return mapping
        raise CLCEvalError(f"unknown identifier {name!r}", span)

    def _data_root(self) -> Mapping:
        types = sorted(
            {r.type for r in self.config.resources.values() if r.mode == "data"}
        )

        def fetch_type(rtype: str) -> Mapping:
            names = sorted(
                r.name
                for r in self.config.resources.values()
                if r.mode == "data" and r.type == rtype
            )
            return _KeyedMapping(
                names,
                lambda n: self.resolver.resolve(
                    self.module_path, "data", rtype, n, None
                ),
                f"data:{rtype}",
            )

        return _KeyedMapping(types, fetch_type, "data")

    def _module_root(self) -> Mapping:
        names = sorted(self.config.module_calls)
        return _KeyedMapping(names, self._module_outputs_for, "modules")

    # -- child modules -----------------------------------------------------

    def child_context(self, call_name: str) -> "ModuleContext":
        """The evaluation context of a (cached) child module instance."""
        if call_name in self._children:
            return self._children[call_name]
        call = self.config.module_calls.get(call_name)
        if call is None:
            raise CLCEvalError(f"unknown module call {call_name!r}")
        if call.count is not None or call.for_each is not None:
            raise CLCEvalError(
                f"module {call_name!r}: count/for_each on modules is not supported",
                call.span,
            )
        child_cfg = self.loader.load(call.source)
        if child_cfg.diagnostics.has_errors():
            raise CLCEvalError(
                f"module {call_name!r} has configuration errors: "
                f"{child_cfg.diagnostics.errors[0].message}",
                call.span,
            )
        args = {
            name: Evaluator(self.scope()).evaluate(attr.expr)
            for name, attr in call.body.attributes.items()
        }
        ctx = ModuleContext(
            child_cfg,
            variables=args,
            module_path=self.module_path + (call_name,),
            loader=self.loader,
            resolver=self.resolver,
        )
        self._children[call_name] = ctx
        return ctx

    def _module_outputs_for(self, call_name: str) -> Mapping:
        ctx = self.child_context(call_name)

        def fetch(output_name: str) -> Any:
            decl = ctx.config.outputs[output_name]
            return Evaluator(ctx.scope()).evaluate(decl.value)

        return _KeyedMapping(sorted(ctx.config.outputs), fetch, f"module.{call_name}")

    # -- outputs of *this* module -------------------------------------------

    def output_values(self) -> Dict[str, Any]:
        """Evaluate every output declared by this module."""
        out: Dict[str, Any] = {}
        for name, decl in self.config.outputs.items():
            out[name] = Evaluator(self.scope()).evaluate(decl.value)
        return out
