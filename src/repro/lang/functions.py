"""Built-in expression functions for CLC.

A pragmatic subset of the Terraform/HCL standard library, covering
string, collection, numeric, encoding, and network (CIDR) helpers. All
functions are pure; any function receiving an :class:`Unknown` argument
returns ``UNKNOWN`` (values flow through plans before resources exist).
"""

from __future__ import annotations

import base64
import hashlib
import ipaddress
import json
import re
from typing import Any, Callable, Dict, List

from .diagnostics import CLCEvalError
from .values import UNKNOWN, Unknown, is_unknown, to_string, type_name


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise CLCEvalError(message)


def _as_int(value: Any, what: str) -> int:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{what} must be a number, got {type_name(value)}",
    )
    _require(float(value).is_integer(), f"{what} must be a whole number")
    return int(value)


# -- string functions ---------------------------------------------------


def fn_upper(s: str) -> str:
    _require(isinstance(s, str), "upper() wants a string")
    return s.upper()


def fn_lower(s: str) -> str:
    _require(isinstance(s, str), "lower() wants a string")
    return s.lower()


def fn_title(s: str) -> str:
    _require(isinstance(s, str), "title() wants a string")
    return " ".join(w[:1].upper() + w[1:] for w in s.split(" "))


def fn_trimspace(s: str) -> str:
    _require(isinstance(s, str), "trimspace() wants a string")
    return s.strip()


def fn_trim(s: str, cutset: str) -> str:
    _require(isinstance(s, str), "trim() wants a string")
    return s.strip(cutset)


def fn_trimprefix(s: str, prefix: str) -> str:
    _require(isinstance(s, str), "trimprefix() wants a string")
    return s[len(prefix) :] if s.startswith(prefix) else s


def fn_trimsuffix(s: str, suffix: str) -> str:
    _require(isinstance(s, str), "trimsuffix() wants a string")
    return s[: -len(suffix)] if suffix and s.endswith(suffix) else s


def fn_join(sep: str, items: List[Any]) -> str:
    _require(isinstance(items, list), "join() wants a list")
    return sep.join(to_string(i) for i in items)


def fn_split(sep: str, s: str) -> List[str]:
    _require(isinstance(s, str), "split() wants a string")
    if s == "":
        return []
    return s.split(sep)


def fn_replace(s: str, old: str, new: str) -> str:
    _require(isinstance(s, str), "replace() wants a string")
    if len(old) > 1 and old.startswith("/") and old.endswith("/"):
        return re.sub(old[1:-1], new, s)
    return s.replace(old, new)

def fn_substr(s: str, offset: Any, length: Any) -> str:
    _require(isinstance(s, str), "substr() wants a string")
    off = _as_int(offset, "substr offset")
    ln = _as_int(length, "substr length")
    if ln < 0:
        return s[off:]
    return s[off : off + ln]


def fn_format(fmt: str, *args: Any) -> str:
    _require(isinstance(fmt, str), "format() wants a format string")
    # translate %s/%d/%f/%q/%% to Python formatting
    out: List[str] = []
    arg_iter = iter(args)
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        _require(i + 1 < len(fmt), "format(): dangling %")
        spec = fmt[i + 1]
        i += 2
        if spec == "%":
            out.append("%")
            continue
        try:
            arg = next(arg_iter)
        except StopIteration:
            raise CLCEvalError("format(): not enough arguments")
        if spec == "s":
            out.append(to_string(arg))
        elif spec == "d":
            out.append(str(_as_int(arg, "format %d argument")))
        elif spec == "f":
            out.append(f"{float(arg):f}")
        elif spec == "q":
            out.append(json.dumps(to_string(arg)))
        else:
            raise CLCEvalError(f"format(): unsupported verb %{spec}")
    return "".join(out)


def fn_formatlist(fmt: str, *args: Any) -> List[str]:
    lists = [a for a in args if isinstance(a, list)]
    length = max((len(l) for l in lists), default=1)
    for l in lists:
        _require(len(l) == length, "formatlist(): list lengths differ")
    result = []
    for i in range(length):
        row = [a[i] if isinstance(a, list) else a for a in args]
        result.append(fn_format(fmt, *row))
    return result


def fn_startswith(s: str, prefix: str) -> bool:
    _require(isinstance(s, str), "startswith() wants a string")
    return s.startswith(prefix)


def fn_endswith(s: str, suffix: str) -> bool:
    _require(isinstance(s, str), "endswith() wants a string")
    return s.endswith(suffix)


def fn_strcontains(s: str, sub: str) -> bool:
    _require(isinstance(s, str), "strcontains() wants a string")
    return sub in s


def fn_regex(pattern: str, s: str) -> Any:
    match = re.search(pattern, s)
    _require(match is not None, f"regex(): pattern {pattern!r} did not match")
    assert match is not None
    if match.groupdict():
        return dict(match.groupdict())
    if match.groups():
        groups = list(match.groups())
        return groups if len(groups) > 1 else groups[0]
    return match.group(0)


def fn_regexall(pattern: str, s: str) -> List[Any]:
    out = []
    for match in re.finditer(pattern, s):
        if match.groups():
            groups = list(match.groups())
            out.append(groups if len(groups) > 1 else groups[0])
        else:
            out.append(match.group(0))
    return out


# -- numeric functions ----------------------------------------------------


def fn_abs(x: Any) -> Any:
    _require(isinstance(x, (int, float)), "abs() wants a number")
    return abs(x)


def fn_ceil(x: Any) -> int:
    import math

    _require(isinstance(x, (int, float)), "ceil() wants a number")
    return math.ceil(x)


def fn_floor(x: Any) -> int:
    import math

    _require(isinstance(x, (int, float)), "floor() wants a number")
    return math.floor(x)


def fn_min(*args: Any) -> Any:
    _require(len(args) > 0, "min() wants at least one argument")
    return min(args)


def fn_max(*args: Any) -> Any:
    _require(len(args) > 0, "max() wants at least one argument")
    return max(args)


def fn_pow(base: Any, exp: Any) -> Any:
    return float(base) ** float(exp)


def fn_signum(x: Any) -> int:
    _require(isinstance(x, (int, float)), "signum() wants a number")
    return (x > 0) - (x < 0)


def fn_parseint(s: Any, base: Any = 10) -> int:
    _require(isinstance(s, str), "parseint() wants a string")
    try:
        return int(s, _as_int(base, "parseint base"))
    except ValueError:
        raise CLCEvalError(f"parseint(): cannot parse {s!r}")


# -- collection functions ---------------------------------------------------


def fn_length(x: Any) -> int:
    _require(isinstance(x, (str, list, dict)), "length() wants string/list/map")
    return len(x)


def fn_element(items: List[Any], index: Any) -> Any:
    _require(isinstance(items, list), "element() wants a list")
    _require(len(items) > 0, "element() on empty list")
    return items[_as_int(index, "element index") % len(items)]


def fn_concat(*lists: Any) -> List[Any]:
    out: List[Any] = []
    for l in lists:
        _require(isinstance(l, list), "concat() wants lists")
        out.extend(l)
    return out


def fn_contains(collection: Any, value: Any) -> bool:
    _require(isinstance(collection, (list, dict)), "contains() wants list/map")
    if isinstance(collection, dict):
        return value in collection
    return value in collection


def fn_index(items: List[Any], value: Any) -> int:
    _require(isinstance(items, list), "index() wants a list")
    try:
        return items.index(value)
    except ValueError:
        raise CLCEvalError(f"index(): {value!r} not found")


def fn_keys(m: Dict[str, Any]) -> List[str]:
    _require(isinstance(m, dict), "keys() wants a map")
    return sorted(m.keys())


def fn_values(m: Dict[str, Any]) -> List[Any]:
    _require(isinstance(m, dict), "values() wants a map")
    return [m[k] for k in sorted(m.keys())]


def fn_lookup(m: Dict[str, Any], key: str, default: Any = None) -> Any:
    _require(isinstance(m, dict), "lookup() wants a map")
    if key in m:
        return m[key]
    if default is not None:
        return default
    raise CLCEvalError(f"lookup(): key {key!r} not found and no default given")


def fn_merge(*maps: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for m in maps:
        _require(isinstance(m, dict), "merge() wants maps")
        out.update(m)
    return out


def fn_flatten(items: Any) -> List[Any]:
    _require(isinstance(items, list), "flatten() wants a list")
    out: List[Any] = []
    for item in items:
        if isinstance(item, list):
            out.extend(fn_flatten(item))
        else:
            out.append(item)
    return out


def fn_distinct(items: List[Any]) -> List[Any]:
    _require(isinstance(items, list), "distinct() wants a list")
    out: List[Any] = []
    for item in items:
        if item not in out:
            out.append(item)
    return out


def fn_sort(items: List[Any]) -> List[Any]:
    _require(isinstance(items, list), "sort() wants a list")
    _require(all(isinstance(i, str) for i in items), "sort() wants strings")
    return sorted(items)


def fn_reverse(items: List[Any]) -> List[Any]:
    _require(isinstance(items, list), "reverse() wants a list")
    return list(reversed(items))


def fn_slice(items: List[Any], start: Any, end: Any) -> List[Any]:
    _require(isinstance(items, list), "slice() wants a list")
    s = _as_int(start, "slice start")
    e = _as_int(end, "slice end")
    _require(0 <= s <= e <= len(items), "slice(): index out of range")
    return items[s:e]


def fn_range(*args: Any) -> List[int]:
    ints = [_as_int(a, "range argument") for a in args]
    _require(1 <= len(ints) <= 3, "range() wants 1-3 arguments")
    return list(range(*ints))


def fn_zipmap(keys: List[str], values: List[Any]) -> Dict[str, Any]:
    _require(isinstance(keys, list) and isinstance(values, list), "zipmap() wants lists")
    _require(len(keys) == len(values), "zipmap(): length mismatch")
    return dict(zip(keys, values))


def fn_coalesce(*args: Any) -> Any:
    for a in args:
        if a is not None and a != "":
            return a
    raise CLCEvalError("coalesce(): all arguments are null/empty")


def fn_coalescelist(*args: Any) -> Any:
    for a in args:
        if isinstance(a, list) and a:
            return a
    raise CLCEvalError("coalescelist(): all lists empty")


def fn_compact(items: List[Any]) -> List[str]:
    _require(isinstance(items, list), "compact() wants a list")
    return [i for i in items if isinstance(i, str) and i != ""]


def fn_setunion(*sets: Any) -> List[Any]:
    out: List[Any] = []
    for s in sets:
        _require(isinstance(s, list), "setunion() wants lists")
        for item in s:
            if item not in out:
                out.append(item)
    return out


def fn_setintersection(*sets: Any) -> List[Any]:
    _require(len(sets) > 0, "setintersection() wants at least one list")
    out = [i for i in sets[0]]
    for s in sets[1:]:
        out = [i for i in out if i in s]
    return fn_distinct(out)


def fn_setsubtract(a: List[Any], b: List[Any]) -> List[Any]:
    return [i for i in fn_distinct(a) if i not in b]


def fn_chunklist(items: List[Any], size: Any) -> List[List[Any]]:
    n = _as_int(size, "chunklist size")
    _require(n > 0, "chunklist(): size must be positive")
    return [items[i : i + n] for i in range(0, len(items), n)]


def fn_one(items: Any) -> Any:
    if isinstance(items, list):
        _require(len(items) <= 1, "one(): list has more than one element")
        return items[0] if items else None
    return items


def fn_tolist(x: Any) -> List[Any]:
    if isinstance(x, list):
        return x
    raise CLCEvalError(f"tolist(): cannot convert {type_name(x)}")


def fn_tomap(x: Any) -> Dict[str, Any]:
    if isinstance(x, dict):
        return x
    raise CLCEvalError(f"tomap(): cannot convert {type_name(x)}")


def fn_toset(x: Any) -> List[Any]:
    _require(isinstance(x, list), "toset() wants a list")
    return fn_distinct(x)


def fn_tostring(x: Any) -> str:
    _require(
        x is None or isinstance(x, (str, bool, int, float)),
        "tostring() wants a primitive",
    )
    return to_string(x)


def fn_tonumber(x: Any) -> Any:
    if isinstance(x, bool):
        raise CLCEvalError("tonumber(): cannot convert bool")
    if isinstance(x, (int, float)):
        return x
    if isinstance(x, str):
        try:
            return int(x)
        except ValueError:
            try:
                return float(x)
            except ValueError:
                raise CLCEvalError(f"tonumber(): cannot parse {x!r}")
    raise CLCEvalError(f"tonumber(): cannot convert {type_name(x)}")


def fn_tobool(x: Any) -> bool:
    if isinstance(x, bool):
        return x
    if x == "true":
        return True
    if x == "false":
        return False
    raise CLCEvalError(f"tobool(): cannot convert {x!r}")


# -- encoding functions -------------------------------------------------------


def fn_jsonencode(x: Any) -> str:
    return json.dumps(x, sort_keys=True, separators=(",", ":"))


def fn_jsondecode(s: str) -> Any:
    _require(isinstance(s, str), "jsondecode() wants a string")
    try:
        return json.loads(s)
    except json.JSONDecodeError as exc:
        raise CLCEvalError(f"jsondecode(): {exc}")


def fn_base64encode(s: str) -> str:
    _require(isinstance(s, str), "base64encode() wants a string")
    return base64.b64encode(s.encode()).decode()


def fn_base64decode(s: str) -> str:
    _require(isinstance(s, str), "base64decode() wants a string")
    try:
        return base64.b64decode(s.encode()).decode()
    except Exception:
        raise CLCEvalError("base64decode(): invalid input")


def fn_md5(s: str) -> str:
    return hashlib.md5(s.encode()).hexdigest()


def fn_sha1(s: str) -> str:
    return hashlib.sha1(s.encode()).hexdigest()


def fn_sha256(s: str) -> str:
    return hashlib.sha256(s.encode()).hexdigest()


def fn_uuidv5(namespace: str, name: str) -> str:
    import uuid

    ns = uuid.UUID(namespace) if "-" in namespace else uuid.NAMESPACE_DNS
    return str(uuid.uuid5(ns, name))


# -- network (CIDR) functions ---------------------------------------------


def fn_cidrsubnet(prefix: str, newbits: Any, netnum: Any) -> str:
    _require(isinstance(prefix, str), "cidrsubnet() wants a CIDR string")
    try:
        net = ipaddress.ip_network(prefix, strict=False)
    except ValueError as exc:
        raise CLCEvalError(f"cidrsubnet(): {exc}")
    bits = _as_int(newbits, "cidrsubnet newbits")
    num = _as_int(netnum, "cidrsubnet netnum")
    new_prefix = net.prefixlen + bits
    _require(new_prefix <= net.max_prefixlen, "cidrsubnet(): prefix too long")
    _require(0 <= num < 2**bits, "cidrsubnet(): netnum out of range")
    # The nth child block starts at base + n * child-size; computing it
    # directly is O(1) where enumerating ``net.subnets()`` up to ``num``
    # materialised every sibling (2^bits networks per call).
    try:
        child_size = 1 << (net.max_prefixlen - new_prefix)
        base = int(net.network_address) + num * child_size
        subnet = ipaddress.ip_network((base, new_prefix), strict=True)
    except ValueError as exc:
        raise CLCEvalError(f"cidrsubnet(): {exc}")
    return str(subnet)


def fn_cidrhost(prefix: str, hostnum: Any) -> str:
    _require(isinstance(prefix, str), "cidrhost() wants a CIDR string")
    try:
        net = ipaddress.ip_network(prefix, strict=False)
    except ValueError as exc:
        raise CLCEvalError(f"cidrhost(): {exc}")
    num = _as_int(hostnum, "cidrhost hostnum")
    try:
        return str(net[num])
    except IndexError:
        raise CLCEvalError("cidrhost(): host number out of range")


def fn_cidrnetmask(prefix: str) -> str:
    try:
        net = ipaddress.ip_network(prefix, strict=False)
    except ValueError as exc:
        raise CLCEvalError(f"cidrnetmask(): {exc}")
    return str(net.netmask)


def fn_cidrsubnets(prefix: str, *newbits: Any) -> List[str]:
    out: List[str] = []
    try:
        net = ipaddress.ip_network(prefix, strict=False)
    except ValueError as exc:
        raise CLCEvalError(f"cidrsubnets(): {exc}")
    cursor = int(net.network_address)
    for nb in newbits:
        bits = _as_int(nb, "cidrsubnets newbits")
        new_prefix = net.prefixlen + bits
        _require(new_prefix <= net.max_prefixlen, "cidrsubnets(): prefix too long")
        size = 2 ** (net.max_prefixlen - new_prefix)
        if cursor % size:
            cursor += size - (cursor % size)
        subnet = ipaddress.ip_network((cursor, new_prefix))
        _require(
            subnet.subnet_of(net), "cidrsubnets(): ran out of space in prefix"
        )
        out.append(str(subnet))
        cursor += size
    return out


# -- registry ---------------------------------------------------------------

FUNCTIONS: Dict[str, Callable[..., Any]] = {
    # strings
    "upper": fn_upper,
    "lower": fn_lower,
    "title": fn_title,
    "trimspace": fn_trimspace,
    "trim": fn_trim,
    "trimprefix": fn_trimprefix,
    "trimsuffix": fn_trimsuffix,
    "join": fn_join,
    "split": fn_split,
    "replace": fn_replace,
    "substr": fn_substr,
    "format": fn_format,
    "formatlist": fn_formatlist,
    "startswith": fn_startswith,
    "endswith": fn_endswith,
    "strcontains": fn_strcontains,
    "regex": fn_regex,
    "regexall": fn_regexall,
    # numbers
    "abs": fn_abs,
    "ceil": fn_ceil,
    "floor": fn_floor,
    "min": fn_min,
    "max": fn_max,
    "pow": fn_pow,
    "signum": fn_signum,
    "parseint": fn_parseint,
    # collections
    "length": fn_length,
    "element": fn_element,
    "concat": fn_concat,
    "contains": fn_contains,
    "index": fn_index,
    "keys": fn_keys,
    "values": fn_values,
    "lookup": fn_lookup,
    "merge": fn_merge,
    "flatten": fn_flatten,
    "distinct": fn_distinct,
    "sort": fn_sort,
    "reverse": fn_reverse,
    "slice": fn_slice,
    "range": fn_range,
    "zipmap": fn_zipmap,
    "coalesce": fn_coalesce,
    "coalescelist": fn_coalescelist,
    "compact": fn_compact,
    "setunion": fn_setunion,
    "setintersection": fn_setintersection,
    "setsubtract": fn_setsubtract,
    "chunklist": fn_chunklist,
    "one": fn_one,
    # conversion
    "tolist": fn_tolist,
    "tomap": fn_tomap,
    "toset": fn_toset,
    "tostring": fn_tostring,
    "tonumber": fn_tonumber,
    "tobool": fn_tobool,
    # encoding
    "jsonencode": fn_jsonencode,
    "jsondecode": fn_jsondecode,
    "base64encode": fn_base64encode,
    "base64decode": fn_base64decode,
    "md5": fn_md5,
    "sha1": fn_sha1,
    "sha256": fn_sha256,
    "uuidv5": fn_uuidv5,
    # network
    "cidrsubnet": fn_cidrsubnet,
    "cidrhost": fn_cidrhost,
    "cidrnetmask": fn_cidrnetmask,
    "cidrsubnets": fn_cidrsubnets,
}


def call_function(name: str, args: List[Any]) -> Any:
    """Dispatch a CLC function call, with unknown-propagation."""
    fn = FUNCTIONS.get(name)
    if fn is None:
        raise CLCEvalError(f"unknown function {name!r}")
    if any(is_unknown(a) for a in args):
        return UNKNOWN
    try:
        return fn(*args)
    except CLCEvalError:
        raise
    except TypeError as exc:
        raise CLCEvalError(f"{name}(): {exc}")
