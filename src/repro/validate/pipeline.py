"""The staged validation pipeline (3.2).

Three levels, matching the E6 ablation:

* ``syntax`` -- what ``terraform validate`` does today: parse + basic
  structural checks (the baseline);
* ``types``  -- plus semantic type checking;
* ``rules``  -- plus cloud-specific constraint rules (built-in and/or
  mined), i.e. the full cloudless validator.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Union

from ..graph.builder import GraphBuildError
from ..lang.config import Configuration
from ..lang.diagnostics import CLCError, Diagnostic, DiagnosticSink, Severity
from ..types.checker import TypeChecker
from ..types.schema import SchemaRegistry
from .rules import Rule, RuleEngine, ValidationContext

LEVEL_SYNTAX = "syntax"
LEVEL_TYPES = "types"
LEVEL_RULES = "rules"
LEVELS = (LEVEL_SYNTAX, LEVEL_TYPES, LEVEL_RULES)


@dataclasses.dataclass
class ValidationReport:
    """Outcome of one validation run."""

    level: str
    diagnostics: List[Diagnostic]
    stage_errors: Dict[str, int]

    @property
    def ok(self) -> bool:
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def first_error(self) -> Optional[Diagnostic]:
        errors = self.errors
        return errors[0] if errors else None

    def __str__(self) -> str:
        if self.ok:
            return f"validation ({self.level}): ok"
        lines = [f"validation ({self.level}): {len(self.errors)} error(s)"]
        lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)


class ValidationPipeline:
    """Runs validation up to a configured level."""

    def __init__(
        self,
        registry: Optional[SchemaRegistry] = None,
        level: str = LEVEL_RULES,
        extra_rules: Sequence[Rule] = (),
        use_builtin_rules: bool = True,
    ):
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}")
        self.registry = registry or SchemaRegistry.default()
        self.level = level
        if use_builtin_rules:
            self.engine = RuleEngine.default()
            self.engine.rules.extend(extra_rules)
        else:
            self.engine = RuleEngine(list(extra_rules))

    def validate(
        self,
        config_or_sources: Union[Configuration, str, Dict[str, str]],
        variables: Optional[Dict[str, Any]] = None,
        loader=None,
    ) -> ValidationReport:
        sink = DiagnosticSink()
        stage_errors: Dict[str, int] = {}

        # stage 0: syntax & structure
        if isinstance(config_or_sources, Configuration):
            config = config_or_sources
        else:
            try:
                config = Configuration.parse(config_or_sources)
            except CLCError as exc:
                sink.error(str(exc), code="SYNTAX")
                return ValidationReport(
                    self.level, sink.diagnostics, {"syntax": len(sink.errors)}
                )
        sink.extend(config.diagnostics)
        stage_errors["syntax"] = len(sink.errors)
        if self.level == LEVEL_SYNTAX or sink.has_errors():
            return ValidationReport(self.level, sink.diagnostics, stage_errors)

        # stage 1: semantic types
        type_sink = TypeChecker(self.registry, config).check()
        sink.extend(type_sink)
        stage_errors["types"] = len(type_sink.errors)
        if self.level == LEVEL_TYPES or sink.has_errors():
            return ValidationReport(self.level, sink.diagnostics, stage_errors)

        # stage 2: cloud-specific rules (needs the expanded graph)
        try:
            ctx = ValidationContext.build(
                config, self.registry, variables=variables, loader=loader
            )
        except (GraphBuildError, CLCError) as exc:
            sink.error(str(exc), code="GRAPH")
            stage_errors["rules"] = 1
            return ValidationReport(self.level, sink.diagnostics, stage_errors)
        rule_sink = self.engine.run(ctx)
        sink.extend(rule_sink)
        stage_errors["rules"] = len(rule_sink.errors)
        return ValidationReport(self.level, sink.diagnostics, stage_errors)


def validate(
    config_or_sources: Union[Configuration, str, Dict[str, str]],
    level: str = LEVEL_RULES,
    registry: Optional[SchemaRegistry] = None,
) -> ValidationReport:
    """Convenience one-shot validation."""
    return ValidationPipeline(registry=registry, level=level).validate(
        config_or_sources
    )
