"""AWS-specific compile-time constraint rules (3.2)."""

from __future__ import annotations

import ipaddress
from typing import Dict, List

from ...lang.diagnostics import DiagnosticSink
from ..rules import Rule, RuleInfo, ValidationContext


class AwsSubnetWithinVpcRule(Rule):
    """Subnet CIDR must sit inside its VPC CIDR and not overlap
    siblings -- the compile-time twin of InvalidSubnet.Range/Conflict."""

    info = RuleInfo(
        "AWS001",
        "subnet cidr_block must be inside the VPC and not overlap siblings",
        "aws",
    )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        by_vpc: Dict[str, List] = {}
        for subnet in ctx.instances_of_type("aws_subnet"):
            cidr = ctx.known_attr(subnet, "cidr_block")
            vpcs = [
                n
                for n in ctx.referenced_instances(subnet, "vpc_id")
                if n.address.type == "aws_vpc"
            ]
            if not isinstance(cidr, str) or not vpcs:
                continue
            vpc = vpcs[0]
            try:
                subnet_net = ipaddress.ip_network(cidr, strict=True)
            except ValueError:
                sink.error(
                    f"{subnet.id}: {cidr!r} is not a valid CIDR block",
                    ctx.span_of(subnet, "cidr_block"),
                    self.info.rule_id,
                )
                continue
            vpc_cidr = ctx.known_attr(vpc, "cidr_block")
            if isinstance(vpc_cidr, str):
                try:
                    vpc_net = ipaddress.ip_network(vpc_cidr, strict=True)
                except ValueError:
                    vpc_net = None
                if vpc_net is not None and not subnet_net.subnet_of(vpc_net):
                    sink.error(
                        f"{subnet.id}: cidr_block {cidr} is outside "
                        f"{vpc.id}'s range {vpc_cidr}",
                        ctx.span_of(subnet, "cidr_block"),
                        self.info.rule_id,
                    )
            by_vpc.setdefault(vpc.id, []).append((subnet, subnet_net))
        for vpc_id, members in by_vpc.items():
            for i, (subnet_a, net_a) in enumerate(members):
                for subnet_b, net_b in members[i + 1 :]:
                    if net_a.overlaps(net_b):
                        sink.error(
                            f"{subnet_b.id}: cidr_block {net_b} overlaps "
                            f"{subnet_a.id} ({net_a}) in {vpc_id}",
                            ctx.span_of(subnet_b, "cidr_block"),
                            self.info.rule_id,
                        )


class AwsVpnTunnelGatewayRule(Rule):
    """VPN tunnels must attach to a VPN gateway, not another type."""

    info = RuleInfo(
        "AWS002", "aws_vpn_tunnel.gateway_id must reference aws_vpn_gateway", "aws"
    )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        for tunnel in ctx.instances_of_type("aws_vpn_tunnel"):
            for target in ctx.referenced_instances(tunnel, "gateway_id"):
                if (
                    target.address.mode == "managed"
                    and target.address.type != "aws_vpn_gateway"
                ):
                    sink.error(
                        f"{tunnel.id}: gateway_id references "
                        f"{target.id}, which is a {target.address.type}, "
                        f"not an aws_vpn_gateway",
                        ctx.span_of(tunnel, "gateway_id"),
                        self.info.rule_id,
                    )


AWS_RULES = [
    AwsSubnetWithinVpcRule(),
    AwsVpnTunnelGatewayRule(),
]
