"""Provider-specific compile-time constraint rules."""

from .aws import AWS_RULES
from .azure import AZURE_RULES

__all__ = ["AWS_RULES", "AZURE_RULES"]
