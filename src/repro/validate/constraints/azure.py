"""Azure-specific compile-time constraint rules (3.2).

Each rule is the IaC-level twin of a control-plane check in
:mod:`repro.cloud.azure.provider` -- the transformation of cloud-level
constraints into program checks the paper advocates. Where the cloud
says "the specified network interface was not found", the rule says
what is actually wrong and points at the line.
"""

from __future__ import annotations

import ipaddress
from typing import Any, Dict, List, Optional

from ...lang.diagnostics import DiagnosticSink
from ..rules import Rule, RuleInfo, ValidationContext


class AzureVmNicSameRegionRule(Rule):
    """VMs and their attached NICs must share a location.

    The paper's running example: at the cloud level this fails after ~a
    minute of provisioning with an opaque NotFound; here it is a
    compile-time error naming both resources and the fix.
    """

    info = RuleInfo(
        "AZR001",
        "azure_virtual_machine and its network interfaces must be in the "
        "same location",
        "azure",
    )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        for vm in ctx.instances_of_type("azure_virtual_machine"):
            vm_location = ctx.known_attr(vm, "location")
            if not isinstance(vm_location, str):
                continue
            for nic in ctx.referenced_instances(vm, "nic_ids"):
                if nic.address.type != "azure_network_interface":
                    continue
                nic_location = ctx.known_attr(nic, "location")
                if isinstance(nic_location, str) and nic_location != vm_location:
                    sink.error(
                        f"{vm.id}: VM is in {vm_location!r} but its network "
                        f"interface {nic.id} is in {nic_location!r}; Azure "
                        f"requires them to be in the same location",
                        ctx.span_of(vm, "nic_ids"),
                        self.info.rule_id,
                    )


class AzureVmPasswordRule(Rule):
    """admin_password requires disable_password_auth = false, and
    vice versa."""

    info = RuleInfo(
        "AZR002",
        "admin_password and disable_password_auth must agree",
        "azure",
    )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        for vm in ctx.instances_of_type("azure_virtual_machine"):
            password = ctx.known_attr(vm, "password") or ctx.known_attr(
                vm, "admin_password"
            )
            disable = ctx.attr_or_default(vm, "disable_password_auth")
            has_password_attr = "admin_password" in vm.decl.body.attributes
            if has_password_attr and password and disable is not False:
                sink.error(
                    f"{vm.id}: admin_password is set but "
                    f"disable_password_auth is not false; Azure will reject "
                    f"this at deploy time",
                    ctx.span_of(vm, "admin_password"),
                    self.info.rule_id,
                )
            if disable is False and not has_password_attr:
                sink.error(
                    f"{vm.id}: disable_password_auth = false requires "
                    f"admin_password to be set",
                    ctx.span_of(vm, "disable_password_auth"),
                    self.info.rule_id,
                )


class AzureSubnetWithinVnetRule(Rule):
    """Subnet prefixes must sit inside their VNet's address spaces and
    must not overlap sibling subnets."""

    info = RuleInfo(
        "AZR003",
        "subnet address_prefix must be inside the vnet and not overlap "
        "siblings",
        "azure",
    )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        by_vnet: Dict[str, List] = {}
        for subnet in ctx.instances_of_type("azure_subnet"):
            prefix = ctx.known_attr(subnet, "address_prefix")
            vnets = [
                n
                for n in ctx.referenced_instances(subnet, "vnet_id")
                if n.address.type == "azure_virtual_network"
            ]
            if not isinstance(prefix, str) or not vnets:
                continue
            vnet = vnets[0]
            try:
                subnet_net = ipaddress.ip_network(prefix, strict=True)
            except ValueError:
                sink.error(
                    f"{subnet.id}: {prefix!r} is not a valid address prefix",
                    ctx.span_of(subnet, "address_prefix"),
                    self.info.rule_id,
                )
                continue
            spaces = ctx.known_attr(vnet, "address_spaces") or []
            nets = []
            for space in spaces:
                try:
                    nets.append(ipaddress.ip_network(str(space)))
                except ValueError:
                    continue
            if nets and not any(subnet_net.subnet_of(n) for n in nets):
                sink.error(
                    f"{subnet.id}: prefix {prefix} is outside the address "
                    f"spaces of {vnet.id} ({', '.join(map(str, nets))})",
                    ctx.span_of(subnet, "address_prefix"),
                    self.info.rule_id,
                )
            by_vnet.setdefault(vnet.id, []).append((subnet, subnet_net))
        for vnet_id, members in by_vnet.items():
            for i, (subnet_a, net_a) in enumerate(members):
                for subnet_b, net_b in members[i + 1 :]:
                    if net_a.overlaps(net_b):
                        sink.error(
                            f"{subnet_b.id}: prefix {net_b} overlaps "
                            f"{subnet_a.id} ({net_a}) in {vnet_id}",
                            ctx.span_of(subnet_b, "address_prefix"),
                            self.info.rule_id,
                        )


class AzurePeeringOverlapRule(Rule):
    """Peered VNets cannot have overlapping address spaces."""

    info = RuleInfo(
        "AZR004",
        "peered virtual networks must have disjoint address spaces",
        "azure",
    )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        for peering in ctx.instances_of_type("azure_vnet_peering"):
            side_a = self._vnet_spaces(ctx, peering, "vnet_a_id")
            side_b = self._vnet_spaces(ctx, peering, "vnet_b_id")
            if side_a is None or side_b is None:
                continue
            (vnet_a, nets_a), (vnet_b, nets_b) = side_a, side_b
            for net_a in nets_a:
                for net_b in nets_b:
                    if net_a.overlaps(net_b):
                        sink.error(
                            f"{peering.id}: cannot peer {vnet_a.id} and "
                            f"{vnet_b.id}; address spaces {net_a} and "
                            f"{net_b} overlap",
                            ctx.span_of(peering, "vnet_b_id"),
                            self.info.rule_id,
                        )
                        break

    def _vnet_spaces(self, ctx: ValidationContext, peering, attr: str):
        vnets = [
            n
            for n in ctx.referenced_instances(peering, attr)
            if n.address.type == "azure_virtual_network"
        ]
        if not vnets:
            return None
        vnet = vnets[0]
        spaces = ctx.known_attr(vnet, "address_spaces") or []
        nets = []
        for space in spaces:
            try:
                nets.append(ipaddress.ip_network(str(space)))
            except ValueError:
                continue
        return vnet, nets


AZURE_RULES = [
    AzureVmNicSameRegionRule(),
    AzureVmPasswordRule(),
    AzureSubnetWithinVnetRule(),
    AzurePeeringOverlapRule(),
]
