"""Validation: syntax, semantic types, cloud-specific rules, mining
(paper 3.2)."""

from .mining import (
    DeploymentExample,
    MinedEqualityRule,
    MinedImplicationRule,
    ResourceObservation,
    SpecificationMiner,
)
from .pipeline import (
    LEVEL_RULES,
    LEVEL_SYNTAX,
    LEVEL_TYPES,
    LEVELS,
    ValidationPipeline,
    ValidationReport,
    validate,
)
from .rules import (
    DanglingReferenceRule,
    DuplicateNameRule,
    Rule,
    RuleEngine,
    RuleInfo,
    ValidationContext,
)

__all__ = [
    "DanglingReferenceRule",
    "DeploymentExample",
    "DuplicateNameRule",
    "LEVEL_RULES",
    "LEVEL_SYNTAX",
    "LEVEL_TYPES",
    "LEVELS",
    "MinedEqualityRule",
    "MinedImplicationRule",
    "ResourceObservation",
    "Rule",
    "RuleEngine",
    "RuleInfo",
    "SpecificationMiner",
    "ValidationContext",
    "ValidationPipeline",
    "ValidationReport",
    "validate",
]
