"""Specification mining (3.2).

"Our insight is that IaC-style management offers an opportunity to
transform cloud-level constraints into IaC-level program checks, e.g.
through domain-specific customization to existing techniques such as
specification mining." This module learns validation rules from a
corpus of *successfully deployed* configurations (the Encore/ConfigV
recipe): invariants that hold across every healthy example become
checkable rules for new configurations.

Two mined rule families:

* **reference-equality** -- an attribute shared between a resource and
  the resource it references is always equal (e.g. a VM's ``location``
  always equals its NIC's ``location``);
* **implication** -- when attribute X is present, attribute Y always
  has one specific value (e.g. ``admin_password`` present implies
  ``disable_password_auth = false``).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from ..lang.config import Configuration
from ..lang.diagnostics import DiagnosticSink
from ..types.schema import SchemaRegistry
from .rules import Rule, RuleInfo, ValidationContext

_SCALAR = (str, int, float, bool)


@dataclasses.dataclass
class ResourceObservation:
    """One resource instance in a healthy deployment."""

    rtype: str
    attrs: Dict[str, Any]
    #: attr name -> list of (target rtype, target attrs)
    refs: Dict[str, List[Tuple[str, Dict[str, Any]]]]


@dataclasses.dataclass
class DeploymentExample:
    """A full healthy estate: the unit of mining evidence."""

    resources: List[ResourceObservation]

    @classmethod
    def from_config(
        cls,
        config: Configuration,
        registry: Optional[SchemaRegistry] = None,
    ) -> "DeploymentExample":
        ctx = ValidationContext.build(config, registry)
        observations: List[ResourceObservation] = []
        for node in ctx.instances():
            if node.address.mode != "managed":
                continue
            attrs = {
                k: v
                for k, v in ctx.attrs_of(node).items()
                if isinstance(v, _SCALAR)
            }
            refs: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
            for attr_name in node.decl.body.attributes:
                targets = ctx.referenced_instances(node, attr_name)
                if not targets:
                    continue
                refs[attr_name] = [
                    (
                        t.address.type,
                        {
                            k: v
                            for k, v in ctx.attrs_of(t).items()
                            if isinstance(v, _SCALAR)
                        },
                    )
                    for t in targets
                    if t.address.mode == "managed"
                ]
            observations.append(
                ResourceObservation(
                    rtype=node.address.type, attrs=attrs, refs=refs
                )
            )
        return cls(resources=observations)


@dataclasses.dataclass
class MinedEqualitySpec:
    rtype: str
    ref_attr: str
    target_type: str
    shared_attr: str
    support: int


@dataclasses.dataclass
class MinedImplicationSpec:
    rtype: str
    antecedent_attr: str
    consequent_attr: str
    consequent_value: Any
    support: int


class MinedEqualityRule(Rule):
    """Checks a learned cross-resource equality invariant."""

    def __init__(self, spec: MinedEqualitySpec):
        self.spec = spec
        self.info = RuleInfo(
            f"MINED-EQ:{spec.rtype}.{spec.shared_attr}",
            f"{spec.rtype}.{spec.shared_attr} must equal "
            f"{spec.target_type}.{spec.shared_attr} referenced via "
            f"{spec.ref_attr} (mined, support={spec.support})",
        )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        for node in ctx.instances_of_type(self.spec.rtype):
            own = ctx.known_attr(node, self.spec.shared_attr)
            if not isinstance(own, _SCALAR):
                continue
            for target in ctx.referenced_instances(node, self.spec.ref_attr):
                if target.address.type != self.spec.target_type:
                    continue
                theirs = ctx.known_attr(target, self.spec.shared_attr)
                if isinstance(theirs, _SCALAR) and theirs != own:
                    sink.error(
                        f"{node.id}: {self.spec.shared_attr}={own!r} differs "
                        f"from referenced {target.id} "
                        f"({self.spec.shared_attr}={theirs!r}) "
                        f"[mined invariant, support={self.spec.support}]",
                        ctx.span_of(node, self.spec.ref_attr),
                        self.info.rule_id,
                    )


class MinedImplicationRule(Rule):
    """Checks a learned presence-implies-value invariant."""

    def __init__(self, spec: MinedImplicationSpec):
        self.spec = spec
        self.info = RuleInfo(
            f"MINED-IMP:{spec.rtype}.{spec.antecedent_attr}",
            f"when {spec.rtype}.{spec.antecedent_attr} is set, "
            f"{spec.consequent_attr} must be {spec.consequent_value!r} "
            f"(mined, support={spec.support})",
        )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        for node in ctx.instances_of_type(self.spec.rtype):
            if self.spec.antecedent_attr not in node.decl.body.attributes:
                continue
            actual = ctx.attr_or_default(node, self.spec.consequent_attr)
            if actual != self.spec.consequent_value:
                sink.error(
                    f"{node.id}: {self.spec.antecedent_attr} is set, so "
                    f"{self.spec.consequent_attr} must be "
                    f"{self.spec.consequent_value!r} (found {actual!r}) "
                    f"[mined invariant, support={self.spec.support}]",
                    ctx.span_of(node, self.spec.antecedent_attr),
                    self.info.rule_id,
                )


class SpecificationMiner:
    """Mines invariants from healthy deployment examples."""

    def __init__(self, min_support: int = 3):
        self.min_support = min_support

    def mine(self, examples: List[DeploymentExample]) -> List[Rule]:
        return [
            MinedEqualityRule(spec) for spec in self._mine_equalities(examples)
        ] + [
            MinedImplicationRule(spec)
            for spec in self._mine_implications(examples)
        ]

    # -- equality invariants --------------------------------------------------

    def _mine_equalities(
        self, examples: List[DeploymentExample]
    ) -> List[MinedEqualitySpec]:
        # (rtype, ref_attr, target_type, shared_attr) -> [equal?, ...]
        evidence: Dict[Tuple[str, str, str, str], List[bool]] = defaultdict(list)
        for example in examples:
            for obs in example.resources:
                for ref_attr, targets in obs.refs.items():
                    for target_type, target_attrs in targets:
                        shared = set(obs.attrs) & set(target_attrs)
                        for attr in shared:
                            if attr in ("name", "id"):
                                continue
                            key = (obs.rtype, ref_attr, target_type, attr)
                            evidence[key].append(
                                obs.attrs[attr] == target_attrs[attr]
                            )
        specs: List[MinedEqualitySpec] = []
        for (rtype, ref_attr, target_type, attr), outcomes in sorted(
            evidence.items()
        ):
            if len(outcomes) >= self.min_support and all(outcomes):
                specs.append(
                    MinedEqualitySpec(
                        rtype=rtype,
                        ref_attr=ref_attr,
                        target_type=target_type,
                        shared_attr=attr,
                        support=len(outcomes),
                    )
                )
        return specs

    # -- implication invariants -------------------------------------------------

    def _mine_implications(
        self, examples: List[DeploymentExample]
    ) -> List[MinedImplicationSpec]:
        # the attribute universe per rtype: an absent consequent is
        # contrary evidence, not a non-observation -- otherwise every
        # always-set attribute spuriously "implies" every co-occurring
        # value
        universe: Dict[str, set] = defaultdict(set)
        for example in examples:
            for obs in example.resources:
                universe[obs.rtype] |= set(obs.attrs)

        # (rtype, antecedent, consequent) -> list of consequent values
        evidence: Dict[Tuple[str, str, str], List[Any]] = defaultdict(list)
        for example in examples:
            for obs in example.resources:
                present = [
                    a for a, v in obs.attrs.items() if v is not None
                ]
                for antecedent in present:
                    for consequent in universe[obs.rtype]:
                        if antecedent == consequent:
                            continue
                        if consequent in ("name", "id"):
                            continue
                        evidence[(obs.rtype, antecedent, consequent)].append(
                            obs.attrs.get(consequent)
                        )
        specs: List[MinedImplicationSpec] = []
        for (rtype, antecedent, consequent), values in sorted(
            evidence.items(), key=lambda kv: str(kv[0])
        ):
            if len(values) < self.min_support:
                continue
            distinct = {repr(v) for v in values}
            if len(distinct) != 1 or values[0] is None:
                continue
            # skip tautologies: the consequent value is just the default
            # everywhere, with or without the antecedent
            all_values = [
                obs.attrs.get(consequent)
                for example in examples
                for obs in example.resources
                if obs.rtype == rtype
            ]
            if len({repr(v) for v in all_values}) == 1:
                continue
            specs.append(
                MinedImplicationSpec(
                    rtype=rtype,
                    antecedent_attr=antecedent,
                    consequent_attr=consequent,
                    consequent_value=values[0],
                    support=len(values),
                )
            )
        return specs
