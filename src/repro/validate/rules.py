"""Cloud-specific validation rule engine (3.2).

Rules see a :class:`ValidationContext`: every expanded resource instance
with its statically-evaluated attributes (unknowns where values depend
on deployment), plus helpers to follow references between instances.
This is what lets an IaC-level check express "the VM and its NIC must be
in the same region" *before* any resource exists.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from ..graph.builder import ResourceGraph, ResourceNode, build_graph
from ..lang.config import Configuration
from ..lang.diagnostics import DiagnosticSink
from ..lang.references import extract_references
from ..lang.values import is_unknown
from ..types.schema import SchemaRegistry


class ValidationContext:
    """Expanded instances + evaluated attributes for rule checking."""

    def __init__(
        self,
        config: Configuration,
        graph: ResourceGraph,
        registry: SchemaRegistry,
    ):
        self.config = config
        self.graph = graph
        self.registry = registry
        self._attr_cache: Dict[str, Dict[str, Any]] = {}

    @classmethod
    def build(
        cls,
        config: Configuration,
        registry: Optional[SchemaRegistry] = None,
        variables: Optional[Dict[str, Any]] = None,
        loader=None,
    ) -> "ValidationContext":
        registry = registry or SchemaRegistry.default()
        graph = build_graph(config, variables=variables, loader=loader)
        return cls(config, graph, registry)

    # -- instance access ---------------------------------------------------

    def instances(self) -> List[ResourceNode]:
        return [self.graph.nodes[nid] for nid in sorted(self.graph.nodes)]

    def instances_of_type(self, rtype: str) -> List[ResourceNode]:
        return [n for n in self.instances() if n.address.type == rtype]

    def attrs_of(self, node: ResourceNode) -> Dict[str, Any]:
        """Evaluated attributes (unknowns for deploy-time values)."""
        if node.id not in self._attr_cache:
            try:
                self._attr_cache[node.id] = node.evaluate_attrs()
            except Exception:
                self._attr_cache[node.id] = {}
        return self._attr_cache[node.id]

    def known_attr(self, node: ResourceNode, name: str) -> Any:
        """Attribute value if statically known, else None."""
        value = self.attrs_of(node).get(name)
        if value is None or is_unknown(value):
            return None
        return value

    def attr_or_default(self, node: ResourceNode, name: str) -> Any:
        """known_attr, falling back to the schema default."""
        value = self.known_attr(node, name)
        if value is not None:
            return value
        aspec = self.registry.attr_spec(node.address.type, name)
        return aspec.default if aspec else None

    def referenced_instances(
        self, node: ResourceNode, attr_name: str
    ) -> List[ResourceNode]:
        """Instances statically referenced by one attribute expression."""
        attr = node.decl.body.attributes.get(attr_name)
        if attr is None:
            return []
        out: List[ResourceNode] = []
        for ref in sorted(extract_references(attr.expr)):
            if ref.kind not in ("resource", "data"):
                continue
            mode = "managed" if ref.kind == "resource" else "data"
            key = (node.address.module_path, mode, ref.type, ref.name)
            for nid in self.graph.decl_instances.get(key, []):
                out.append(self.graph.nodes[nid])
        return out

    def span_of(self, node: ResourceNode, attr_name: str = ""):
        attr = node.decl.body.attributes.get(attr_name)
        if attr is not None:
            return attr.span
        return node.decl.span


@dataclasses.dataclass
class RuleInfo:
    """Static description of a rule (for docs and reports)."""

    rule_id: str
    description: str
    provider: str = ""  # "" = provider-agnostic


class Rule:
    """Base class for validation rules."""

    info = RuleInfo("RULE000", "abstract rule")

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        raise NotImplementedError


class DuplicateNameRule(Rule):
    """Two instances of one type sharing a literal name will collide."""

    info = RuleInfo(
        "GEN001", "resource names must be unique within a type and region"
    )

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        seen: Dict[tuple, ResourceNode] = {}
        for node in ctx.instances():
            if node.address.mode != "managed":
                continue
            name = ctx.known_attr(node, "name")
            if not isinstance(name, str):
                continue
            location = ctx.known_attr(node, "location") or ""
            key = (node.address.type, location, name)
            if key in seen:
                sink.error(
                    f"{node.id}: name {name!r} duplicates "
                    f"{seen[key].id} (cloud will reject the second create)",
                    ctx.span_of(node, "name"),
                    self.info.rule_id,
                )
            else:
                seen[key] = node


class DanglingReferenceRule(Rule):
    """References to resource declarations that do not exist."""

    info = RuleInfo("GEN002", "expressions must reference declared resources")

    def check(self, ctx: ValidationContext, sink: DiagnosticSink) -> None:
        for node in ctx.instances():
            for ref in sorted(node.decl.references()):
                if ref.kind == "resource":
                    key = (node.address.module_path, "managed", ref.type, ref.name)
                elif ref.kind == "data":
                    key = (node.address.module_path, "data", ref.type, ref.name)
                else:
                    continue
                if key not in ctx.graph.decl_instances:
                    sink.error(
                        f"{node.id}: reference to undeclared {ref}",
                        node.decl.span,
                        self.info.rule_id,
                    )


class RuleEngine:
    """Runs a rule set over a context, accumulating diagnostics."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)

    def run(self, ctx: ValidationContext) -> DiagnosticSink:
        sink = DiagnosticSink()
        for rule in self.rules:
            rule.check(ctx, sink)
        return sink

    @classmethod
    def default(cls) -> "RuleEngine":
        """Engine with every built-in generic + provider rule."""
        from .constraints.aws import AWS_RULES
        from .constraints.azure import AZURE_RULES

        return cls(
            [DuplicateNameRule(), DanglingReferenceRule()]
            + list(AWS_RULES)
            + list(AZURE_RULES)
        )
