"""Crash recovery: replay the intent journal against the live clouds.

The resume half of the crash-safe apply path. After a process death the
intent journal (:mod:`repro.deploy.wal`) holds the crashed run's
intents, some without commit markers. :class:`CrashRecovery` classifies
every open intent by *probing the control plane* -- the cloud, not the
state file, is the source of truth about what actually happened:

* **committed** -- the intent has a commit marker; state already
  describes the outcome. Nothing to do.
* **orphaned** -- an open *create* whose idempotency token maps to a
  live resource: the cloud finished the call but the process died
  before the state commit. The resource is adopted into state via the
  existing ``ADOPT`` reconcile action, under the address the intent
  recorded.
* **landed** -- an open *delete* whose target id no longer exists
  cloud-side: the delete finished; the state entry is removed.
* **never-started** -- no cloud-side evidence. The re-planned apply
  simply does the work again (creates re-send the *same* token, so even
  a probe miss cannot duplicate).

Open *updates* are always classified never-started: updates are
idempotent at the attribute level, so re-sending one converges
regardless of whether the crashed attempt landed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..addressing import ResourceAddress
from ..cloud.gateway import CloudGateway
from ..drift.detector import DriftFinding
from ..drift.reconcile import ADOPT, Reconciler
from ..state.document import StateDocument
from .wal import IntentJournal, IntentRecord

COMMITTED = "committed"
ORPHANED = "orphaned"
LANDED = "landed"
NEVER_STARTED = "never-started"
ABORTED = "aborted"
QUARANTINED = "quarantined"


@dataclasses.dataclass
class RecoveryAction:
    """The classification (and repair, if any) of one journaled intent."""

    intent: IntentRecord
    classification: str
    performed: str = ""


@dataclasses.dataclass
class RecoveryReport:
    """What recovery found and fixed before the apply continues."""

    run_id: str
    actions: List[RecoveryAction] = dataclasses.field(default_factory=list)
    adopted: List[str] = dataclasses.field(default_factory=list)
    removed: List[str] = dataclasses.field(default_factory=list)

    def count(self, classification: str) -> int:
        return sum(
            1 for a in self.actions if a.classification == classification
        )

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for action in self.actions:
            out[action.classification] = out.get(action.classification, 0) + 1
        return out


class CrashRecovery:
    """Classify a crashed run's intents and repair state accordingly."""

    def __init__(self, gateway: CloudGateway, journal: IntentJournal):
        self.gateway = gateway
        self.journal = journal
        self._adopted: List[str] = []
        self._removed: List[str] = []

    def recover(self, state: StateDocument) -> RecoveryReport:
        self._adopted = []
        self._removed = []
        report = RecoveryReport(run_id=self.journal.run_id or "")
        for intent in self.journal.records():
            report.actions.append(self._classify(intent, state))
        report.adopted = list(self._adopted)
        report.removed = list(self._removed)
        if report.adopted or report.removed:
            state.bump()
        return report

    # -- per-intent classification ----------------------------------------

    def _classify(
        self, intent: IntentRecord, state: StateDocument
    ) -> RecoveryAction:
        if intent.status == "aborted":
            if intent.error.startswith("quarantined"):
                # Parked by a degraded-mode apply, not failed: the
                # partition was unreachable. The resumed apply re-plans
                # and re-sends the work once the partition recovers.
                return RecoveryAction(
                    intent,
                    QUARANTINED,
                    f"parked by degraded-mode apply: {intent.error}",
                )
            return RecoveryAction(
                intent, ABORTED, f"run recorded terminal failure: {intent.error}"
            )
        # Committed intents are probed exactly like open ones: the crash
        # may have destroyed the in-memory state the commit landed in
        # (the state file is written at the end of an apply), so the
        # cloud -- not the marker -- decides what repair is needed. The
        # repairs are idempotent, so re-probing a commit whose state
        # entry *did* survive rewrites it with identical content.
        if intent.op == "create":
            return self._classify_create(intent, state)
        if intent.op == "delete":
            return self._classify_delete(intent, state)
        # update: idempotent at the attribute level -- the re-planned
        # apply re-diffs against state and re-sends whatever is missing
        classification = (
            COMMITTED if intent.status == "committed" else NEVER_STARTED
        )
        return RecoveryAction(
            intent, classification, "update re-sent by the resumed apply"
        )

    def _classify_create(
        self, intent: IntentRecord, state: StateDocument
    ) -> RecoveryAction:
        committed = intent.status == "committed"
        live = self.gateway.find_record_by_token(intent.token)
        if live is None:
            return RecoveryAction(
                intent,
                COMMITTED if committed else NEVER_STARTED,
                "no cloud-side resource for token",
            )
        address = self._parse_address(intent.address)
        finding = DriftFinding(
            kind="unmanaged",
            resource_id=live.id,
            resource_type=live.type,
            address=address,
        )
        reconciler = Reconciler(self.gateway, policy={"unmanaged": ADOPT})
        result = reconciler.reconcile([finding], state)
        performed = (
            result.actions[0].performed if result.actions else "adoption failed"
        )
        if result.ok and address is not None:
            entry = state.get(address)
            if entry is not None and entry.resource_id == live.id:
                self._adopted.append(str(address))
        return RecoveryAction(
            intent, COMMITTED if committed else ORPHANED, performed
        )

    def _classify_delete(
        self, intent: IntentRecord, state: StateDocument
    ) -> RecoveryAction:
        committed = intent.status == "committed"
        live = (
            self.gateway.find_record(intent.resource_id)
            if intent.resource_id
            else None
        )
        if live is not None:
            return RecoveryAction(
                intent, NEVER_STARTED, "target still live; delete re-sent"
            )
        address = self._parse_address(intent.address)
        if address is not None and state.get(address) is not None:
            state.remove(address)
            self._removed.append(str(address))
            return RecoveryAction(
                intent,
                COMMITTED if committed else LANDED,
                f"delete finished cloud-side; removed {address} from state",
            )
        return RecoveryAction(
            intent,
            COMMITTED if committed else LANDED,
            "delete finished cloud-side; state already clean",
        )

    @staticmethod
    def _parse_address(text: str) -> Optional[ResourceAddress]:
        try:
            return ResourceAddress.parse(text)
        except ValueError:
            return None
